"""The classical workflow Melissa replaces: files out, postmortem stats.

Runs the same pick-freeze ensemble as the in-transit study, but the way
the paper's "classical" baseline does (Sec. 5.3):

1. every simulation writes every timestep to disk through the
   EnSight-like writer (the Code_Saturne EnSight Gold stand-in);
2. after all runs finish, a *postmortem* pass reads the whole ensemble
   back and computes the same Sobol' statistics.

Because the postmortem pass feeds the same group-at-a-time estimator,
its results are identical to the in-transit path — the difference is
purely operational: O(ensemble) bytes hit the filesystem and must be
read back, versus zero for Melissa.  ``ClassicalStudyReport`` accounts
for every byte so the file-avoidance benchmark (T2) can quantify it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.config import StudyConfig
from repro.core.group import SimulationFactory
from repro.sampling.pickfreeze import PickFreezeDesign, draw_design
from repro.sobol.martinez import UbiquitousSobolField
from repro.solver.writer import EnsightLikeWriter, PostmortemReader


@dataclass
class ClassicalStudyReport:
    """Outcome + byte accounting of a classical (file-based) study."""

    sobol: UbiquitousSobolField
    bytes_written: int
    bytes_read: int
    files_written: int

    @property
    def intermediate_bytes(self) -> int:
        """Total traffic the filesystem absorbed (write + read back)."""
        return self.bytes_written + self.bytes_read


class ClassicalStudy:
    """File-writing ensemble + two-pass postmortem analysis."""

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        directory,
        design: Optional[PickFreezeDesign] = None,
    ):
        self.config = config
        self.factory = factory
        self.directory = Path(directory)
        self.design = design or draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )

    # ------------------------------------------------------------------ #
    def run_simulations(self) -> EnsightLikeWriter:
        """Phase 1: run every member, writing every timestep to disk."""
        writer = EnsightLikeWriter(self.directory)
        group_size = self.config.group_size
        for group in range(self.config.ngroups):
            params = self.design.group_parameters(group)
            for member in range(group_size):
                sim_id = group * group_size + member
                sim = self.factory(params[member], sim_id)
                for timestep, field in sim:
                    writer.write(sim_id, timestep, field)
        return writer

    def postmortem_analysis(self) -> ClassicalStudyReport:
        """Phase 2: read the ensemble back and compute the statistics."""
        reader = PostmortemReader(self.directory)
        group_size = self.config.group_size
        sobol = UbiquitousSobolField(
            nparams=self.config.nparams,
            ntimesteps=self.config.ntimesteps,
            ncells=self.config.ncells,
        )
        for group in range(self.config.ngroups):
            base = group * group_size
            # read the p+2 member stacks for this group
            stacks = [
                reader.read_simulation(base + member) for member in range(group_size)
            ]
            for timestep in range(self.config.ntimesteps):
                sobol.update_group_timestep(
                    timestep,
                    stacks[0][timestep],
                    stacks[1][timestep],
                    [stacks[2 + k][timestep] for k in range(self.config.nparams)],
                )
        return ClassicalStudyReport(
            sobol=sobol,
            bytes_written=0,  # filled by run()
            bytes_read=reader.bytes_read,
            files_written=0,
        )

    def run(self) -> ClassicalStudyReport:
        """Both phases, with complete byte accounting."""
        writer = self.run_simulations()
        report = self.postmortem_analysis()
        report.bytes_written = writer.bytes_written
        report.files_written = writer.files_written
        return report


def replay_to_server(directory, config: StudyConfig, server=None):
    """Stream an on-disk ensemble through a Melissa server, postmortem.

    The paper's closing remark (Sec. 7): "Melissa can also be used to
    compute statistics from large collections of data stored on disks.
    Iterative statistics allow for a low memory footprint and the fault
    tolerance support enables interruptions and restarts."  This function
    is that mode: each ensemble file becomes an ordinary
    :class:`~repro.transport.message.GroupFieldMessage`-shaped update, so
    the server's whole machinery — staging, discard-on-replay,
    checkpointing — applies unchanged.  Pass a checkpoint-restored
    ``server`` to resume an interrupted replay; already-integrated
    timesteps are discarded by replay protection.

    Returns the (possibly provided) :class:`~repro.core.server.MelissaServer`.
    """
    from repro.core.server import MelissaServer
    from repro.transport.message import FieldMessage

    if server is None:
        server = MelissaServer(config)
    reader = PostmortemReader(directory)
    group_size = config.group_size
    for sim_id, timestep, field in reader:
        group_id, member = divmod(sim_id, group_size)
        for rank in server.ranks:
            rank.handle(
                FieldMessage(
                    group_id=group_id,
                    member=member,
                    timestep=timestep,
                    cell_lo=rank.cell_lo,
                    cell_hi=rank.cell_hi,
                    data=field[rank.cell_lo:rank.cell_hi],
                ),
                now=float(timestep),
            )
    return server
