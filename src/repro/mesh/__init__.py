"""Structured mesh substrate: cells, coordinates, and domain partitioning.

Stands in for Code_Saturne's unstructured polyhedral mesh (paper Sec. 5.1).
A structured grid keeps the solver vectorizable while exercising the same
Melissa-facing surface: a global cell numbering, a client-side partition
(how a parallel simulation splits the domain across its ranks) and a
server-side partition (how Melissa Server splits the statistics fields
across its ranks), which in general do not coincide — that mismatch is
what the N x M redistribution in the transport layer resolves.
"""

from repro.mesh.structured import StructuredMesh
from repro.mesh.partition import BlockPartition, partition_cells

__all__ = ["StructuredMesh", "BlockPartition", "partition_cells"]
