"""Domain partitioning: contiguous block decomposition of the cell range.

The paper partitions the simulation domain "evenly in space among the
different processes at starting time" (Sec. 4.1.1) — both on the client
side (a parallel simulation's ranks) and on the server side (Melissa
Server's ranks), with independently chosen rank counts.  We model both
with contiguous ranges over the global C-ordered cell numbering; the
transport layer computes range intersections to plan the N x M
redistribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockPartition:
    """Contiguous balanced split of ``ncells`` cells over ``nranks`` ranks.

    Rank r owns the half-open range ``[offsets[r], offsets[r+1])``.  Sizes
    differ by at most one cell (the first ``ncells % nranks`` ranks get the
    extra cell), matching the "even" partition in the paper.
    """

    ncells: int
    nranks: int

    def __post_init__(self):
        if self.ncells < 1:
            raise ValueError("ncells must be >= 1")
        if self.nranks < 1:
            raise ValueError("nranks must be >= 1")
        if self.nranks > self.ncells:
            raise ValueError("cannot have more ranks than cells")

    # ------------------------------------------------------------------ #
    @property
    def offsets(self) -> np.ndarray:
        """(nranks + 1,) fencepost array of range starts."""
        base, extra = divmod(self.ncells, self.nranks)
        sizes = np.full(self.nranks, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def range_of(self, rank: int) -> Tuple[int, int]:
        """Half-open cell range owned by ``rank``."""
        self._check_rank(rank)
        off = self.offsets
        return int(off[rank]), int(off[rank + 1])

    def size_of(self, rank: int) -> int:
        lo, hi = self.range_of(rank)
        return hi - lo

    def owner_of(self, cell: int) -> int:
        """Rank owning global cell id ``cell``."""
        if not 0 <= cell < self.ncells:
            raise ValueError(f"cell {cell} out of range")
        return int(np.searchsorted(self.offsets, cell, side="right") - 1)

    def local_view(self, rank: int, global_field: np.ndarray) -> np.ndarray:
        """Slice (view, no copy) of a global field owned by ``rank``."""
        lo, hi = self.range_of(rank)
        return np.asarray(global_field)[..., lo:hi]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")

    def spans(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """Chunks of the half-open range ``[lo, hi)`` along rank boundaries.

        Returns ``(rank, seg_lo, seg_hi)`` entries in ascending cell
        order; a range contained in one rank yields a single entry.  Used
        by the transport layer to split messages that straddle a
        server-partition boundary instead of mis-routing them by their
        first cell.
        """
        if not 0 <= lo < hi <= self.ncells:
            raise ValueError(
                f"cell range [{lo}, {hi}) outside the mesh [0, {self.ncells})"
            )
        off = self.offsets
        first = int(np.searchsorted(off, lo, side="right") - 1)
        out: List[Tuple[int, int, int]] = []
        rank = first
        while rank < self.nranks and int(off[rank]) < hi:
            seg_lo = max(lo, int(off[rank]))
            seg_hi = min(hi, int(off[rank + 1]))
            if seg_hi > seg_lo:
                out.append((rank, seg_lo, seg_hi))
            rank += 1
        return out

    # ------------------------------------------------------------------ #
    def intersections(self, other: "BlockPartition") -> List[List[Tuple[int, int, int]]]:
        """Redistribution plan from this partition to ``other``.

        Returns, for each source rank, the list of ``(dest_rank, lo, hi)``
        global ranges it must forward — the static N x M pattern a main
        simulation uses to push gathered data to server ranks (Sec. 4.1.2).
        """
        if other.ncells != self.ncells:
            raise ValueError("partitions cover different cell counts")
        plan: List[List[Tuple[int, int, int]]] = []
        dst_off = other.offsets
        for src in range(self.nranks):
            lo, hi = self.range_of(src)
            entries: List[Tuple[int, int, int]] = []
            first = int(np.searchsorted(dst_off, lo, side="right") - 1)
            d = first
            while d < other.nranks and int(dst_off[d]) < hi:
                seg_lo = max(lo, int(dst_off[d]))
                seg_hi = min(hi, int(dst_off[d + 1]))
                if seg_hi > seg_lo:
                    entries.append((d, seg_lo, seg_hi))
                d += 1
            plan.append(entries)
        return plan


def partition_cells(ncells: int, nranks: int) -> BlockPartition:
    """Convenience constructor mirroring the paper's even partitioning."""
    return BlockPartition(ncells=ncells, nranks=nranks)
