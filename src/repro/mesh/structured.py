"""Structured 2-D/3-D cell-centred meshes.

Cells are numbered in C order (last axis fastest).  Fields live at cell
centres as flat ``(ncells,)`` arrays; :meth:`StructuredMesh.to_grid`
reshapes them back to the grid for slicing and rendering (Fig. 7/8 maps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class StructuredMesh:
    """Axis-aligned structured mesh of hexahedral (or quad) cells.

    Parameters
    ----------
    dims:
        Cells per axis, e.g. ``(nx, ny)`` or ``(nx, ny, nz)``.
    lengths:
        Physical extents per axis; cell size is ``lengths[i] / dims[i]``.
    origin:
        Coordinates of the low corner (defaults to all zeros).
    """

    dims: Tuple[int, ...]
    lengths: Tuple[float, ...]
    origin: Tuple[float, ...] = ()

    def __post_init__(self):
        dims = tuple(int(d) for d in self.dims)
        lengths = tuple(float(s) for s in self.lengths)
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "lengths", lengths)
        if len(dims) not in (2, 3):
            raise ValueError("StructuredMesh supports 2-D and 3-D only")
        if len(lengths) != len(dims):
            raise ValueError("lengths must match dims")
        if any(d < 1 for d in dims):
            raise ValueError("all dims must be >= 1")
        if any(s <= 0 for s in lengths):
            raise ValueError("all lengths must be > 0")
        origin = self.origin or tuple(0.0 for _ in dims)
        if len(origin) != len(dims):
            raise ValueError("origin must match dims")
        object.__setattr__(self, "origin", tuple(float(o) for o in origin))

    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def ncells(self) -> int:
        return int(np.prod(self.dims))

    @property
    def spacing(self) -> Tuple[float, ...]:
        return tuple(s / d for s, d in zip(self.lengths, self.dims))

    @property
    def cell_volume(self) -> float:
        return float(np.prod(self.spacing))

    # ------------------------------------------------------------------ #
    def cell_centers(self) -> np.ndarray:
        """(ncells, ndim) array of cell-centre coordinates (C order)."""
        axes = [
            self.origin[i] + (np.arange(self.dims[i]) + 0.5) * self.spacing[i]
            for i in range(self.ndim)
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([g.ravel() for g in grids])

    def axis_coordinates(self, axis: int) -> np.ndarray:
        """Cell-centre coordinates along one axis."""
        return self.origin[axis] + (np.arange(self.dims[axis]) + 0.5) * self.spacing[axis]

    def to_grid(self, flat: np.ndarray) -> np.ndarray:
        """Reshape a flat cell field to the (nx, ny[, nz]) grid."""
        flat = np.asarray(flat)
        if flat.shape[-1] != self.ncells:
            raise ValueError(f"field has {flat.shape[-1]} cells, mesh has {self.ncells}")
        return flat.reshape(flat.shape[:-1] + self.dims)

    def flatten(self, grid: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_grid`."""
        grid = np.asarray(grid)
        if grid.shape[-self.ndim:] != self.dims:
            raise ValueError("grid shape does not match mesh dims")
        return grid.reshape(grid.shape[: -self.ndim] + (self.ncells,))

    def cell_index(self, *indices: int) -> int:
        """Flat cell id from per-axis indices."""
        if len(indices) != self.ndim:
            raise ValueError(f"expected {self.ndim} indices")
        for i, d in zip(indices, self.dims):
            if not 0 <= i < d:
                raise ValueError(f"index {i} out of bounds for dim {d}")
        return int(np.ravel_multi_index(indices, self.dims))

    def slice_plane(self, flat: np.ndarray, axis: int, index: int) -> np.ndarray:
        """Extract the plane ``axis = index`` of a flat field (Fig. 7 slices)."""
        grid = self.to_grid(flat)
        return np.take(grid, index, axis=grid.ndim - self.ndim + axis)

    def __repr__(self) -> str:  # pragma: no cover
        return f"StructuredMesh(dims={self.dims}, lengths={self.lengths})"
