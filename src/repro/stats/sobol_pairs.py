"""Closed second-order Sobol' index maps from stacked pair co-moments.

The pick-freeze design already running for first/total-order indices
(member 0 = A, member 1 = B, member 2+k = C^k: A with column k replaced
from B) contains second-order information for free: C^i and C^j share
*all* input columns except {i, j}, so by the Martinez correlation
identities

    corr(Y_Ci, Y_Cj)          = S^c_{~{i,j}}      (closed complement)
    ST_{ij} = 1 - corr(Ci,Cj) = sum of S_u over u intersecting {i,j}

Subtracting the single-parameter totals ST_i = 1 - corr(A, Ci) and
ST_j isolates the terms containing BOTH i and j:

    I_{ij} = ST_i + ST_j - ST_{ij} = sum of S_u over u >= {i,j}

and with S_i = corr(B, Ci) the closed pair index follows:

    S^c_{ij} ~= S_i + S_j + I_{ij}

(exact when no third-order-or-higher term contains both i and j; the
approximation error is the sum of such terms, each counted once extra).

All of this reduces to maintaining, per timestep: the p+2 member means
and M2s plus the co-moments C(A, C^k), C(B, C^k), and C(C^i, C^j) for
i < j — a single vectorized Pebay update per group, with an exact
Chan-style pairwise merge.  No extra simulations are run.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.stats.protocol import FieldStatistic, StatContext, register


@register
class SecondOrderSobolStatistic(FieldStatistic):
    """Pair total/interaction/closed second-order Sobol' maps."""

    name = "sobol2"
    description = "second-order Sobol' pair maps from the pick-freeze groups"
    PARAMS: Dict[str, str] = {}
    kind = "group"

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        p = ctx.nparams
        if p < 2:
            raise ValueError("sobol2 needs at least two parameters")
        self.nparams = p
        self.nmembers = ctx.nmembers
        self.pairs: Tuple[Tuple[int, int], ...] = tuple(
            (i, j) for i in range(p) for j in range(i + 1, p)
        )
        self._ii = np.array([i for i, _ in self.pairs])
        self._jj = np.array([j for _, j in self.pairs])
        shape = self.shape
        self.count = 0
        self.mean = np.zeros((self.nmembers,) + shape)
        self.m2 = np.zeros((self.nmembers,) + shape)
        self.c_a = np.zeros((p,) + shape)  # C(A,  C^k)
        self.c_b = np.zeros((p,) + shape)  # C(B,  C^k)
        self.c_pairs = np.zeros((len(self.pairs),) + shape)  # C(C^i, C^j)

    # ------------------------------------------------------------------ #
    def update(self, sample: np.ndarray) -> None:
        raise TypeError(
            "sobol2 is a group statistic; it consumes whole (p+2, *shape) "
            "buffers via update_group"
        )

    def update_group(self, buffer: np.ndarray) -> None:
        buf = np.asarray(buffer, dtype=np.float64)
        if buf.shape != (self.nmembers,) + self.shape:
            raise ValueError(
                f"group buffer shape {buf.shape} != "
                f"{(self.nmembers,) + self.shape}"
            )
        self.count = n = self.count + 1
        delta_old = buf - self.mean
        self.mean += delta_old / n
        delta_new = buf - self.mean
        # Pebay co-moment update: C_xy += (x - old mean_x)(y - new mean_y)
        self.m2 += delta_old * delta_new
        self.c_a += delta_old[0] * delta_new[2:]
        self.c_b += delta_old[1] * delta_new[2:]
        self.c_pairs += delta_old[2 + self._ii] * delta_new[2 + self._jj]

    def merge(self, other: "SecondOrderSobolStatistic") -> None:
        if other.shape != self.shape or other.nparams != self.nparams:
            raise ValueError("cannot merge sobol2 statistics of different studies")
        na, nb = self.count, other.count
        if nb == 0:
            return
        if na == 0:
            for name in ("mean", "m2", "c_a", "c_b", "c_pairs"):
                setattr(self, name, getattr(other, name).copy())
            self.count = nb
            return
        n = na + nb
        dm = other.mean - self.mean
        scale = na * nb / n
        self.m2 += other.m2 + dm * dm * scale
        self.c_a += other.c_a + dm[0] * dm[2:] * scale
        self.c_b += other.c_b + dm[1] * dm[2:] * scale
        self.c_pairs += other.c_pairs + dm[2 + self._ii] * dm[2 + self._jj] * scale
        self.mean += dm * (nb / n)
        self.count = n

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "c_a": self.c_a,
            "c_b": self.c_b,
            "c_pairs": self.c_pairs,
        }

    def load_state(self, state: dict) -> None:
        mean = np.asarray(state["mean"], dtype=np.float64)
        if mean.shape != (self.nmembers,) + self.shape:
            raise ValueError("sobol2 state does not match configured statistic")
        self.count = int(state["count"])
        self.mean = mean.copy()
        for name in ("m2", "c_a", "c_b", "c_pairs"):
            setattr(self, name, np.asarray(state[name], dtype=np.float64).copy())

    # ------------------------------------------------------------------ #
    def _corr(self, cxy: np.ndarray, m2x: np.ndarray, m2y: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = np.sqrt(m2x * m2y)
            ratio = np.where(denom > 0, cxy / denom, np.nan)
            return np.clip(ratio, -1.0, 1.0)

    def _pair_key(self, i: int, j: int) -> str:
        names = self.ctx.parameter_names
        return f"{names[i]}_{names[j]}"

    @property
    def result_names(self) -> Tuple[str, ...]:
        names = []
        for i, j in self.pairs:
            key = self._pair_key(i, j)
            names += [f"sobol2_total_{key}", f"sobol2_interaction_{key}",
                      f"sobol2_closed_{key}"]
        return tuple(names)

    def finalize(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        if self.count < 2:
            nanmap = np.full(self.shape, np.nan)
            return {name: nanmap.copy() for name in self.result_names}
        m2c = self.m2[2:]
        # S_k = corr(B, Ck); ST_k = 1 - corr(A, Ck)
        s_first = self._corr(self.c_b, self.m2[1], m2c)
        st_single = 1.0 - self._corr(self.c_a, self.m2[0], m2c)
        for idx, (i, j) in enumerate(self.pairs):
            st_pair = 1.0 - self._corr(
                self.c_pairs[idx], m2c[i], m2c[j]
            )
            interaction = st_single[i] + st_single[j] - st_pair
            closed = s_first[i] + s_first[j] + interaction
            key = self._pair_key(i, j)
            out[f"sobol2_total_{key}"] = st_pair
            out[f"sobol2_interaction_{key}"] = interaction
            out[f"sobol2_closed_{key}"] = closed
        return out
