"""Per-timestep field statistics container used by the Melissa server.

Each server rank owns a spatial partition of the mesh and, for every
timestep, a :class:`FieldStatistics` instance tracking the configured
moments/extrema over the A- and B-member outputs of all simulation groups
(paper Sec. 4.1: only the A and B members have independent input
parameters, so general statistics are computed on those two streams only;
the C^k members feed the Sobol' accumulators exclusively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.stats.extrema import IterativeExtrema, ThresholdExceedance
from repro.stats.moments import IterativeMoments


@dataclass(frozen=True)
class StatisticsConfig:
    """Which general-purpose statistics the server maintains per timestep.

    Attributes
    ----------
    moment_order:
        1 = mean only, 2 adds variance, 3 skewness, 4 kurtosis.
    track_extrema:
        Maintain per-cell running min/max.
    thresholds:
        Exceedance thresholds; one counter per value.
    """

    moment_order: int = 2
    track_extrema: bool = False
    thresholds: Tuple[float, ...] = ()

    def __post_init__(self):
        if self.moment_order not in (1, 2, 3, 4):
            raise ValueError("moment_order must be in 1..4")


class FieldStatistics:
    """Aggregate of configured iterative statistics over one field partition."""

    def __init__(self, shape: Tuple[int, ...], config: Optional[StatisticsConfig] = None):
        self.shape = tuple(shape)
        self.config = config or StatisticsConfig()
        self.moments = IterativeMoments(self.shape, order=self.config.moment_order)
        self.extrema = IterativeExtrema(self.shape) if self.config.track_extrema else None
        self.exceedances = [
            ThresholdExceedance(self.shape, threshold=t) for t in self.config.thresholds
        ]

    # ------------------------------------------------------------------ #
    def update(self, sample: np.ndarray) -> None:
        """Fold one field sample into every configured statistic."""
        self.moments.update(sample)
        if self.extrema is not None:
            self.extrema.update(sample)
        for exc in self.exceedances:
            exc.update(sample)

    def merge(self, other: "FieldStatistics") -> None:
        if other.shape != self.shape or other.config != self.config:
            raise ValueError("incompatible FieldStatistics merge")
        self.moments.merge(other.moments)
        if self.extrema is not None:
            self.extrema.merge(other.extrema)
        for mine, theirs in zip(self.exceedances, other.exceedances):
            mine.merge(theirs)

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> np.ndarray:
        return self.moments.mean

    @property
    def variance(self) -> np.ndarray:
        return self.moments.variance

    def results(self) -> Dict[str, np.ndarray]:
        """Name -> field mapping of every configured statistic."""
        out: Dict[str, np.ndarray] = {"mean": self.moments.mean.copy()}
        if self.config.moment_order >= 2:
            out["variance"] = self.moments.variance
        if self.config.moment_order >= 3:
            out["skewness"] = self.moments.skewness
        if self.config.moment_order >= 4:
            out["kurtosis"] = self.moments.kurtosis
        if self.extrema is not None:
            out["minimum"] = self.extrema.minimum.copy()
            out["maximum"] = self.extrema.maximum.copy()
        for exc in self.exceedances:
            out[f"exceedance_{exc.threshold:g}"] = exc.probability
        return out

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        state = {
            "config": {
                "moment_order": self.config.moment_order,
                "track_extrema": self.config.track_extrema,
                "thresholds": list(self.config.thresholds),
            },
            "moments": self.moments.state_dict(),
        }
        if self.extrema is not None:
            state["extrema"] = self.extrema.state_dict()
        state["exceedances"] = [e.state_dict() for e in self.exceedances]
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "FieldStatistics":
        cfg = StatisticsConfig(
            moment_order=int(state["config"]["moment_order"]),
            track_extrema=bool(state["config"]["track_extrema"]),
            thresholds=tuple(state["config"]["thresholds"]),
        )
        moments = IterativeMoments.from_state_dict(state["moments"])
        obj = cls(shape=moments.shape, config=cfg)
        obj.moments = moments
        if obj.extrema is not None:
            obj.extrema = IterativeExtrema.from_state_dict(state["extrema"])
        obj.exceedances = [
            ThresholdExceedance.from_state_dict(s) for s in state["exceedances"]
        ]
        return obj
