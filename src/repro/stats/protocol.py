"""The ``FieldStatistic`` plugin protocol and statistics registry.

The paper's central systems claim (Sec. 3.1, 4.1) is that *any* statistic
expressible as a one-pass update with bounded, mergeable state can run in
transit.  This module turns that claim into an extension point: a
:class:`FieldStatistic` is an object with

* ``update(sample)``       — fold one field sample (O(field size), no
  dependence on how many samples came before);
* ``update_group(buffer)`` — fold one complete ``(p+2, *shape)`` group
  buffer (defaults to updating on the A and B members, the only two with
  independent inputs; group-aware statistics override it);
* ``merge(other)``         — absorb a disjoint partial stream *exactly*
  (the Chan/Pebay pairwise combine).  Mergeability is the fault-tolerance
  primitive: discard-on-replay, rank respawn, and cross-rank reduction all
  lean on it;
* ``state_dict()`` / ``from_state_dict()`` — plain-array snapshots for the
  per-rank checkpoint files (Sec. 4.2.3);
* ``finalize()`` / ``result_names`` — named result fields, each shaped
  ``(*extra_axes, *field_shape)`` with the field axes LAST so per-rank
  partitions concatenate on ``axis=-1`` during result assembly.

Statistics are selected by *spec strings* — ``"moments:order=4"``,
``"exceedance:thresholds=0.5+2.0"``, ``"quantiles:qs=0.05+0.95:lo=-10:hi=10"``
— parsed here and canonicalized (defaults filled, values normalized) so
that two processes configured with equivalent spellings agree on the
checkpoint/coordination fingerprint.  Custom plugins register with the
:func:`register` decorator or are addressed entry-point style as
``"my_pkg.my_module:MyStatistic"``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "FieldStatistic",
    "StatContext",
    "register",
    "lookup",
    "available_statistics",
    "parse_spec",
    "format_spec",
    "canonicalize_spec",
    "canonicalize_specs",
    "legacy_statistics_specs",
]


# --------------------------------------------------------------------- #
# context
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StatContext:
    """Everything a statistic may need to size its state.

    ``shape`` is the local field partition shape (one server rank's cell
    range), NOT the global mesh — statistics are built per rank and their
    results concatenated along the last axis.
    """

    shape: Tuple[int, ...]
    nparams: int
    parameter_names: Tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(self.shape))
        names = tuple(self.parameter_names) or tuple(
            f"x{i + 1}" for i in range(self.nparams)
        )
        if len(names) != self.nparams:
            raise ValueError(
                f"{len(names)} parameter names for {self.nparams} parameters"
            )
        object.__setattr__(self, "parameter_names", names)

    @property
    def nmembers(self) -> int:
        """Group size: p + 2 (A, B, and one C^k per parameter)."""
        return self.nparams + 2


# --------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------- #
class FieldStatistic:
    """Base class every pluggable in-transit statistic derives from.

    Class attributes
    ----------------
    name:
        Registry key and spec-string head (``"moments"``).
    description:
        One-liner for ``repro stats --list``.
    PARAMS:
        Ordered mapping of parameter name -> default value *string*;
        ``None`` marks a required parameter.  Spec canonicalization fills
        defaults from here and rejects unknown keys.
    kind:
        ``"member"`` statistics consume individual A/B member samples via
        ``update``; ``"group"`` statistics override ``update_group`` and
        consume whole ``(p+2, *shape)`` buffers.
    exact_merge:
        True when ``merge`` is algebraically exact (commutes and
        associates to floating-point error with any stream split).  Such
        statistics carry the full fault-tolerance guarantee: respawn,
        replay, and cross-runtime runs reproduce sequential results to
        rtol 1e-10.  Sketches whose merge is approximate set this False
        and are documented as best-effort under faults.
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    PARAMS: ClassVar[Dict[str, Optional[str]]] = {}
    kind: ClassVar[str] = "member"
    exact_merge: ClassVar[bool] = True

    def __init__(self, ctx: StatContext, params: Optional[Mapping[str, str]] = None):
        self.ctx = ctx
        self.shape = ctx.shape
        self.params: Dict[str, str] = type(self).canonical_params(params or {})

    # -- streaming protocol ------------------------------------------- #
    def update(self, sample: np.ndarray) -> None:
        """Fold one field sample of ``self.shape`` into the running state."""
        raise NotImplementedError

    def update_group(self, buffer: np.ndarray) -> None:
        """Fold one complete ``(nmembers, *shape)`` group buffer.

        Default: general statistics see only the A and B members — the
        only two simulations per group whose inputs are independently
        sampled (Sec. 4.1); the pick-freeze C^k members would bias plain
        statistics.  Group-aware statistics (Sobol'-type) override this.
        """
        self.update(buffer[0])
        self.update(buffer[1])

    def merge(self, other: "FieldStatistic") -> None:
        """Absorb the partial state of ``other`` (disjoint sample set)."""
        raise NotImplementedError

    # -- checkpointing ------------------------------------------------- #
    def state_dict(self) -> dict:
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        raise NotImplementedError

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        ctx: StatContext,
        params: Optional[Mapping[str, str]] = None,
    ) -> "FieldStatistic":
        obj = cls(ctx, params)
        obj.load_state(state)
        return obj

    # -- results ------------------------------------------------------- #
    @property
    def result_names(self) -> Tuple[str, ...]:
        """Names of the fields :meth:`finalize` produces (data-independent)."""
        raise NotImplementedError

    def finalize(self) -> Dict[str, np.ndarray]:
        """Name -> array mapping; field axes are LAST on every array."""
        raise NotImplementedError

    # -- spec handling -------------------------------------------------- #
    @classmethod
    def canonical_params(cls, params: Mapping[str, str]) -> Dict[str, str]:
        """Fill defaults, validate, and normalize a raw parameter mapping."""
        unknown = sorted(set(params) - set(cls.PARAMS))
        if unknown:
            raise ValueError(
                f"statistic '{cls.name}' does not accept parameter(s) "
                f"{', '.join(unknown)} (valid: {', '.join(cls.PARAMS) or 'none'})"
            )
        out: Dict[str, str] = {}
        for key, default in cls.PARAMS.items():
            if key in params:
                raw = str(params[key])
            elif default is None:
                raise ValueError(
                    f"statistic '{cls.name}' requires parameter '{key}'"
                )
            else:
                raw = default
            out[key] = cls.canonical_value(key, raw)
        return out

    @classmethod
    def canonical_value(cls, key: str, value: str) -> str:
        """Normalize one parameter value (override for numeric params)."""
        return value

    # -- small conveniences -------------------------------------------- #
    @staticmethod
    def _canon_int(value: str, lo: int = None, hi: int = None) -> str:
        try:
            v = int(value)
        except (TypeError, ValueError):
            raise ValueError(f"expected an integer, got {value!r}") from None
        if lo is not None and v < lo or hi is not None and v > hi:
            raise ValueError(f"value {v} outside [{lo}, {hi}]")
        return str(v)

    @staticmethod
    def _canon_float(value: str) -> str:
        try:
            return repr(float(value))
        except (TypeError, ValueError):
            raise ValueError(f"expected a float, got {value!r}") from None

    @staticmethod
    def _canon_float_list(value: str) -> str:
        parts = [p for p in str(value).split("+") if p]
        if not parts:
            raise ValueError("expected a '+'-separated list of floats")
        return "+".join(repr(float(p)) for p in parts)

    @staticmethod
    def _parse_float_list(value: str) -> Tuple[float, ...]:
        return tuple(float(p) for p in str(value).split("+") if p)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[FieldStatistic]] = {}


def register(cls: Type[FieldStatistic]) -> Type[FieldStatistic]:
    """Class decorator adding a :class:`FieldStatistic` to the catalog."""
    if not (isinstance(cls, type) and issubclass(cls, FieldStatistic)):
        raise TypeError("register() expects a FieldStatistic subclass")
    name = cls.name
    if not name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"statistic name '{name}' already registered by {existing.__name__}"
        )
    _REGISTRY[name] = cls
    return cls


def lookup(name: str) -> Type[FieldStatistic]:
    """Resolve a statistic by catalog name or ``module.path:Attr`` spec."""
    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls
    if ":" in name and "." in name.split(":", 1)[0]:
        module_name, attr = name.split(":", 1)
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ValueError(
                f"cannot import statistic plugin module '{module_name}': {exc}"
            ) from exc
        cls = getattr(module, attr, None)
        if not (isinstance(cls, type) and issubclass(cls, FieldStatistic)):
            raise ValueError(
                f"'{name}' does not name a FieldStatistic subclass"
            )
        return cls
    known = ", ".join(sorted(_REGISTRY))
    raise ValueError(f"unknown statistic '{name}' (available: {known})")


def available_statistics() -> Dict[str, Type[FieldStatistic]]:
    """The registered catalog, name -> class, sorted by name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


# --------------------------------------------------------------------- #
# spec strings
# --------------------------------------------------------------------- #
def parse_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=val:key=val"`` into its head and parameter map.

    A head containing a dot may carry an entry-point attribute segment
    (``"pkg.mod:Attr:key=val"``); the attribute is folded into the head.
    """
    spec = str(spec).strip()
    if not spec:
        raise ValueError("empty statistic spec")
    segments = spec.split(":")
    head = segments[0]
    rest = segments[1:]
    if "." in head and rest and "=" not in rest[0]:
        head = f"{head}:{rest[0]}"
        rest = rest[1:]
    params: Dict[str, str] = {}
    for seg in rest:
        if "=" not in seg:
            raise ValueError(
                f"malformed statistic spec segment '{seg}' in '{spec}' "
                "(expected key=value)"
            )
        key, value = seg.split("=", 1)
        if key in params:
            raise ValueError(f"duplicate parameter '{key}' in spec '{spec}'")
        params[key] = value
    return head, params


def format_spec(name: str, params: Mapping[str, str]) -> str:
    """Deterministic spec string: head plus sorted ``key=value`` segments."""
    tail = "".join(f":{k}={params[k]}" for k in sorted(params))
    return f"{name}{tail}"


def canonicalize_spec(spec: str) -> str:
    """Resolve, default-fill, and normalize one spec string.

    Canonical forms are what checkpoint fingerprints and the distributed
    coordinator compare, so equivalent spellings (``"moments"`` vs
    ``"moments:order=2"``) canonicalize identically.
    """
    name, params = parse_spec(spec)
    cls = lookup(name)
    head = name if name not in _REGISTRY and ":" in name else cls.name
    return format_spec(head, cls.canonical_params(params))


def canonicalize_specs(specs: Sequence[str]) -> Tuple[str, ...]:
    """Canonicalize a spec collection, rejecting duplicates."""
    if isinstance(specs, str):
        specs = [s for s in specs.split(",") if s.strip()]
    out: List[str] = []
    for spec in specs:
        canon = canonicalize_spec(spec)
        if canon in out:
            raise ValueError(f"duplicate statistic spec '{canon}'")
        out.append(canon)
    return tuple(out)


def legacy_statistics_specs(
    moment_order: int = 2,
    track_extrema: bool = False,
    thresholds: Sequence[float] = (),
) -> Tuple[str, ...]:
    """Map the pre-catalog ``StatisticsConfig`` knobs onto spec strings.

    Shared by the ``StudyConfig`` deprecation shim and the v2 -> v3
    checkpoint migration so both produce byte-identical canonical specs.
    """
    specs = [f"moments:order={int(moment_order)}"]
    if track_extrema:
        specs.append("extrema")
    if thresholds:
        joined = "+".join(repr(float(t)) for t in thresholds)
        specs.append(f"exceedance:thresholds={joined}")
    return tuple(specs)
