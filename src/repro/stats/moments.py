"""One-pass central moments up to order 4 (mean, variance, skewness, kurtosis).

Implements the update formulas of Pebay, *Formulas for robust, one-pass
parallel computation of covariances and arbitrary-order statistical moments*
(SAND2008-6212), the same reference used by the paper ([34] in the text).
Order 2 reduces to Welford's classical algorithm.

The estimator operates elementwise on arrays of a fixed ``shape`` so that a
single object tracks the moments of every mesh cell at once.  ``update`` is
O(field size) with a handful of fused NumPy operations and no temporaries
beyond what the algebra requires (in-place ops throughout, per the
hpc-parallel guide: prefer ``a += b`` to ``a = a + b``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

_VALID_ORDERS = (1, 2, 3, 4)


def _as_field(x: ArrayLike, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """Coerce a sample to the tracked field shape, raising on mismatch."""
    arr = np.asarray(x, dtype=dtype)
    if arr.shape != shape:
        if arr.shape == () and shape == ():
            return arr
        raise ValueError(f"sample shape {arr.shape} != tracked shape {shape}")
    return arr


class IterativeMoments:
    """Single-pass central moments of a stream of (possibly vector) samples.

    Parameters
    ----------
    shape:
        Field shape of each incoming sample.  ``()`` tracks a scalar stream.
    order:
        Highest central moment tracked (1..4).  Higher orders cost extra
        arrays of the field shape and extra flops per update.

    Notes
    -----
    Internally stores the running mean and the *unnormalized* central moment
    sums ``M2 = sum (x-mean)^2``, ``M3``, ``M4``.  Properties return the
    conventional normalized statistics.  ``merge`` combines two disjoint
    partial streams exactly (pairwise algorithm), which is what a reduction
    tree over server ranks or checkpoint shards uses.
    """

    __slots__ = ("shape", "order", "count", "mean", "m2", "m3", "m4")

    def __init__(self, shape: Tuple[int, ...] = (), order: int = 2):
        if order not in _VALID_ORDERS:
            raise ValueError(f"order must be one of {_VALID_ORDERS}, got {order}")
        self.shape = tuple(shape)
        self.order = order
        self.count = 0
        self.mean = np.zeros(self.shape, dtype=np.float64)
        self.m2 = np.zeros(self.shape, dtype=np.float64) if order >= 2 else None
        self.m3 = np.zeros(self.shape, dtype=np.float64) if order >= 3 else None
        self.m4 = np.zeros(self.shape, dtype=np.float64) if order >= 4 else None

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update(self, sample: ArrayLike) -> None:
        """Fold one sample into the running moments (Pebay one-pass update)."""
        x = _as_field(sample, self.shape)
        n1 = self.count
        self.count = n = n1 + 1
        delta = x - self.mean
        delta_n = delta / n
        if self.order >= 2:
            term1 = delta * delta_n * n1
            if self.order >= 3:
                delta_n2 = delta_n * delta_n
                if self.order >= 4:
                    self.m4 += (
                        term1 * delta_n2 * (n * n - 3 * n + 3)
                        + 6.0 * delta_n2 * self.m2
                        - 4.0 * delta_n * self.m3
                    )
                self.m3 += term1 * delta_n * (n - 2) - 3.0 * delta_n * self.m2
            self.m2 += term1
        self.mean += delta_n

    def update_many(self, samples: Iterable[ArrayLike]) -> None:
        """Fold a sequence of samples, one at a time (streaming semantics)."""
        for s in samples:
            self.update(s)

    def merge(self, other: "IterativeMoments") -> None:
        """Absorb the partial moments of ``other`` (disjoint sample set).

        Implements the exact pairwise combination formulas; after merging,
        ``self`` is identical (to FP error) to having seen both streams.
        """
        if other.shape != self.shape:
            raise ValueError("cannot merge moments with different field shapes")
        if other.order != self.order:
            raise ValueError("cannot merge moments with different orders")
        na, nb = self.count, other.count
        if nb == 0:
            return
        if na == 0:
            self.count = other.count
            self.mean = other.mean.copy()
            if self.order >= 2:
                self.m2 = other.m2.copy()
            if self.order >= 3:
                self.m3 = other.m3.copy()
            if self.order >= 4:
                self.m4 = other.m4.copy()
            return
        n = na + nb
        delta = other.mean - self.mean
        delta_n = delta / n
        if self.order >= 4:
            self.m4 += (
                other.m4
                + delta * delta_n**3 * na * nb * (na * na - na * nb + nb * nb)
                + 6.0 * delta_n**2 * (na * na * other.m2 + nb * nb * self.m2)
                + 4.0 * delta_n * (na * other.m3 - nb * self.m3)
            )
        if self.order >= 3:
            self.m3 += (
                other.m3
                + delta * delta_n**2 * na * nb * (na - nb)
                + 3.0 * delta_n * (na * other.m2 - nb * self.m2)
            )
        if self.order >= 2:
            self.m2 += other.m2 + delta * delta_n * na * nb
        self.mean += delta_n * nb
        self.count = n

    # ------------------------------------------------------------------ #
    # derived statistics
    # ------------------------------------------------------------------ #
    @property
    def variance(self) -> np.ndarray:
        """Unbiased sample variance (``nan`` where count < 2)."""
        self._require_order(2)
        if self.count < 2:
            return np.full(self.shape, np.nan)
        return self.m2 / (self.count - 1)

    @property
    def population_variance(self) -> np.ndarray:
        """Biased (population) variance M2/n."""
        self._require_order(2)
        if self.count < 1:
            return np.full(self.shape, np.nan)
        return self.m2 / self.count

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    @property
    def skewness(self) -> np.ndarray:
        """Population skewness g1 = sqrt(n) M3 / M2^(3/2)."""
        self._require_order(3)
        if self.count < 2:
            return np.full(self.shape, np.nan)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.sqrt(float(self.count)) * self.m3 / np.power(self.m2, 1.5)

    @property
    def kurtosis(self) -> np.ndarray:
        """Excess kurtosis g2 = n M4 / M2^2 - 3."""
        self._require_order(4)
        if self.count < 2:
            return np.full(self.shape, np.nan)
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.count * self.m4 / (self.m2 * self.m2) - 3.0

    def _require_order(self, k: int) -> None:
        if self.order < k:
            raise ValueError(f"moment order {k} not tracked (order={self.order})")

    # ------------------------------------------------------------------ #
    # (de)serialization for checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Plain-array snapshot, suitable for ``np.savez`` checkpoints."""
        state = {"count": self.count, "order": self.order, "mean": self.mean}
        if self.order >= 2:
            state["m2"] = self.m2
        if self.order >= 3:
            state["m3"] = self.m3
        if self.order >= 4:
            state["m4"] = self.m4
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterativeMoments":
        mean = np.asarray(state["mean"], dtype=np.float64)
        obj = cls(shape=mean.shape, order=int(state["order"]))
        obj.count = int(state["count"])
        obj.mean = mean.copy()
        for name in ("m2", "m3", "m4"):
            if name in state and getattr(obj, name) is not None:
                setattr(obj, name, np.asarray(state[name], dtype=np.float64).copy())
        return obj

    def copy(self) -> "IterativeMoments":
        return IterativeMoments.from_state_dict(self.state_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IterativeMoments(shape={self.shape}, order={self.order}, "
            f"count={self.count})"
        )


def batch_central_moments(
    samples: np.ndarray, order: int = 4
) -> Tuple[int, np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
    """Two-pass reference moments for validation against the iterative path.

    Parameters
    ----------
    samples:
        Array of shape ``(n,) + field_shape``; axis 0 is the sample axis.
    order:
        Highest central moment sum to return.

    Returns
    -------
    ``(n, mean, M2, M3, M4)`` with the same (unnormalized) definitions as
    :class:`IterativeMoments`; entries above ``order`` are ``None``.
    """
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.shape[0]
    mean = samples.mean(axis=0) if n else np.zeros(samples.shape[1:])
    centered = samples - mean
    m2 = (centered**2).sum(axis=0) if order >= 2 else None
    m3 = (centered**3).sum(axis=0) if order >= 3 else None
    m4 = (centered**4).sum(axis=0) if order >= 4 else None
    return n, mean, m2, m3, m4
