"""One-pass covariance and Pearson correlation of two synchronized streams.

The Martinez Sobol' estimator (paper Eq. 5-6) is a Pearson correlation
between two output vectors, so the whole in-transit machinery reduces to
maintaining ``(mean_x, mean_y, M2x, M2y, Cxy)`` per (cell, timestep) pair.
:class:`IterativeCovariance` tracks exactly that state with the numerically
stable co-moment update of Pebay (SAND2008-6212):

    dx    = x - mean_x            # uses the OLD mean of x
    mean_x += dx / n
    mean_y += (y - mean_y) / n
    Cxy   += dx * (y - mean_y)    # uses the NEW mean of y

which is exactly equal to the two-pass sum ``sum (x-mx)(y-my)``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.stats.moments import _as_field

ArrayLike = Union[float, np.ndarray]


class IterativeCovariance:
    """Streaming covariance (and both variances) of paired samples.

    All state arrays share the configured field ``shape``; updates are
    vectorized and in-place.  ``merge`` implements the exact pairwise
    combination so partial covariances from disjoint sample partitions can
    be reduced (used by checkpoint merging and the validation tests).
    """

    __slots__ = ("shape", "count", "mean_x", "mean_y", "m2_x", "m2_y", "cxy")

    def __init__(self, shape: Tuple[int, ...] = ()):
        self.shape = tuple(shape)
        self.count = 0
        self.mean_x = np.zeros(self.shape, dtype=np.float64)
        self.mean_y = np.zeros(self.shape, dtype=np.float64)
        self.m2_x = np.zeros(self.shape, dtype=np.float64)
        self.m2_y = np.zeros(self.shape, dtype=np.float64)
        self.cxy = np.zeros(self.shape, dtype=np.float64)

    def update(self, x: ArrayLike, y: ArrayLike) -> None:
        """Fold one paired sample ``(x, y)`` into the running co-moments."""
        x = _as_field(x, self.shape)
        y = _as_field(y, self.shape)
        self.count = n = self.count + 1
        dx = x - self.mean_x  # old-mean residual of x
        dy_old = y - self.mean_y
        self.mean_x += dx / n
        self.mean_y += dy_old / n
        dy_new = y - self.mean_y  # new-mean residual of y
        self.m2_x += dx * (x - self.mean_x)
        self.m2_y += dy_old * dy_new
        self.cxy += dx * dy_new

    def merge(self, other: "IterativeCovariance") -> None:
        """Absorb a disjoint partial stream (exact pairwise combination)."""
        if other.shape != self.shape:
            raise ValueError("cannot merge covariances with different shapes")
        na, nb = self.count, other.count
        if nb == 0:
            return
        if na == 0:
            self.count = other.count
            for name in ("mean_x", "mean_y", "m2_x", "m2_y", "cxy"):
                setattr(self, name, getattr(other, name).copy())
            return
        n = na + nb
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        scale = na * nb / n
        self.m2_x += other.m2_x + dx * dx * scale
        self.m2_y += other.m2_y + dy * dy * scale
        self.cxy += other.cxy + dx * dy * scale
        self.mean_x += dx * nb / n
        self.mean_y += dy * nb / n
        self.count = n

    # ------------------------------------------------------------------ #
    @property
    def covariance(self) -> np.ndarray:
        """Unbiased sample covariance (``nan`` where count < 2)."""
        if self.count < 2:
            return np.full(self.shape, np.nan)
        return self.cxy / (self.count - 1)

    @property
    def variance_x(self) -> np.ndarray:
        if self.count < 2:
            return np.full(self.shape, np.nan)
        return self.m2_x / (self.count - 1)

    @property
    def variance_y(self) -> np.ndarray:
        if self.count < 2:
            return np.full(self.shape, np.nan)
        return self.m2_y / (self.count - 1)

    @property
    def correlation(self) -> np.ndarray:
        """Pearson correlation; ``nan`` where either variance vanishes.

        Note the Bessel factors cancel, so this is ``Cxy / sqrt(M2x M2y)``
        directly on the unnormalized sums (cheaper and more stable).  The
        result is clipped to [-1, 1]: rounding on near-degenerate streams
        (variance ~ eps) can push the ratio marginally past the bound.
        """
        if self.count < 2:
            return np.full(self.shape, np.nan)
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = np.sqrt(self.m2_x * self.m2_y)
            ratio = np.where(denom > 0, self.cxy / denom, np.nan)
            return np.clip(ratio, -1.0, 1.0)

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_x": self.mean_x,
            "mean_y": self.mean_y,
            "m2_x": self.m2_x,
            "m2_y": self.m2_y,
            "cxy": self.cxy,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterativeCovariance":
        mean_x = np.asarray(state["mean_x"], dtype=np.float64)
        obj = cls(shape=mean_x.shape)
        obj.count = int(state["count"])
        obj.mean_x = mean_x.copy()
        for name in ("mean_y", "m2_x", "m2_y", "cxy"):
            setattr(obj, name, np.asarray(state[name], dtype=np.float64).copy())
        return obj

    def copy(self) -> "IterativeCovariance":
        return IterativeCovariance.from_state_dict(self.state_dict())

    def __repr__(self) -> str:  # pragma: no cover
        return f"IterativeCovariance(shape={self.shape}, count={self.count})"


class IterativeCorrelation(IterativeCovariance):
    """Alias emphasising the correlation use-case of the Martinez estimator.

    Identical state to :class:`IterativeCovariance`; exists so call sites
    that conceptually track a correlation (Sobol' indices) read naturally.
    """

    @property
    def value(self) -> np.ndarray:
        return self.correlation
