"""Iterative (one-pass) statistics substrate.

This package implements the numerically-stable, single-pass update formulas
that make in-transit sensitivity analysis possible (paper Sec. 3.1).  All
estimators accept either scalars or NumPy arrays of a fixed *field shape*;
array updates are fully vectorized so a 10M-cell field costs one fused pass
over the data, never a Python-level loop.

The formulas follow Welford (1962) for mean/variance, Pebay (SAND2008-6212)
for arbitrary-order central moments and co-moments, and Chan/Golub/LeVeque
for the pairwise *merge* operations used to combine partial statistics
computed on disjoint sample partitions (parallel reduction trees).

Exactness invariant
-------------------
Every iterative estimator here is algebraically identical to its two-pass
(batch) counterpart; tests assert agreement to floating-point tolerance.
This is the property the paper relies on when it replaces postmortem
statistics with on-the-fly updates.
"""

from repro.stats.moments import IterativeMoments, batch_central_moments
from repro.stats.covariance import IterativeCovariance, IterativeCorrelation
from repro.stats.extrema import IterativeExtrema, ThresholdExceedance
from repro.stats.field import FieldStatistics, StatisticsConfig

__all__ = [
    "IterativeMoments",
    "IterativeCovariance",
    "IterativeCorrelation",
    "IterativeExtrema",
    "ThresholdExceedance",
    "FieldStatistics",
    "StatisticsConfig",
    "batch_central_moments",
]
