"""Iterative (one-pass) statistics substrate.

This package implements the numerically-stable, single-pass update formulas
that make in-transit sensitivity analysis possible (paper Sec. 3.1).  All
estimators accept either scalars or NumPy arrays of a fixed *field shape*;
array updates are fully vectorized so a 10M-cell field costs one fused pass
over the data, never a Python-level loop.

The formulas follow Welford (1962) for mean/variance, Pebay (SAND2008-6212)
for arbitrary-order central moments and co-moments, and Chan/Golub/LeVeque
for the pairwise *merge* operations used to combine partial statistics
computed on disjoint sample partitions (parallel reduction trees).

Exactness invariant
-------------------
Every iterative estimator here is algebraically identical to its two-pass
(batch) counterpart; tests assert agreement to floating-point tolerance.
This is the property the paper relies on when it replaces postmortem
statistics with on-the-fly updates.
"""

from repro.stats.moments import IterativeMoments, batch_central_moments
from repro.stats.covariance import IterativeCovariance, IterativeCorrelation
from repro.stats.extrema import IterativeExtrema, ThresholdExceedance
from repro.stats.field import FieldStatistics, StatisticsConfig
from repro.stats.protocol import (
    FieldStatistic,
    StatContext,
    available_statistics,
    canonicalize_spec,
    canonicalize_specs,
    legacy_statistics_specs,
    lookup,
    register,
)
from repro.stats.pipeline import StatisticsPipeline

# importing the plugin modules populates the registry
from repro.stats import plugins as _plugins  # noqa: F401
from repro.stats import sketches as _sketches  # noqa: F401
from repro.stats import sobol_pairs as _sobol_pairs  # noqa: F401

__all__ = [
    "IterativeMoments",
    "IterativeCovariance",
    "IterativeCorrelation",
    "IterativeExtrema",
    "ThresholdExceedance",
    "FieldStatistics",
    "StatisticsConfig",
    "FieldStatistic",
    "StatContext",
    "StatisticsPipeline",
    "register",
    "lookup",
    "available_statistics",
    "canonicalize_spec",
    "canonicalize_specs",
    "legacy_statistics_specs",
    "batch_central_moments",
]
