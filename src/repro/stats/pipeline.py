"""Per-rank statistics pipeline: configured specs x timesteps.

:class:`StatisticsPipeline` is what a :class:`~repro.core.server.ServerRank`
owns instead of hardcoded statistic fields: one :class:`FieldStatistic`
instance per (spec, timestep), all driven by the same
``update(timestep, group_buffer)`` call the integration step already makes.
Results, checkpoint state, and merges are uniformly shaped so the server,
checkpoint, and assembly layers never name a concrete statistic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.kernels import parallel as _parallel
from repro.stats.protocol import (
    FieldStatistic,
    StatContext,
    canonicalize_specs,
    lookup,
    parse_spec,
)

__all__ = ["StatisticsPipeline"]


class StatisticsPipeline:
    """All configured statistics of one server rank, one row per spec."""

    def __init__(
        self,
        specs: Sequence[str],
        ctx: StatContext,
        ntimesteps: int,
        fold_threads: int = 1,
    ):
        self.specs: Tuple[str, ...] = canonicalize_specs(specs)
        self.ctx = ctx
        self.ntimesteps = int(ntimesteps)
        #: catalog rows folded concurrently on the shared fold pool when
        #: > 1 — rows are disjoint FieldStatistic objects, so the only
        #: ordering constraint is within a row, which each task preserves
        self.fold_threads = max(1, int(fold_threads))
        self._rows: List[List[FieldStatistic]] = []
        seen: Dict[str, str] = {}
        for spec in self.specs:
            name, params = parse_spec(spec)
            cls = lookup(name)
            row = [cls(ctx, params) for _ in range(self.ntimesteps)]
            for result in row[0].result_names:
                if result in seen:
                    raise ValueError(
                        f"statistics '{seen[result]}' and '{spec}' both "
                        f"produce a result named '{result}'"
                    )
                seen[result] = spec
            self._rows.append(row)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def instances_at(self, timestep: int) -> List[FieldStatistic]:
        return [row[timestep] for row in self._rows]

    @property
    def result_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        for row in self._rows:
            names.extend(row[0].result_names)
        return tuple(names)

    @property
    def exact_merge(self) -> bool:
        """True when every configured statistic merges exactly."""
        return all(row[0].exact_merge for row in self._rows)

    # ------------------------------------------------------------------ #
    def _dispatch(self, tasks: List) -> None:
        """Run row tasks, spread over at most ``fold_threads`` threads."""
        nthreads = min(self.fold_threads, len(tasks))
        if nthreads <= 1:
            for task in tasks:
                task()
            return
        _parallel.run_sharded([
            (lambda chunk=tasks[i::nthreads]: [task() for task in chunk])
            for i in range(nthreads)
        ])

    def update(self, timestep: int, group_buffer: np.ndarray) -> None:
        """Fold one complete group buffer into every statistic at ``timestep``."""
        if self.fold_threads > 1 and len(self._rows) > 1:
            self._dispatch([
                (lambda inst=row[timestep]: inst.update_group(group_buffer))
                for row in self._rows
            ])
            return
        for row in self._rows:
            row[timestep].update_group(group_buffer)

    def update_timed(
        self, timestep: int, group_buffer: np.ndarray, observers
    ) -> None:
        """:meth:`update` with per-spec duration observation.

        ``observers`` aligns with :attr:`specs`; each element needs an
        ``observe(seconds)`` method (telemetry histogram children).  The
        telemetry-off path keeps using :meth:`update` so the timer cost
        exists only when someone is watching.
        """
        perf = time.perf_counter

        def timed(inst, observer):
            def run():
                t0 = perf()
                inst.update_group(group_buffer)
                observer.observe(perf() - t0)
            return run

        tasks = [
            timed(row[timestep], observer)
            for row, observer in zip(self._rows, observers)
        ]
        if self.fold_threads > 1 and len(tasks) > 1:
            self._dispatch(tasks)
        else:
            for task in tasks:
                task()

    def merge(self, other: "StatisticsPipeline") -> None:
        """Absorb a disjoint pipeline (cross-rank / cross-shard reduction)."""
        if other.specs != self.specs or other.ntimesteps != self.ntimesteps:
            raise ValueError("cannot merge pipelines with different statistics")
        for mine, theirs in zip(self._rows, other._rows):
            for a, b in zip(mine, theirs):
                a.merge(b)

    # ------------------------------------------------------------------ #
    def results(self) -> Dict[str, np.ndarray]:
        """Name -> ``(ntimesteps, *extra, *field_shape)`` result arrays.

        Field axes are last on every array (the plugin contract), so
        cross-rank assembly is a plain ``concatenate(..., axis=-1)``.
        """
        out: Dict[str, np.ndarray] = {}
        for row in self._rows:
            finals = [inst.finalize() for inst in row]
            for name in row[0].result_names:
                out[name] = np.stack([f[name] for f in finals], axis=0)
        return out

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "specs": list(self.specs),
            "states": [[inst.state_dict() for inst in row] for row in self._rows],
        }

    def load_state(self, state: dict) -> None:
        found = tuple(state["specs"])
        if found != self.specs:
            raise ValueError(
                "checkpoint statistics do not match this study's configured "
                f"statistics: checkpoint has {list(found)}, study wants "
                f"{list(self.specs)}"
            )
        for row, row_state in zip(self._rows, state["states"]):
            if len(row_state) != self.ntimesteps:
                raise ValueError("checkpoint statistics timestep count mismatch")
            for inst, inst_state in zip(row, row_state):
                inst.load_state(inst_state)
