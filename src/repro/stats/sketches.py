"""Sketch statistics: histogram/PDF fields and online quantile maps.

Two quantile engines ship, with different fault-tolerance contracts:

``quantiles`` / ``histogram``
    A fixed-bin counting sketch over a user-declared value range.  Counts
    are integers, so ``merge`` is bit-exact and *order-invariant*: any
    split of the sample stream — across server ranks, respawns, replay
    discards, or runtimes — reduces to the identical state.  These are
    the catalog's default quantile/PDF maps and satisfy the rtol-1e-10
    cross-runtime parity guarantee.  The price is a declared ``[lo, hi]``
    range (values outside clamp into the edge bins; exact running min/max
    are tracked alongside to bound the interpolation).

``p2quantiles``
    The classic P² algorithm (Jain & Chlamtac 1985): five markers per
    (quantile, cell), no bins, no range declaration.  Marker updates
    depend on sample *order*, so its merge is a documented approximation
    (weighted-CDF recombination) and ``exact_merge`` is False: results
    are statistically sound but not bit-reproducible across different
    stream interleavings.  Use it when the output range is unknown.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.stats.moments import _as_field
from repro.stats.protocol import FieldStatistic, StatContext, register


class _BinnedSketch(FieldStatistic):
    """Shared substrate: integer bin counts + exact extrema over a range."""

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self.bins = int(self.params["bins"])
        self.lo = float(self.params["lo"])
        self.hi = float(self.params["hi"])
        if not self.hi > self.lo:
            raise ValueError(f"histogram range [{self.lo}, {self.hi}] is empty")
        self.size = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        self.count = 0
        self.counts = np.zeros((self.bins, self.size), dtype=np.int64)
        self.minimum = np.full(self.size, np.inf)
        self.maximum = np.full(self.size, -np.inf)
        self._cells = np.arange(self.size)

    @classmethod
    def canonical_value(cls, key: str, value: str) -> str:
        if key == "bins":
            canon = cls._canon_int(value, lo=2)
            return canon
        if key in ("lo", "hi"):
            return cls._canon_float(value)
        return cls._canon_float_list(value)

    def update(self, sample: np.ndarray) -> None:
        x = _as_field(sample, self.shape).reshape(self.size)
        self.count += 1
        np.minimum(self.minimum, x, out=self.minimum)
        np.maximum(self.maximum, x, out=self.maximum)
        scaled = (x - self.lo) * (self.bins / (self.hi - self.lo))
        idx = np.clip(np.floor(scaled).astype(np.int64), 0, self.bins - 1)
        self.counts[idx, self._cells] += 1

    def merge(self, other: "_BinnedSketch") -> None:
        if (other.bins, other.lo, other.hi, other.shape) != (
            self.bins, self.lo, self.hi, self.shape,
        ):
            raise ValueError("cannot merge sketches with different binning")
        self.count += other.count
        self.counts += other.counts
        np.minimum(self.minimum, other.minimum, out=self.minimum)
        np.maximum(self.maximum, other.maximum, out=self.maximum)

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "counts": self.counts,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    def load_state(self, state: dict) -> None:
        counts = np.asarray(state["counts"], dtype=np.int64)
        if counts.shape != (self.bins, self.size):
            raise ValueError("sketch state does not match configured binning")
        self.count = int(state["count"])
        self.counts = counts.copy()
        self.minimum = np.asarray(state["minimum"], dtype=np.float64).copy()
        self.maximum = np.asarray(state["maximum"], dtype=np.float64).copy()

    # ------------------------------------------------------------------ #
    def _edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.bins + 1)

    def _quantile_map(self, q: float) -> np.ndarray:
        """Per-cell quantile from the counting sketch (linear in-bin)."""
        if self.count == 0:
            return np.full(self.shape, np.nan)
        target = q * self.count
        cum = np.cumsum(self.counts, axis=0)  # (bins, size)
        # first bin whose cumulative count reaches the target
        b = np.sum(cum < target, axis=0)
        b = np.clip(b, 0, self.bins - 1)
        below = np.where(b > 0, cum[np.maximum(b - 1, 0), self._cells], 0)
        inside = self.counts[b, self._cells]
        width = (self.hi - self.lo) / self.bins
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(inside > 0, (target - below) / inside, 0.0)
        value = self.lo + (b + np.clip(frac, 0.0, 1.0)) * width
        # the exact extrema bound the sketch (also fixes clamped outliers)
        value = np.clip(value, self.minimum, self.maximum)
        return value.reshape(self.shape)


@register
class HistogramStatistic(_BinnedSketch):
    """Per-cell PDF fields over a declared value range."""

    name = "histogram"
    description = "per-cell PDF over a fixed [lo, hi] range (exact merge)"
    PARAMS = {"bins": "32", "lo": "0.0", "hi": "1.0"}

    @property
    def result_names(self) -> Tuple[str, ...]:
        return ("pdf",)

    def finalize(self) -> Dict[str, np.ndarray]:
        width = (self.hi - self.lo) / self.bins
        if self.count == 0:
            pdf = np.full((self.bins,) + self.shape, np.nan)
        else:
            density = self.counts / (self.count * width)
            pdf = density.reshape((self.bins,) + self.shape)
        return {"pdf": pdf}


@register
class QuantileStatistic(_BinnedSketch):
    """Online quantile maps with an exactly-mergeable counting sketch."""

    name = "quantiles"
    description = "per-cell quantile maps from a fixed-range sketch (exact merge)"
    PARAMS = {"qs": "0.1+0.5+0.9", "bins": "64", "lo": "0.0", "hi": "1.0"}

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self.qs = self._parse_float_list(self.params["qs"])
        if any(not 0.0 < q < 1.0 for q in self.qs):
            raise ValueError("quantiles must lie strictly inside (0, 1)")

    @property
    def result_names(self) -> Tuple[str, ...]:
        return tuple(f"quantile_{q:g}" for q in self.qs)

    def finalize(self) -> Dict[str, np.ndarray]:
        return {f"quantile_{q:g}": self._quantile_map(q) for q in self.qs}


@register
class P2QuantileStatistic(FieldStatistic):
    """P² online quantiles: five markers per (quantile, cell), no binning.

    ``exact_merge`` is False: P² marker positions depend on the order
    samples arrive, and merging two sketches recombines their marker
    CDFs approximately.  Accuracy is excellent in practice, but runs
    split differently across ranks/respawns are not bit-identical.
    """

    name = "p2quantiles"
    description = "P^2 marker quantiles, range-free (approximate merge)"
    PARAMS = {"qs": "0.1+0.5+0.9"}
    exact_merge = False

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self.qs = self._parse_float_list(self.params["qs"])
        if any(not 0.0 < q < 1.0 for q in self.qs):
            raise ValueError("quantiles must lie strictly inside (0, 1)")
        self.size = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
        self.nq = len(self.qs)
        self.count = 0
        # startup buffer: the first five samples seed the markers sorted
        self._buffer = np.zeros((5, self.size))
        # marker heights and (1-based) positions, per (quantile, marker, cell)
        self.heights = np.zeros((self.nq, 5, self.size))
        self.positions = np.zeros((self.nq, 5, self.size), dtype=np.int64)
        q = np.asarray(self.qs)[:, None]
        self._desired_frac = np.concatenate(
            [np.zeros_like(q), q / 2.0, q, (1.0 + q) / 2.0, np.ones_like(q)],
            axis=1,
        )  # (nq, 5)

    # ------------------------------------------------------------------ #
    def update(self, sample: np.ndarray) -> None:
        x = _as_field(sample, self.shape).reshape(self.size)
        if self.count < 5:
            self._buffer[self.count] = x
            self.count += 1
            if self.count == 5:
                seed = np.sort(self._buffer, axis=0)  # (5, size)
                self.heights[:] = seed[None, :, :]
                self.positions[:] = np.arange(1, 6, dtype=np.int64)[None, :, None]
            return
        self.count += 1
        h, pos = self.heights, self.positions
        xq = np.broadcast_to(x, (self.nq, self.size))
        # locate the cell k of x among the markers; extremes adjust h0/h4
        below = xq < h[:, 0, :]
        above = xq >= h[:, 4, :]
        h[:, 0, :] = np.where(below, xq, h[:, 0, :])
        h[:, 4, :] = np.where(above & (xq > h[:, 4, :]), xq, h[:, 4, :])
        # k in {0,1,2,3}: number of markers 1..3 with h_k <= x, clipped
        k = np.sum(xq[:, None, :] >= h[:, 1:4, :], axis=1)  # 0..3
        k = np.where(above, 3, k)
        # markers above cell k shift right by one observation
        marker_idx = np.arange(5)[None, :, None]
        pos += marker_idx > k[:, None, :]
        desired = 1.0 + (self.count - 1) * self._desired_frac[:, :, None]
        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            d = desired[:, i, :] - pos[:, i, :]
            gap_up = pos[:, i + 1, :] - pos[:, i, :]
            gap_dn = pos[:, i - 1, :] - pos[:, i, :]
            move_up = (d >= 1.0) & (gap_up > 1)
            move_dn = (d <= -1.0) & (gap_dn < -1)
            step = np.where(move_up, 1, np.where(move_dn, -1, 0))
            active = step != 0
            if not active.any():
                continue
            ns = step.astype(np.float64)
            npos = pos[:, i, :].astype(np.float64)
            nprev = pos[:, i - 1, :].astype(np.float64)
            nnext = pos[:, i + 1, :].astype(np.float64)
            hq, hp, hn = h[:, i, :], h[:, i - 1, :], h[:, i + 1, :]
            with np.errstate(divide="ignore", invalid="ignore"):
                # piecewise-parabolic prediction
                para = hq + ns / (nnext - nprev) * (
                    (npos - nprev + ns) * (hn - hq) / (nnext - npos)
                    + (nnext - npos - ns) * (hq - hp) / (npos - nprev)
                )
                # linear fallback when the parabola leaves the bracket
                lin_anchor = np.where(ns > 0, hn, hp)
                lin_gap = np.where(ns > 0, nnext - npos, nprev - npos)
                linear = hq + ns * (lin_anchor - hq) / lin_gap
            bad = ~((hp < para) & (para < hn))
            new_h = np.where(bad, linear, para)
            h[:, i, :] = np.where(active, new_h, hq)
            pos[:, i, :] += step

    # ------------------------------------------------------------------ #
    def merge(self, other: "P2QuantileStatistic") -> None:
        if other.qs != self.qs or other.shape != self.shape:
            raise ValueError("cannot merge P2 sketches with different quantiles")
        if other.count == 0:
            return
        if other.count < 5:
            # other is still buffering raw samples: just replay them
            for i in range(other.count):
                self.update(other._buffer[i].reshape(self.shape))
            return
        if self.count < 5:
            buffered, nbuf = self._buffer.copy(), self.count
            self.count = other.count
            self._buffer = other._buffer.copy()
            self.heights = other.heights.copy()
            self.positions = other.positions.copy()
            for i in range(nbuf):
                self.update(buffered[i].reshape(self.shape))
            return
        # both initialized: recombine the two marker CDFs by weighted
        # interpolation.  Each marker carries the mass of the observations
        # it summarizes (half-gaps to its neighbours).
        na, nb = self.count, other.count
        n = na + nb
        points = np.concatenate([self.heights, other.heights], axis=1)  # (nq,10,size)
        weights = np.concatenate(
            [self._marker_mass(), other._marker_mass()], axis=1
        )
        order = np.argsort(points, axis=1, kind="stable")
        points = np.take_along_axis(points, order, axis=1)
        weights = np.take_along_axis(weights, order, axis=1)
        cum = np.cumsum(weights, axis=1)
        total = cum[:, -1:, :]
        # combined marker heights at the five desired cumulative fractions
        for i in range(5):
            target = self._desired_frac[:, i, None] * total[:, 0, :]
            idx = np.sum(cum < target[:, None, :], axis=1)
            idx = np.clip(idx, 0, points.shape[1] - 1)
            take = np.take_along_axis(points, idx[:, None, :], axis=1)[:, 0, :]
            self.heights[:, i, :] = take
        self.heights.sort(axis=1)
        self.count = n
        ideal = np.rint(1.0 + (n - 1) * self._desired_frac).astype(np.int64)
        self.positions[:] = np.maximum(ideal[:, :, None], 1)
        self.positions[:, -1, :] = n

    def _marker_mass(self) -> np.ndarray:
        """Observation mass each marker represents, per (quantile, cell)."""
        pos = self.positions.astype(np.float64)
        mass = np.empty_like(pos)
        mass[:, 0, :] = (pos[:, 1, :] - pos[:, 0, :]) / 2.0 + 0.5
        mass[:, 4, :] = (pos[:, 4, :] - pos[:, 3, :]) / 2.0 + 0.5
        for i in (1, 2, 3):
            mass[:, i, :] = (pos[:, i + 1, :] - pos[:, i - 1, :]) / 2.0
        return mass

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "buffer": self._buffer,
            "heights": self.heights,
            "positions": self.positions,
        }

    def load_state(self, state: dict) -> None:
        heights = np.asarray(state["heights"], dtype=np.float64)
        if heights.shape != (self.nq, 5, self.size):
            raise ValueError("P2 state does not match configured statistic")
        self.count = int(state["count"])
        self._buffer = np.asarray(state["buffer"], dtype=np.float64).copy()
        self.heights = heights.copy()
        self.positions = np.asarray(state["positions"], dtype=np.int64).copy()

    @property
    def result_names(self) -> Tuple[str, ...]:
        return tuple(f"p2quantile_{q:g}" for q in self.qs)

    def finalize(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for qi, q in enumerate(self.qs):
            if self.count == 0:
                value = np.full(self.shape, np.nan)
            elif self.count < 5:
                samples = np.sort(self._buffer[: self.count], axis=0)
                value = np.quantile(samples, q, axis=0).reshape(self.shape)
            else:
                value = self.heights[qi, 2, :].reshape(self.shape)
            out[f"p2quantile_{q:g}"] = value
        return out
