"""Built-in catalog plugins wrapping the classic iterative estimators.

These port the statistics Melissa's earlier incarnation computed (paper
ref. [44]: moments, min/max, threshold exceedance) onto the
:class:`~repro.stats.protocol.FieldStatistic` protocol.  All three carry
exact Chan/Pebay pairwise merges, so they enjoy the full fault-tolerance
guarantee across respawn and replay.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.stats.extrema import IterativeExtrema, ThresholdExceedance
from repro.stats.moments import IterativeMoments
from repro.stats.protocol import FieldStatistic, StatContext, register


@register
class MomentsStatistic(FieldStatistic):
    """Central moments (mean .. kurtosis) of the A/B member streams."""

    name = "moments"
    description = "one-pass central moments: mean, variance, skewness, kurtosis"
    PARAMS = {"order": "2"}

    _RESULTS = ("mean", "variance", "skewness", "kurtosis")

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self.order = int(self.params["order"])
        self._moments = IterativeMoments(self.shape, order=self.order)

    @classmethod
    def canonical_value(cls, key: str, value: str) -> str:
        canon = cls._canon_int(value)
        if int(canon) not in (1, 2, 3, 4):
            raise ValueError(f"moments order must be 1..4, got {canon}")
        return canon

    def update(self, sample: np.ndarray) -> None:
        self._moments.update(sample)

    def merge(self, other: "MomentsStatistic") -> None:
        self._moments.merge(other._moments)

    def state_dict(self) -> dict:
        return self._moments.state_dict()

    def load_state(self, state: dict) -> None:
        moments = IterativeMoments.from_state_dict(state)
        if moments.shape != self.shape or moments.order != self.order:
            raise ValueError("moments state does not match configured statistic")
        self._moments = moments

    @property
    def result_names(self) -> Tuple[str, ...]:
        return self._RESULTS[: self.order]

    def finalize(self) -> Dict[str, np.ndarray]:
        m = self._moments
        out: Dict[str, np.ndarray] = {"mean": m.mean.copy()}
        if self.order >= 2:
            out["variance"] = m.variance
        if self.order >= 3:
            out["skewness"] = m.skewness
        if self.order >= 4:
            out["kurtosis"] = m.kurtosis
        return out

    # direct access used by tests and the legacy-compat surface
    @property
    def count(self) -> int:
        return self._moments.count

    @property
    def mean(self) -> np.ndarray:
        return self._moments.mean

    @property
    def variance(self) -> np.ndarray:
        return self._moments.variance


@register
class ExtremaStatistic(FieldStatistic):
    """Elementwise running min/max of the A/B member streams."""

    name = "extrema"
    description = "per-cell running minimum and maximum"
    PARAMS: Dict[str, str] = {}

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self._extrema = IterativeExtrema(self.shape)

    def update(self, sample: np.ndarray) -> None:
        self._extrema.update(sample)

    def merge(self, other: "ExtremaStatistic") -> None:
        self._extrema.merge(other._extrema)

    def state_dict(self) -> dict:
        return self._extrema.state_dict()

    def load_state(self, state: dict) -> None:
        extrema = IterativeExtrema.from_state_dict(state)
        if extrema.shape != self.shape:
            raise ValueError("extrema state does not match configured statistic")
        self._extrema = extrema

    @property
    def result_names(self) -> Tuple[str, ...]:
        return ("minimum", "maximum")

    def finalize(self) -> Dict[str, np.ndarray]:
        return {
            "minimum": self._extrema.minimum.copy(),
            "maximum": self._extrema.maximum.copy(),
        }


@register
class ExceedanceStatistic(FieldStatistic):
    """Empirical threshold-exceedance probability maps, one per threshold.

    Counts are integers, so the merge is bit-exact regardless of stream
    order — the strongest fault-tolerance guarantee in the catalog.
    """

    name = "exceedance"
    description = "P(Y > threshold) per cell, one map per threshold"
    PARAMS = {"thresholds": None}  # required

    def __init__(self, ctx: StatContext, params=None):
        super().__init__(ctx, params)
        self.thresholds = self._parse_float_list(self.params["thresholds"])
        self._counters = [
            ThresholdExceedance(self.shape, threshold=t) for t in self.thresholds
        ]

    @classmethod
    def canonical_value(cls, key: str, value: str) -> str:
        return cls._canon_float_list(value)

    def update(self, sample: np.ndarray) -> None:
        for counter in self._counters:
            counter.update(sample)

    def merge(self, other: "ExceedanceStatistic") -> None:
        if other.thresholds != self.thresholds:
            raise ValueError("cannot merge exceedance maps with different thresholds")
        for mine, theirs in zip(self._counters, other._counters):
            mine.merge(theirs)

    def state_dict(self) -> dict:
        return {"counters": [c.state_dict() for c in self._counters]}

    def load_state(self, state: dict) -> None:
        counters = [ThresholdExceedance.from_state_dict(s) for s in state["counters"]]
        if tuple(c.threshold for c in counters) != self.thresholds:
            raise ValueError("exceedance state does not match configured thresholds")
        self._counters = counters

    @property
    def result_names(self) -> Tuple[str, ...]:
        return tuple(f"exceedance_{t:g}" for t in self.thresholds)

    def finalize(self) -> Dict[str, np.ndarray]:
        return {
            f"exceedance_{c.threshold:g}": c.probability for c in self._counters
        }
