"""Streaming extrema and threshold-exceedance counters.

These are the auxiliary statistics Melissa computed in its earlier
incarnation (paper ref. [44]: average, std, min, max, threshold
exceedance) and which the server can still be configured to maintain on
the A/B member outputs (Sec. 4.1: "beside Sobol' indices, Melissa can be
configured to compute other iterative statistics on the same data").
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.stats.moments import _as_field

ArrayLike = Union[float, np.ndarray]


class IterativeExtrema:
    """Elementwise running min and max over a stream of field samples."""

    __slots__ = ("shape", "count", "minimum", "maximum")

    def __init__(self, shape: Tuple[int, ...] = ()):
        self.shape = tuple(shape)
        self.count = 0
        self.minimum = np.full(self.shape, np.inf)
        self.maximum = np.full(self.shape, -np.inf)

    def update(self, sample: ArrayLike) -> None:
        x = _as_field(sample, self.shape)
        self.count += 1
        np.minimum(self.minimum, x, out=self.minimum)
        np.maximum(self.maximum, x, out=self.maximum)

    def merge(self, other: "IterativeExtrema") -> None:
        if other.shape != self.shape:
            raise ValueError("cannot merge extrema with different shapes")
        self.count += other.count
        np.minimum(self.minimum, other.minimum, out=self.minimum)
        np.maximum(self.maximum, other.maximum, out=self.maximum)

    @property
    def range(self) -> np.ndarray:
        """max - min (``nan`` before any sample)."""
        if self.count == 0:
            return np.full(self.shape, np.nan)
        return self.maximum - self.minimum

    def state_dict(self) -> dict:
        return {"count": self.count, "minimum": self.minimum, "maximum": self.maximum}

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterativeExtrema":
        minimum = np.asarray(state["minimum"], dtype=np.float64)
        obj = cls(shape=minimum.shape)
        obj.count = int(state["count"])
        obj.minimum = minimum.copy()
        obj.maximum = np.asarray(state["maximum"], dtype=np.float64).copy()
        return obj


class ThresholdExceedance:
    """Per-cell count (and probability) of samples exceeding a threshold."""

    __slots__ = ("shape", "threshold", "count", "exceedances")

    def __init__(self, shape: Tuple[int, ...] = (), threshold: float = 0.0):
        self.shape = tuple(shape)
        self.threshold = float(threshold)
        self.count = 0
        self.exceedances = np.zeros(self.shape, dtype=np.int64)

    def update(self, sample: ArrayLike) -> None:
        x = _as_field(sample, self.shape)
        self.count += 1
        self.exceedances += x > self.threshold

    def merge(self, other: "ThresholdExceedance") -> None:
        if other.shape != self.shape or other.threshold != self.threshold:
            raise ValueError("incompatible threshold-exceedance merge")
        self.count += other.count
        self.exceedances += other.exceedances

    @property
    def probability(self) -> np.ndarray:
        """Empirical exceedance probability per cell (``nan`` before data)."""
        if self.count == 0:
            return np.full(self.shape, np.nan)
        return self.exceedances / self.count

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "threshold": self.threshold,
            "exceedances": self.exceedances,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "ThresholdExceedance":
        exceedances = np.asarray(state["exceedances"], dtype=np.int64)
        obj = cls(shape=exceedances.shape, threshold=float(state["threshold"]))
        obj.count = int(state["count"])
        obj.exceedances = exceedances.copy()
        return obj
