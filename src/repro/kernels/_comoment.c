/* Fused co-moment kernel for the batched Martinez fold.
 *
 * Given nb staged member slabs (each (m, stride) row-major, m = p + 2
 * streams ordered [Y^A, Y^B, Y^C1 .. Y^Cp]) and a cell window
 * [lo, lo + W), accumulate in ONE pass over the data:
 *
 *   sz[i, n]      = sum_b  z_b[i, n]               (residual sums)
 *   gd[i, n]      = sum_b  z_b[i, n]^2             (raw second moments)
 *   gx[l*p+k, n]  = sum_b  z_b[l, n] * z_b[2+k, n] (raw cross co-moments)
 *
 * where z_b = slab_b - slab_0 is the residual against the first staged
 * slab (slab_0 contributes the implicit all-zero row, so loops start at
 * b = 1).  Two entry points share the accumulation pipeline:
 *
 * - fold_block:  write the raw sums out; the caller centers them
 *   (gd - nb*mz^2, gx - nb*mzx*mzc) and runs the Pebay combination in
 *   NumPy — the pure-batch API every backend offers.
 * - fold_apply:  additionally fuse the centering AND the exact pairwise
 *   (Pebay, SAND2008-6212) combination into the running state arrays
 *   (mean/m2/cxy), eliminating the separate NumPy combine passes; this
 *   is the full-fold fast path.
 *
 * The hot loop is register-blocked: an NT-cell tile is processed with
 * the batch loop innermost so the 3m + 2p accumulators stay in vector
 * registers; per-p specializations (p = 1..8 covers the paper's p = 6)
 * let the compiler fully unroll the stream loops.  A VLA-tiled generic
 * version covers larger p.
 *
 * Built at first use by repro.kernels.cext with the system C compiler;
 * if no compiler is present the backend reports itself unavailable and
 * selection falls back to the einsum baseline.
 *
 * Threading: this file deliberately has NO Python API — no #include
 * <Python.h>, no Py_BEGIN_ALLOW_THREADS — because it is loaded through
 * ctypes.CDLL, which already releases the GIL around every foreign
 * call.  Both entry points touch only their arguments and stack-local
 * accumulators, so concurrent calls over disjoint [lo, lo+W) windows
 * (the repro.kernels.parallel cell shards) are data-race-free.
 */

#include <stddef.h>

#define NT 16

/* Writeback helpers, instantiated inside the tile loop.
 *
 * RAW mode: dump the accumulators for the Python-side centering.
 * APPLY mode: center about the batch mean and combine with the running
 * state.  With na prior samples and nb new ones:
 *     mz   = sz / nb                   (batch mean of residuals)
 *     gd_c = gd - nb mz^2              (centered diagonal)
 *     gx_c = gx - nb mz_l mz_k         (centered cross)
 *     d    = ref + mz - mean           (batch mean minus running mean)
 *     m2   += gd_c + f d^2             f  = na nb / (na + nb)
 *     cxy  += gx_c + f d_l d_k
 *     mean += d * wb                   wb = nb / (na + nb)
 * and for na == 0 the combination degenerates to plain assignment.
 */

#define DEFINE_FOLD(P)                                                        \
static void fold_p##P(const double *const *slabs, ptrdiff_t nb,               \
                      ptrdiff_t stride, ptrdiff_t lo, ptrdiff_t W,            \
                      int apply, ptrdiff_t na, ptrdiff_t sstride,             \
                      double *o1, double *o2, double *o3)                     \
{                                                                             \
    enum { M = P + 2 };                                                       \
    double inv_b = 1.0 / (double) nb;                                         \
    double f = 0.0, wb = 0.0;                                                 \
    if (apply && na > 0) {                                                    \
        double n = (double) (na + nb);                                        \
        f = (double) na * (double) nb / n;                                    \
        wb = (double) nb / n;                                                 \
    }                                                                         \
    for (ptrdiff_t n0 = 0; n0 < W; n0 += NT) {                                \
        ptrdiff_t nn = W - n0 < NT ? W - n0 : NT;                             \
        double asz[M][NT], agd[M][NT], agx[2 * P][NT];                        \
        for (int i = 0; i < M; i++)                                           \
            for (int n = 0; n < NT; n++) { asz[i][n] = 0.0; agd[i][n] = 0.0; }\
        for (int j = 0; j < 2 * P; j++)                                       \
            for (int n = 0; n < NT; n++) agx[j][n] = 0.0;                     \
        const double *rf = slabs[0] + lo + n0;                                \
        if (nn == NT) {                                                       \
            for (ptrdiff_t b = 1; b < nb; b++) {                              \
                const double *sb = slabs[b] + lo + n0;                        \
                double z[M][NT];                                              \
                for (int i = 0; i < M; i++)                                   \
                    for (int n = 0; n < NT; n++) {                            \
                        double zz = sb[i * stride + n] - rf[i * stride + n];  \
                        z[i][n] = zz;                                         \
                        asz[i][n] += zz;                                      \
                        agd[i][n] += zz * zz;                                 \
                    }                                                         \
                for (int l = 0; l < 2; l++)                                   \
                    for (int k = 0; k < P; k++)                               \
                        for (int n = 0; n < NT; n++)                          \
                            agx[l * P + k][n] += z[l][n] * z[2 + k][n];       \
            }                                                                 \
        } else {                                                              \
            for (ptrdiff_t b = 1; b < nb; b++) {                              \
                const double *sb = slabs[b] + lo + n0;                        \
                double z[M][NT];                                              \
                for (int i = 0; i < M; i++)                                   \
                    for (ptrdiff_t n = 0; n < nn; n++) {                      \
                        double zz = sb[i * stride + n] - rf[i * stride + n];  \
                        z[i][n] = zz;                                         \
                        asz[i][n] += zz;                                      \
                        agd[i][n] += zz * zz;                                 \
                    }                                                         \
                for (int l = 0; l < 2; l++)                                   \
                    for (int k = 0; k < P; k++)                               \
                        for (ptrdiff_t n = 0; n < nn; n++)                    \
                            agx[l * P + k][n] += z[l][n] * z[2 + k][n];       \
            }                                                                 \
        }                                                                     \
        if (!apply) {                                                         \
            for (int i = 0; i < M; i++)                                       \
                for (ptrdiff_t n = 0; n < nn; n++) {                          \
                    o1[i * W + n0 + n] = asz[i][n];                           \
                    o2[i * W + n0 + n] = agd[i][n];                           \
                }                                                             \
            for (int j = 0; j < 2 * P; j++)                                   \
                for (ptrdiff_t n = 0; n < nn; n++)                            \
                    o3[j * W + n0 + n] = agx[j][n];                           \
        } else {                                                              \
            double mzv[M][NT], dv[M][NT];                                     \
            for (int i = 0; i < M; i++) {                                     \
                double *mean = o1 + i * sstride + lo + n0;                    \
                double *m2 = o2 + i * sstride + lo + n0;                      \
                const double *ri = rf + i * stride;                           \
                for (ptrdiff_t n = 0; n < nn; n++) {                          \
                    double mz = asz[i][n] * inv_b;                            \
                    double gdc = agd[i][n] - nb * mz * mz;                    \
                    mzv[i][n] = mz;                                           \
                    if (na == 0) {                                            \
                        mean[n] = ri[n] + mz;                                 \
                        m2[n] = gdc;                                          \
                    } else {                                                  \
                        double d = ri[n] + mz - mean[n];                      \
                        dv[i][n] = d;                                         \
                        m2[n] += gdc + f * d * d;                             \
                        mean[n] += d * wb;                                    \
                    }                                                         \
                }                                                             \
            }                                                                 \
            for (int l = 0; l < 2; l++)                                       \
                for (int k = 0; k < P; k++) {                                 \
                    double *cxy = o3 + (l * P + k) * sstride + lo + n0;       \
                    for (ptrdiff_t n = 0; n < nn; n++) {                      \
                        double gxc =                                          \
                            agx[l * P + k][n] - nb * mzv[l][n] * mzv[2 + k][n];\
                        if (na == 0)                                          \
                            cxy[n] = gxc;                                     \
                        else                                                  \
                            cxy[n] += gxc + f * dv[l][n] * dv[2 + k][n];      \
                    }                                                         \
                }                                                             \
        }                                                                     \
    }                                                                         \
}

DEFINE_FOLD(1) DEFINE_FOLD(2) DEFINE_FOLD(3) DEFINE_FOLD(4)
DEFINE_FOLD(5) DEFINE_FOLD(6) DEFINE_FOLD(7) DEFINE_FOLD(8)

/* Generic fallback for p > 8: same pipeline, stream loops not unrolled,
   tile scratch as VLAs. */
static void fold_generic(const double *const *slabs, ptrdiff_t nb,
                         ptrdiff_t m, ptrdiff_t stride, ptrdiff_t lo,
                         ptrdiff_t W, int apply, ptrdiff_t na,
                         ptrdiff_t sstride, double *o1, double *o2,
                         double *o3)
{
    ptrdiff_t p = m - 2;
    double inv_b = 1.0 / (double) nb;
    double f = 0.0, wb = 0.0;
    if (apply && na > 0) {
        double n = (double) (na + nb);
        f = (double) na * (double) nb / n;
        wb = (double) nb / n;
    }
    for (ptrdiff_t n0 = 0; n0 < W; n0 += NT) {
        ptrdiff_t nn = W - n0 < NT ? W - n0 : NT;
        double asz[m][NT], agd[m][NT], agx[2 * p][NT], z[m][NT];
        for (ptrdiff_t i = 0; i < m; i++)
            for (int n = 0; n < NT; n++) { asz[i][n] = 0.0; agd[i][n] = 0.0; }
        for (ptrdiff_t j = 0; j < 2 * p; j++)
            for (int n = 0; n < NT; n++) agx[j][n] = 0.0;
        const double *rf = slabs[0] + lo + n0;
        for (ptrdiff_t b = 1; b < nb; b++) {
            const double *sb = slabs[b] + lo + n0;
            for (ptrdiff_t i = 0; i < m; i++)
                for (ptrdiff_t n = 0; n < nn; n++) {
                    double zz = sb[i * stride + n] - rf[i * stride + n];
                    z[i][n] = zz;
                    asz[i][n] += zz;
                    agd[i][n] += zz * zz;
                }
            for (ptrdiff_t l = 0; l < 2; l++)
                for (ptrdiff_t k = 0; k < p; k++)
                    for (ptrdiff_t n = 0; n < nn; n++)
                        agx[l * p + k][n] += z[l][n] * z[2 + k][n];
        }
        if (!apply) {
            for (ptrdiff_t i = 0; i < m; i++)
                for (ptrdiff_t n = 0; n < nn; n++) {
                    o1[i * W + n0 + n] = asz[i][n];
                    o2[i * W + n0 + n] = agd[i][n];
                }
            for (ptrdiff_t j = 0; j < 2 * p; j++)
                for (ptrdiff_t n = 0; n < nn; n++)
                    o3[j * W + n0 + n] = agx[j][n];
        } else {
            double mzv[m][NT], dv[m][NT];
            for (ptrdiff_t i = 0; i < m; i++) {
                double *mean = o1 + i * sstride + lo + n0;
                double *m2 = o2 + i * sstride + lo + n0;
                const double *ri = rf + i * stride;
                for (ptrdiff_t n = 0; n < nn; n++) {
                    double mz = asz[i][n] * inv_b;
                    double gdc = agd[i][n] - nb * mz * mz;
                    mzv[i][n] = mz;
                    if (na == 0) {
                        mean[n] = ri[n] + mz;
                        m2[n] = gdc;
                    } else {
                        double d = ri[n] + mz - mean[n];
                        dv[i][n] = d;
                        m2[n] += gdc + f * d * d;
                        mean[n] += d * wb;
                    }
                }
            }
            for (ptrdiff_t l = 0; l < 2; l++)
                for (ptrdiff_t k = 0; k < p; k++) {
                    double *cxy = o3 + (l * p + k) * sstride + lo + n0;
                    for (ptrdiff_t n = 0; n < nn; n++) {
                        double gxc =
                            agx[l * p + k][n] - nb * mzv[l][n] * mzv[2 + k][n];
                        if (na == 0)
                            cxy[n] = gxc;
                        else
                            cxy[n] += gxc + f * dv[l][n] * dv[2 + k][n];
                    }
                }
        }
    }
}

static int dispatch(const double *const *slabs, ptrdiff_t nb, ptrdiff_t m,
                    ptrdiff_t stride, ptrdiff_t lo, ptrdiff_t W, int apply,
                    ptrdiff_t na, ptrdiff_t sstride, double *o1, double *o2,
                    double *o3)
{
    if (nb < 1 || m < 3 || W < 1)
        return 1;
    switch (m - 2) {
    case 1: fold_p1(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 2: fold_p2(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 3: fold_p3(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 4: fold_p4(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 5: fold_p5(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 6: fold_p6(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 7: fold_p7(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    case 8: fold_p8(slabs, nb, stride, lo, W, apply, na, sstride, o1, o2, o3); return 0;
    }
    if (m <= 66) {  /* VLA tile budget: ~6m * NT doubles on stack */
        fold_generic(slabs, nb, m, stride, lo, W, apply, na, sstride,
                     o1, o2, o3);
        return 0;
    }
    return 1;
}

/* Pure-batch API: raw sums out, centering/combination left to the caller. */
int fold_block(const double *const *slabs, ptrdiff_t nb, ptrdiff_t m,
               ptrdiff_t stride, ptrdiff_t lo, ptrdiff_t W,
               double *sz, double *gd, double *gx)
{
    return dispatch(slabs, nb, m, stride, lo, W, 0, 0, 0, sz, gd, gx);
}

/* Full-fold API: center and Pebay-combine directly into the running
   state arrays (mean/m2 row stride and cxy row stride both sstride). */
int fold_apply(const double *const *slabs, ptrdiff_t nb, ptrdiff_t m,
               ptrdiff_t stride, ptrdiff_t lo, ptrdiff_t W, ptrdiff_t na,
               ptrdiff_t sstride, double *mean, double *m2, double *cxy)
{
    return dispatch(slabs, nb, m, stride, lo, W, 1, na, sstride,
                    mean, m2, cxy);
}
