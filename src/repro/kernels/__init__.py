"""Pluggable compiled co-moment kernels for the batched Sobol' fold.

The fold hot path of :class:`~repro.sobol.martinez.UbiquitousSobolField`
is one contraction shape — batch residual co-moments per cell — with
several profitable implementations.  This package makes the backend a
runtime choice:

========  ==========================================================
backend   what it is
========  ==========================================================
einsum    PR 1 baseline: NumPy einsum contractions (always available)
blas      GEMM/syrk-shaped stacked ``np.matmul`` over cell-major
          residuals (multi-threaded BLAS, contiguous memory)
cext      fused register-blocked C kernel, compiled on demand with the
          system compiler (no pip dependency; unavailable without a
          C compiler)
numba     fused Numba-JIT kernel (unavailable when numba is absent)
auto      micro-autotunes the available backends on the first real
          fold and locks in the fastest (the default)
========  ==========================================================

Selection precedence: explicit ``StudyConfig.kernel`` / ``--kernel`` >
the ``REPRO_KERNEL`` environment variable > ``auto``.  Requesting an
unavailable optional backend falls back to the einsum baseline with a
warning — studies never fail because a host lacks a toolchain.  Every
backend computes the same mathematically exact formulas; the equivalence
suite pins them all to the scalar reference at rtol 1e-10.

Multicore folds: every backend here releases the GIL during its compute
loops — the cext pipeline through ``ctypes.CDLL`` (which drops the GIL
around every foreign call by construction), einsum/BLAS through NumPy's
buffer-threshold GIL release, numba via ``nogil=True`` — so the
:mod:`repro.kernels.parallel` layer can shard one fold across cell
blocks onto a thread pool and actually run them concurrently.  Kernel
instances own reusable scratch and are NOT thread-safe; the parallel
layer builds one instance per worker thread.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import CoMomentKernel
from repro.kernels.blas import BlasKernel
from repro.kernels.einsum import EinsumKernel

ENV_VAR = "REPRO_KERNEL"

#: selectable names (auto resolves to one of the others)
KERNEL_NAMES = ("auto", "einsum", "blas", "cext", "numba")

#: smallest batch worth measuring (below this the candidates are
#: indistinguishable and the compiled backends have no batch to amortize)
_AUTOTUNE_MIN_BATCH = 4

#: a stream that only ever produces sub-threshold folds settles on the
#: einsum baseline after this many of them (for tiny batches the
#: contraction is trivial and einsum IS the right choice)
_AUTOTUNE_SMALL_FOLD_LIMIT = 8

_autotune_cache: Dict[Tuple[int, int, int], str] = {}


def _construct(name: str, nparams: int, batch_size: int, block_cells: int):
    if name == "einsum":
        return EinsumKernel(nparams, batch_size, block_cells)
    if name == "blas":
        return BlasKernel(nparams, batch_size, block_cells)
    if name == "cext":
        from repro.kernels.cext import CExtKernel

        return CExtKernel(nparams, batch_size, block_cells)
    if name == "numba":
        from repro.kernels.numba_backend import NumbaKernel

        return NumbaKernel(nparams, batch_size, block_cells)
    raise ValueError(f"unknown kernel backend {name!r}; choose from {KERNEL_NAMES}")


def available_backends() -> List[str]:
    """Concrete backends usable on this host, in autotune-candidate order."""
    out = ["einsum", "blas"]
    from repro.kernels import cext, numba_backend

    if cext.available():
        out.append("cext")
    if numba_backend.available():
        out.append("numba")
    return out


def warm_compiled_backends() -> None:
    """Probe (and thus build/load) the compiled backends in this process.

    Call before forking workers: the cext shared library compiles once
    here and every child inherits the loaded module / warm disk cache
    instead of racing into duplicate compiler runs on first fold.
    """
    from repro.kernels import cext

    cext.available()


def resolve_spec(spec: Optional[str]) -> str:
    """Apply selection precedence: explicit spec > REPRO_KERNEL > auto."""
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "auto"
    spec = str(spec).lower()
    if spec not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel backend {spec!r}; choose from {KERNEL_NAMES}"
        )
    return spec


def make_kernel(
    spec: Optional[str], nparams: int, batch_size: int, block_cells: int
) -> CoMomentKernel:
    """Build the kernel for a field, honoring precedence and fallback."""
    name = resolve_spec(spec)
    if name == "auto":
        return AutoKernel(nparams, batch_size, block_cells)
    try:
        return _construct(name, nparams, batch_size, block_cells)
    except RuntimeError as exc:
        # graceful fallback: optional backend missing on this host
        warnings.warn(
            f"kernel backend {name!r} unavailable ({exc}); "
            "falling back to 'einsum'",
            RuntimeWarning,
            stacklevel=2,
        )
        return EinsumKernel(nparams, batch_size, block_cells)


class AutoKernel(CoMomentKernel):
    """Micro-autotuning facade: measures the candidates on the first
    real fold (actual slabs, actual cell window) and delegates to the
    winner from then on.  The choice is cached process-wide per
    (nparams, batch_size, block_cells) so every server rank of a study
    tunes at most once per process.
    """

    name = "auto"

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        super().__init__(nparams, batch_size, block_cells)
        self._delegate: Optional[CoMomentKernel] = None
        self._fallback: Optional[CoMomentKernel] = None
        self._small_folds = 0

    # ------------------------------------------------------------------ #
    @property
    def chosen(self) -> Optional[str]:
        """Winning backend name (None until the first tuned fold)."""
        return self._delegate.name if self._delegate is not None else None

    def fold_into(self, slabs, lo, hi, mean, m2, cxy, na) -> bool:
        """Forward the fused-fold fast path once a winner is locked in;
        before tuning, decline so the engine drives fold_batch (which is
        where the measurement happens)."""
        if self._delegate is not None:
            return self._delegate.fold_into(slabs, lo, hi, mean, m2, cxy, na)
        return False

    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._delegate is not None:
            return self._delegate.fold_batch(slabs, lo, hi)
        key = (self.nparams, self.batch_size, self.block_cells)
        cached = _autotune_cache.get(key)
        if cached is not None:
            self._delegate = _construct(cached, *key)
            return self._delegate.fold_batch(slabs, lo, hi)
        if len(slabs) < _AUTOTUNE_MIN_BATCH:
            # too small to measure meaningfully: einsum until a real batch
            # arrives; a stream of nothing but tiny folds settles on it
            if self._fallback is None:
                self._fallback = EinsumKernel(*key)
            self._small_folds += 1
            if self._small_folds >= _AUTOTUNE_SMALL_FOLD_LIMIT:
                self._delegate = self._fallback
            return self._fallback.fold_batch(slabs, lo, hi)
        self._delegate = self._tune(slabs, lo, hi)
        _autotune_cache[key] = self._delegate.name
        return self._delegate.fold_batch(slabs, lo, hi)

    def _tune(self, slabs, lo, hi) -> CoMomentKernel:
        key = (self.nparams, self.batch_size, self.block_cells)
        best_name, best_time, best_kernel = None, float("inf"), None
        for name in available_backends():
            try:
                kernel = _construct(name, *key)
            except RuntimeError:  # pragma: no cover - availability raced
                continue
            # warm once (JIT/loads), then take the best of two timed reps
            kernel.fold_batch(slabs, lo, hi)
            elapsed = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                kernel.fold_batch(slabs, lo, hi)
                elapsed = min(elapsed, time.perf_counter() - t0)
            if elapsed < best_time:
                best_name, best_time, best_kernel = name, elapsed, kernel
        if best_kernel is None:  # pragma: no cover - einsum always works
            return self._fallback or EinsumKernel(*key)
        return best_kernel


from repro.kernels import parallel  # noqa: E402  (needs _construct above)

__all__ = [
    "CoMomentKernel",
    "AutoKernel",
    "EinsumKernel",
    "BlasKernel",
    "KERNEL_NAMES",
    "ENV_VAR",
    "available_backends",
    "make_kernel",
    "parallel",
    "resolve_spec",
    "warm_compiled_backends",
]
