"""Cell-sharded multicore folds: one rank's fold spread over a thread pool.

Why threads work here at all: every backend's arithmetic is *per cell* —
the kernel contractions reduce over the batch dimension only, the Pebay
pairwise combination is elementwise, and the fused C kernel accumulates
per-cell tiles — so any deterministic partition of the cell range into
disjoint, block-aligned windows performs the exact same floating-point
operations per cell as the sequential blocked loop.  Shards write into
disjoint slices of the running state, so there is no combine step and no
combine-order concern: threaded folds are **bit-exact** against
``fold_threads=1``, not merely rtol-close.

And the GIL does not serialize them: the cext backend is loaded with
``ctypes.CDLL``, which releases the GIL around every foreign call (the
kernel has no Python API to need it); NumPy's einsum/reduction/matmul
kernels drop the GIL for non-trivial buffers; and the Numba backend JITs
with ``nogil=True``.  Each shard gets its *own* kernel instance, because
the reusable scratch buffers that make the single-threaded hot path
allocation-free (:class:`EinsumKernel` residual slabs, the cext raw-sum
outputs, the BLAS cell-major transpose) are per-instance and must never
be shared across threads.

The executors are process-wide and persistent (one pool per worker
count, never torn down) so a fold pays thread-dispatch, not
thread-creation.  ``fold_threads`` selection precedence mirrors kernel
selection: explicit config/CLI > ``$REPRO_FOLD_THREADS`` > ``auto``.
``auto`` measures 1/2/half/all cores on the first real fold (clamped by
``cpus // local_ranks`` so co-located ranks don't oversubscribe) and
picks ``(backend, nthreads, block_cells)`` jointly; the winner is cached
per shape key in-process *and* exported through
``$REPRO_FOLD_AUTOTUNE`` so respawned ranks and elastic spawns skip the
probe.  Explicitly requested thread counts are honored un-clamped.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.kernels.base import CoMomentKernel

ENV_VAR_THREADS = "REPRO_FOLD_THREADS"
ENV_VAR_AUTOTUNE = "REPRO_FOLD_AUTOTUNE"

#: smallest staged batch worth running the thread probe on (mirrors the
#: backend autotuner's threshold: tiny folds measure nothing)
_TUNE_MIN_BATCH = 4

#: a (backend, nthreads, block_cells) execution plan
Plan = Tuple[str, int, int]

_plan_cache: Dict[str, Plan] = {}
_pending_export: Dict[str, Plan] = {}
_plan_lock = threading.Lock()

_executors: Dict[int, ThreadPoolExecutor] = {}
_executor_lock = threading.Lock()


# --------------------------------------------------------------------- #
# thread-count selection
# --------------------------------------------------------------------- #
def validate_threads_spec(spec):
    """Canonicalize a fold-threads spec: None, ``"auto"``, or an int >= 1.

    Accepts the CLI's string forms (``"4"``, ``"auto"``).  Returns the
    canonical value (None stays None — deferred to the environment).
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        s = spec.strip().lower()
        if s == "auto":
            return "auto"
        try:
            spec = int(s)
        except ValueError:
            raise ValueError(
                f"fold_threads must be 'auto' or a positive integer, "
                f"got {spec!r}"
            ) from None
    if isinstance(spec, bool) or not isinstance(spec, int):
        raise ValueError(
            f"fold_threads must be 'auto' or a positive integer, got {spec!r}"
        )
    if spec < 1:
        raise ValueError(f"fold_threads must be >= 1, got {spec}")
    return spec


def resolve_threads(spec) -> object:
    """Apply precedence: explicit spec > $REPRO_FOLD_THREADS > ``"auto"``.

    Returns ``"auto"`` or a concrete int.  An explicitly requested count
    is honored as-is (un-clamped): parity tests and deliberate
    oversubscription are the caller's business; only the ``auto`` search
    space is clamped against co-located ranks.
    """
    spec = validate_threads_spec(spec)
    if spec is None:
        spec = validate_threads_spec(os.environ.get(ENV_VAR_THREADS) or None)
    return "auto" if spec is None else spec


def auto_thread_candidates(
    cpus: Optional[int] = None, local_ranks: int = 1
) -> List[int]:
    """The ``auto`` measurement ladder: 1, 2, half, and all cores —
    clamped by ``cpus // local_ranks`` so ranks sharing a host don't
    oversubscribe it — deduplicated and sorted."""
    if cpus is None:
        cpus = os.cpu_count() or 1
    cap = max(1, cpus // max(1, int(local_ranks)))
    ladder = {1, 2, cap // 2, cap}
    return sorted(t for t in ladder if 1 <= t <= cap)


def eager_threads(spec, local_ranks: int = 1) -> int:
    """Resolve a spec to a concrete count *now* (no measurement).

    Explicit counts pass through un-clamped; ``auto`` resolves to the
    oversubscription clamp (all cores divided across co-located ranks) —
    the value the statistics pipeline rows use, where a probe would cost
    more than it informs.
    """
    resolved = resolve_threads(spec)
    if resolved == "auto":
        return auto_thread_candidates(local_ranks=local_ranks)[-1]
    return int(resolved)


# --------------------------------------------------------------------- #
# deterministic sharding
# --------------------------------------------------------------------- #
def shard_ranges(
    ncells: int, nthreads: int, block_cells: int
) -> List[Tuple[int, int]]:
    """Partition ``[0, ncells)`` into at most ``nthreads`` contiguous,
    block-aligned shards.

    Every boundary is a multiple of ``block_cells``, so the union of the
    shards' blocked inner loops enumerates the *identical* ``(lo, hi)``
    windows the sequential fold does — the structural guarantee behind
    bit-exactness.  Blocks are spread as evenly as possible; fewer
    blocks than threads simply yields fewer shards.
    """
    if ncells < 1:
        raise ValueError("ncells must be >= 1")
    blk = max(1, int(block_cells))
    nblocks = -(-ncells // blk)
    nshards = max(1, min(int(nthreads), nblocks))
    per, extra = divmod(nblocks, nshards)
    out: List[Tuple[int, int]] = []
    b0 = 0
    for i in range(nshards):
        nb = per + (1 if i < extra else 0)
        b1 = b0 + nb
        out.append((b0 * blk, min(b1 * blk, ncells)))
        b0 = b1
    return out


def _executor(nworkers: int) -> ThreadPoolExecutor:
    """The persistent process-wide pool for ``nworkers`` helper threads."""
    with _executor_lock:
        pool = _executors.get(nworkers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=nworkers, thread_name_prefix="repro-fold"
            )
            _executors[nworkers] = pool
        return pool


def run_sharded(tasks: Sequence) -> None:
    """Run callables concurrently: the calling thread takes the first,
    the persistent pool the rest.  Used by both the fold sharding and
    the statistics-pipeline row dispatch."""
    if len(tasks) == 1:
        tasks[0]()
        return
    pool = _executor(len(tasks) - 1)
    futures = [pool.submit(task) for task in tasks[1:]]
    tasks[0]()
    for fut in futures:
        fut.result()


# --------------------------------------------------------------------- #
# the per-window fold (shared by sequential and sharded paths)
# --------------------------------------------------------------------- #
def fold_window(
    kernel: CoMomentKernel,
    slabs: Sequence[np.ndarray],
    lo: int,
    hi: int,
    mean: np.ndarray,
    m2: np.ndarray,
    cxy: np.ndarray,
    na: int,
    r1: np.ndarray,
) -> None:
    """Fold one staged batch into the state cells ``[lo, hi)``.

    Fused fast path when the backend offers it, otherwise the blocked
    ``fold_batch`` + exact Pebay combination.  ``r1`` is the caller's
    rank-1 correction scratch (per thread — never shared).  Writes only
    the ``[lo, hi)`` columns of ``mean``/``m2``/``cxy``, so disjoint
    windows may run concurrently.
    """
    nb = len(slabs)
    if kernel.fold_into(slabs, lo, hi, mean, m2, cxy, na):
        return
    n = na + nb
    f = na * nb / n
    wb = nb / n
    s0 = slabs[0]
    blk = min(kernel.block_cells, hi - lo)
    for b0 in range(lo, hi, blk):
        b1 = min(hi, b0 + blk)
        w = b1 - b0
        # the backend computes the centered batch statistics: means of
        # the residuals z_b = y_b - y_0 (exact shift against the first
        # staged buffer, Pebay-stable), diagonal second-moment sums,
        # and the 2p cross co-moments
        mz, gd, gx = kernel.fold_batch(slabs, b0, b1)
        if na == 0:
            mean[:, b0:b1] = s0[:, b0:b1] + mz
            m2[:, b0:b1] = gd
            cxy[:, :, b0:b1] = gx
        else:
            # exact pairwise combination (Pebay SAND2008-6212)
            d = s0[:, b0:b1] + mz
            d -= mean[:, b0:b1]
            dx = d[:2]
            dc = d[2:]
            gd += f * d * d
            m2[:, b0:b1] += gd
            gx += kernel.merge_cross(dx, dc, f, out=r1[:, :, :w])
            cxy[:, :, b0:b1] += gx
            mean[:, b0:b1] += d * wb


class ParallelFolder:
    """One rank's sharded fold engine: per-thread kernels and scratch,
    bound to one ``(backend, nthreads, block_cells)`` execution plan."""

    def __init__(
        self, backend: str, nparams: int, batch_size: int,
        block_cells: int, nthreads: int,
    ):
        from repro.kernels import _construct

        self.backend = backend
        self.nthreads = max(1, int(nthreads))
        self.block_cells = max(1, int(block_cells))
        self.nparams = int(nparams)
        # one kernel per shard slot: scratch isolation is the whole point
        self._kernels = [
            _construct(backend, nparams, batch_size, self.block_cells)
            for _ in range(self.nthreads)
        ]
        self._r1 = [
            np.empty((2, nparams, self.block_cells))
            for _ in range(self.nthreads)
        ]
        self._h_shard = _telemetry.REGISTRY.histogram(
            "repro_fold_shard_seconds",
            "per-shard fold seconds inside one rank's sharded fold",
        ).labels(backend=backend)

    @property
    def plan(self) -> Plan:
        return (self.backend, self.nthreads, self.block_cells)

    def fold(
        self,
        slabs: Sequence[np.ndarray],
        ncells: int,
        mean: np.ndarray,
        m2: np.ndarray,
        cxy: np.ndarray,
        na: int,
    ) -> None:
        """Fold one staged batch into the full state, sharded by cells."""
        shards = shard_ranges(ncells, self.nthreads, self.block_cells)
        timed = _telemetry.REGISTRY.enabled

        def task(i: int, lo: int, hi: int):
            kernel, r1 = self._kernels[i], self._r1[i]

            def run():
                if timed:
                    t0 = time.perf_counter()
                    fold_window(kernel, slabs, lo, hi, mean, m2, cxy, na, r1)
                    self._h_shard.observe(time.perf_counter() - t0)
                else:
                    fold_window(kernel, slabs, lo, hi, mean, m2, cxy, na, r1)

            return run

        run_sharded([task(i, lo, hi) for i, (lo, hi) in enumerate(shards)])


# --------------------------------------------------------------------- #
# joint (backend, nthreads, block_cells) autotuning + plan cache
# --------------------------------------------------------------------- #
def plan_key(
    nparams: int,
    batch_size: int,
    block_cells: int,
    kernel_spec: str,
    cpus: Optional[int] = None,
) -> str:
    """Shape key a tuned plan is cached under.  Includes the requested
    backend spec so ``kernel="einsum", fold_threads="auto"`` never reads
    a plan tuned for ``kernel="auto"``, and the core count so a cached
    winner never follows a checkpoint onto differently-sized hardware."""
    if cpus is None:
        cpus = os.cpu_count() or 1
    return f"{nparams}:{batch_size}:{block_cells}:{cpus}:{kernel_spec}"


def cached_plan(key: str) -> Optional[Plan]:
    with _plan_lock:
        return _plan_cache.get(key)


def record_plan(key: str, plan: Plan, export: bool = True) -> None:
    """Cache a tuned plan and stage it for env/frame export.

    ``export`` distributes the winner beyond this process: the env var
    reaches everything this process spawns (fork or exec), and the serve
    loop ships :func:`consume_new_plans` to the coordinator so future
    respawns/elastic spawns from *that* process skip the probe too.
    """
    plan = (str(plan[0]), int(plan[1]), int(plan[2]))
    with _plan_lock:
        _plan_cache[key] = plan
        if export:
            _pending_export[key] = plan
            _write_env_locked()


def consume_new_plans() -> Dict[str, List]:
    """Plans tuned here and not yet shipped (one-shot; emptied on read)."""
    with _plan_lock:
        out = {k: list(v) for k, v in _pending_export.items()}
        _pending_export.clear()
        return out


def absorb_plans(mapping: Dict[str, Sequence]) -> None:
    """Merge plans tuned elsewhere (a rank's autotune frame) into this
    process's cache *and* environment, so subprocesses spawned from here
    — supervisor respawns, elastic workers — inherit them."""
    if not mapping:
        return
    with _plan_lock:
        for key, plan in mapping.items():
            try:
                backend, nthreads, block = plan
                _plan_cache[str(key)] = (
                    str(backend), int(nthreads), int(block)
                )
            except (TypeError, ValueError):
                continue
        _write_env_locked()


def _write_env_locked() -> None:
    os.environ[ENV_VAR_AUTOTUNE] = json.dumps(
        {k: list(v) for k, v in sorted(_plan_cache.items())},
        separators=(",", ":"),
    )


def _seed_from_env() -> None:
    raw = os.environ.get(ENV_VAR_AUTOTUNE)
    if not raw:
        return
    try:
        mapping = json.loads(raw)
    except (ValueError, TypeError):
        return
    if isinstance(mapping, dict):
        # seed silently: inherited plans are not re-exported as "new"
        with _plan_lock:
            for key, plan in mapping.items():
                try:
                    backend, nthreads, block = plan
                    _plan_cache[str(key)] = (
                        str(backend), int(nthreads), int(block)
                    )
                except (TypeError, ValueError):
                    continue


_seed_from_env()


def _block_candidates(block_cells: int, ncells: int) -> List[int]:
    """Block sizes the joint tune considers: the configured block and its
    half (threads sharing L2 often prefer the smaller working set).
    Only blocks that actually tile the cell range differently qualify."""
    blk = min(block_cells, ncells)
    out = [blk]
    if blk // 2 >= 1024:
        out.append(blk // 2)
    return out


def tune_plan(
    backend: str,
    nparams: int,
    batch_size: int,
    block_cells: int,
    slabs: Sequence[np.ndarray],
    ncells: int,
    thread_candidates: Sequence[int],
) -> Plan:
    """Measure the thread/block ladder for ``backend`` on real slabs.

    The probe drives stateless ``fold_batch`` shards (no running state is
    touched), warms each candidate once, then keeps the best of two timed
    repetitions — the same discipline as the backend autotuner.  Returns
    the fastest ``(backend, nthreads, block_cells)``.
    """
    from repro.kernels import _construct

    best: Optional[Tuple[float, Plan]] = None
    for blk in _block_candidates(block_cells, ncells):
        for nt in thread_candidates:
            kernels = [
                _construct(backend, nparams, batch_size, blk)
                for _ in range(nt)
            ]
            shards = shard_ranges(ncells, nt, blk)

            def probe():
                def shard_task(kernel, lo, hi):
                    def run():
                        for b0 in range(lo, hi, blk):
                            kernel.fold_batch(slabs, b0, min(hi, b0 + blk))
                    return run

                run_sharded([
                    shard_task(kernels[i], lo, hi)
                    for i, (lo, hi) in enumerate(shards)
                ])

            probe()  # warm (thread spin-up, JIT, lib load)
            elapsed = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                probe()
                elapsed = min(elapsed, time.perf_counter() - t0)
            plan = (backend, nt, blk)
            if best is None or elapsed < best[0]:
                best = (elapsed, plan)
    assert best is not None
    return best[1]


__all__ = [
    "ENV_VAR_THREADS",
    "ENV_VAR_AUTOTUNE",
    "ParallelFolder",
    "absorb_plans",
    "auto_thread_candidates",
    "cached_plan",
    "consume_new_plans",
    "eager_threads",
    "fold_window",
    "plan_key",
    "record_plan",
    "resolve_threads",
    "run_sharded",
    "shard_ranges",
    "tune_plan",
    "validate_threads_spec",
]
