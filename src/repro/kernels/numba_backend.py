"""Optional Numba backend: the fused fold JIT-compiled at first use.

Same one-pass structure as the C kernel (residuals, sums, diagonal and
cross co-moments in a single sweep, 16-cell tiles), expressed as nopython
Numba over a stacked ``(nb, m, w)`` residual-source scratch.  Numba is
NOT a dependency of this project: when the import fails the module-level
``available()`` probe reports False, ``kernel="numba"`` falls back to the
einsum baseline with a warning, and ``auto`` simply never considers it.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import CoMomentKernel, center_raw_sums

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the baked image has no numba
    _numba = None

_fold_jit = None


def available() -> bool:
    """True when numba imports (the JIT itself compiles lazily)."""
    return _numba is not None


def _get_jit():  # pragma: no cover - requires numba
    global _fold_jit
    if _fold_jit is None:
        # nogil: the parallel fold layer shards cell windows across
        # threads; without it the JIT'd loop would hold the GIL and
        # serialize every shard
        @_numba.njit(cache=False, fastmath=False, nogil=True)
        def fold(stack, nb, sz, gd, gx):
            m, w = sz.shape
            p = m - 2
            tile = 16
            for n0 in range(0, w, tile):
                nn = min(tile, w - n0)
                for i in range(m):
                    for n in range(n0, n0 + nn):
                        sz[i, n] = 0.0
                        gd[i, n] = 0.0
                for l in range(2):
                    for k in range(p):
                        for n in range(n0, n0 + nn):
                            gx[l, k, n] = 0.0
                for b in range(1, nb):
                    for i in range(m):
                        for n in range(n0, n0 + nn):
                            z = stack[b, i, n] - stack[0, i, n]
                            sz[i, n] += z
                            gd[i, n] += z * z
                    for l in range(2):
                        for k in range(p):
                            for n in range(n0, n0 + nn):
                                zl = stack[b, l, n] - stack[0, l, n]
                                zk = stack[b, 2 + k, n] - stack[0, 2 + k, n]
                                gx[l, k, n] += zl * zk

        _fold_jit = fold
    return _fold_jit


class NumbaKernel(CoMomentKernel):  # pragma: no cover - requires numba
    name = "numba"

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        if _numba is None:
            raise RuntimeError("numba is not installed")
        super().__init__(nparams, batch_size, block_cells)
        m, blk = self.nstreams, self.block_cells
        self._stack = np.empty((max(self.batch_size, 1), m, blk))
        self._sz = np.empty((m, blk))
        self._gd = np.empty((m, blk))
        self._gx = np.empty((2, self.nparams, blk))
        self._fold = _get_jit()

    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        nb = len(slabs)
        w = hi - lo
        m = self.nstreams
        if nb > self._stack.shape[0]:
            self._stack = np.empty((nb, m, self._stack.shape[2]))
        stack = self._stack[:nb, :, :w]
        for b, slab in enumerate(slabs):
            stack[b] = slab[:, lo:hi]
        sz = self._sz[:, :w]
        gd = self._gd[:, :w]
        gx = self._gx[:, :, :w]
        self._fold(stack, nb, sz, gd, gx)
        return center_raw_sums(sz, gd, gx, nb, self.nparams)
