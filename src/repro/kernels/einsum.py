"""The einsum baseline backend — PR 1's fold contraction, verbatim math.

Residuals are materialized into preallocated scratch, batch means come
from one reduction, and three ``np.einsum`` contractions produce the
diagonal and cross co-moments.  Kept as the always-available reference
the other backends are autotuned against; ~4-6 GFLOP/s single core on
the p=6 / 20k-cell hot path.

GIL audit (multicore folds): ``np.einsum``, ``np.subtract`` into an out
buffer, and the mean reduction all release the GIL for non-trivially
sized operands, so shards running this backend on different threads
overlap.  Instances are NOT thread-safe — ``_zx``/``_zc`` residual
scratch is per-instance — so the parallel layer builds one per thread.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.kernels.base import CoMomentKernel


class EinsumKernel(CoMomentKernel):
    name = "einsum"

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        super().__init__(nparams, batch_size, block_cells)
        blk = self.block_cells
        self._zx = np.empty((max(self.batch_size - 1, 0), 2, blk))
        self._zc = np.empty((max(self.batch_size - 1, 0), nparams, blk))

    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        nb = len(slabs)
        w = hi - lo
        inv_b = 1.0 / nb
        s0 = slabs[0]
        refx = s0[:2, lo:hi]
        refc = s0[2:, lo:hi]
        if nb - 1 > self._zx.shape[0]:  # force-folds may exceed batch_size
            self._zx = np.empty((nb - 1, 2, self._zx.shape[2]))
            self._zc = np.empty((nb - 1, self.nparams, self._zc.shape[2]))
        zx = self._zx[: nb - 1, :, :w]
        zc = self._zc[: nb - 1, :, :w]
        # residuals z_b = y_b - y_0 against the first staged buffer: an
        # exact shift that keeps every contraction O(std) instead of
        # O(mean), preserving Pebay-level numerical stability
        for b in range(1, nb):
            sb = slabs[b]
            np.subtract(sb[:2, lo:hi], refx, out=zx[b - 1])
            np.subtract(sb[2:, lo:hi], refc, out=zc[b - 1])
        # batch means of the shifted data (the all-zero z_0 row is
        # implicit: divide by nb, not nb-1)
        mzx = np.add.reduce(zx, axis=0)
        mzx *= inv_b
        mzc = np.add.reduce(zc, axis=0)
        mzc *= inv_b
        # batch co-moments about the batch mean:
        #   sum_b (z - mz)(z' - mz') = sum_b z z' - B mz mz'
        gd_x = np.einsum("bln,bln->ln", zx, zx)
        gd_c = np.einsum("bkn,bkn->kn", zc, zc)
        gx = np.einsum("bln,bkn->lkn", zx, zc)
        gd_x -= nb * mzx * mzx
        gd_c -= nb * mzc * mzc
        gx -= nb * mzx[:, None, :] * mzc[None, :, :]
        mz = np.concatenate([mzx, mzc], axis=0)
        gd = np.concatenate([gd_x, gd_c], axis=0)
        return mz, gd, gx
