"""BLAS-restructured backend: batched GEMM/syrk-shaped co-moments.

The fold contraction is, per cell, the ``(p+2) x (p+2)`` Gram matrix of
the batch residuals.  This backend reshapes the ``(nb, p+2, w)`` residual
slab into cell-major contiguous ``(w, p+2, nb)`` storage and computes all
Gram matrices with one stacked ``np.matmul`` — the GEMM mapping the issue
of per-cell co-moments admits.  The multiply runs through the BLAS
dispatch (multi-threaded where OpenBLAS has cores to use) on contiguous
memory, at the cost of a transpose pass and a ~3x overcompute (the full
symmetric Gram versus the 3p+2 moments actually needed).

On narrow machines the einsum baseline or the fused compiled kernel
usually wins — which is exactly what ``kernel="auto"`` measures; this
backend earns its keep on wide-BLAS hosts and documents the GEMM
restructuring explicitly.

GIL audit (multicore folds): the stacked ``np.matmul`` releases the GIL
inside the BLAS call, as do the transpose copy and reductions, so cell
shards overlap across threads.  Note the interaction budget: fold
threads multiply with BLAS's own thread pool, which is one more reason
the ``auto`` probe measures rather than assumes.  Instances are NOT
thread-safe (``_zt``/``_gram`` scratch); one instance per thread.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.kernels.base import CoMomentKernel


class BlasKernel(CoMomentKernel):
    name = "blas"

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        super().__init__(nparams, batch_size, block_cells)
        m, blk = self.nstreams, self.block_cells
        nb = max(self.batch_size - 1, 0)
        # cell-major residual storage (w, m, nb): the batched-GEMM operand
        self._zt = np.empty((blk, m, nb))
        self._gram = np.empty((blk, m, m))

    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        nb = len(slabs)
        m = self.nstreams
        p = self.nparams
        w = hi - lo
        inv_b = 1.0 / nb
        if nb - 1 > self._zt.shape[2]:  # force-folds may exceed batch_size
            self._zt = np.empty((self._zt.shape[0], m, nb - 1))
            self._gram = np.empty((self._zt.shape[0], m, m))
        ref = slabs[0][:, lo:hi]
        zt = self._zt[:w, :, : nb - 1]
        for b in range(1, nb):
            # (m, w) residual laid down cell-major: zt[:, :, b-1] = z.T
            np.subtract(slabs[b][:, lo:hi], ref, out=zt[:, :, b - 1].T)
        gram = self._gram[:w]
        # all per-cell Gram matrices in one stacked GEMM call
        np.matmul(zt, zt.transpose(0, 2, 1), out=gram)
        mz = zt.sum(axis=2).T.copy()  # (m, w) residual sums ...
        mz *= inv_b  # ... -> batch means
        # center: sum z z' - nb mz mz', picking the rows the engine needs
        diag = gram[:, np.arange(m), np.arange(m)].T  # (m, w)
        gd = diag - nb * mz * mz
        gx = gram[:, :2, 2:].transpose(1, 2, 0).copy()  # (2, p, w)
        gx -= nb * mz[:2, None, :] * mz[None, 2:, :]
        return mz, gd, gx
