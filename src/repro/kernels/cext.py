"""Compiled C backend: a fused, register-blocked co-moment kernel.

``_comoment.c`` is compiled once per machine with the system C compiler
into a content-addressed shared library under the user cache directory
(atomic rename, safe under concurrent builds) and loaded via ``ctypes``
— no build-time dependency, no pip install.  The kernel folds residual
computation, residual sums, diagonal moments, and the 2p cross
co-moments into ONE pass over the staged slabs (the einsum path makes
four), with the batch loop innermost over 16-cell tiles so the
accumulators live in vector registers.

On hosts without a working C compiler the backend reports itself
unavailable and kernel selection falls back to the einsum baseline.

GIL: the compute loops run WITHOUT the GIL — not via explicit
``Py_BEGIN_ALLOW_THREADS`` in the C source (``_comoment.c`` has no
Python API at all), but because ``ctypes.CDLL`` releases the GIL around
every foreign call by construction.  The parallel fold layer
(:mod:`repro.kernels.parallel`) relies on this: shards calling into the
library on different threads genuinely overlap.  Instances are NOT
thread-safe (``_sz``/``_gd``/``_gx`` scratch is per-instance); the
parallel layer builds one instance per thread.  ``fold_apply`` uses only
call-local state, so disjoint ``[lo, hi)`` windows are safe concurrently.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import CoMomentKernel, center_raw_sums

_SOURCE = Path(__file__).with_name("_comoment.c")

#: flag tiers, strongest first; the first tier that compiles wins
_FLAG_TIERS = (
    ["-O3", "-march=native", "-mprefer-vector-width=512"],
    ["-O3", "-march=native"],
    ["-O3"],
    ["-O2"],
)

_lib: Optional[ctypes.CDLL] = None
_lib_error: Optional[str] = None


_fallback_dir: Optional[Path] = None


def _cache_dir() -> Path:
    global _fallback_dir
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    try:
        path = Path(base) / "repro-kernels"
        path.mkdir(parents=True, exist_ok=True)
        return path
    except OSError:
        # never CDLL a predictable name from a shared world-writable tmp
        # dir: fall back to a private per-process directory instead
        if _fallback_dir is None:
            _fallback_dir = Path(tempfile.mkdtemp(prefix="repro-kernels-"))
        return _fallback_dir


def _compilers():
    cc = os.environ.get("CC")
    if cc:
        yield cc
    yield "cc"
    yield "gcc"
    yield "clang"


def _cpu_id() -> str:
    """Host CPU identity for the cache key (model + ISA feature flags).

    ``-march=native`` binaries are ISA-specific; on clusters with a
    shared home directory the cache must distinguish e.g. AVX-512 from
    AVX2-only nodes.  ``platform.machine()`` alone cannot, so fold in
    the cpuinfo model/flags lines where available.
    """
    ident = [platform.machine(), platform.processor()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("model name", "flags")):
                    ident.append(line.strip())
                    if len(ident) >= 4:
                        break
    except OSError:
        pass
    return "|".join(ident)


def _compiler_id(cc: str) -> Optional[str]:
    """Version line of ``cc`` (None when the compiler is missing)."""
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, timeout=15
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.decode(errors="replace").splitlines()[0] if proc.stdout else cc


def _build() -> ctypes.CDLL:
    source = _SOURCE.read_text()
    for cc in _compilers():
        # the cache key covers compiler version and host CPU: -march=native
        # binaries must never be reused across heterogeneous nodes sharing
        # a home directory, nor survive a compiler upgrade
        cc_id = _compiler_id(cc)
        if cc_id is None:
            continue
        for flags in _FLAG_TIERS:
            key = hashlib.sha256(
                "\0".join(
                    [source, cc, cc_id, *flags, sys.platform, _cpu_id()]
                ).encode()
            ).hexdigest()[:16]
            target = _cache_dir() / f"comoment_{key}.so"
            if not target.exists():
                with tempfile.TemporaryDirectory() as tmp:
                    obj = Path(tmp) / "comoment.so"
                    cmd = [cc, *flags, "-shared", "-fPIC", "-o", str(obj),
                           str(_SOURCE)]
                    try:
                        proc = subprocess.run(
                            cmd, capture_output=True, timeout=120
                        )
                    except (OSError, subprocess.TimeoutExpired):
                        break  # compiler missing/hung: try the next one
                    if proc.returncode != 0:
                        continue  # flags rejected: try the next tier
                    os.replace(obj, target)  # atomic, concurrent-safe
            try:
                return ctypes.CDLL(str(target))
            except OSError:
                continue
    raise RuntimeError("no working C compiler for the cext kernel backend")


def _load() -> ctypes.CDLL:
    global _lib, _lib_error
    if _lib is not None:
        return _lib
    if _lib_error is not None:
        raise RuntimeError(_lib_error)
    try:
        lib = _build()
        lib.fold_block.restype = ctypes.c_int
        lib.fold_block.argtypes = [
            ctypes.c_void_p,  # const double *const *slabs
            ctypes.c_ssize_t,  # nb
            ctypes.c_ssize_t,  # m
            ctypes.c_ssize_t,  # row stride
            ctypes.c_ssize_t,  # lo
            ctypes.c_ssize_t,  # W
            ctypes.c_void_p,  # sz out
            ctypes.c_void_p,  # gd out
            ctypes.c_void_p,  # gx out
        ]
        lib.fold_apply.restype = ctypes.c_int
        lib.fold_apply.argtypes = [
            ctypes.c_void_p,  # const double *const *slabs
            ctypes.c_ssize_t,  # nb
            ctypes.c_ssize_t,  # m
            ctypes.c_ssize_t,  # row stride
            ctypes.c_ssize_t,  # lo
            ctypes.c_ssize_t,  # W
            ctypes.c_ssize_t,  # na
            ctypes.c_ssize_t,  # state row stride
            ctypes.c_void_p,  # mean state
            ctypes.c_void_p,  # m2 state
            ctypes.c_void_p,  # cxy state
        ]
        _lib = lib
        return lib
    except Exception as exc:  # noqa: BLE001 - availability probe
        _lib_error = f"cext kernel unavailable: {exc}"
        raise RuntimeError(_lib_error) from exc


def available() -> bool:
    """True when the shared library is (or can be) built and loaded."""
    try:
        _load()
        return True
    except RuntimeError:
        return False


class CExtKernel(CoMomentKernel):
    name = "cext"

    #: largest p the C kernel's stack tiles support
    MAX_NPARAMS = 64

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        super().__init__(nparams, batch_size, block_cells)
        if nparams > self.MAX_NPARAMS:
            raise RuntimeError(
                f"cext kernel supports at most p={self.MAX_NPARAMS}"
            )
        self._lib = _load()
        m, blk = self.nstreams, self.block_cells
        # flat output scratch, re-sliced tight per window width
        self._sz = np.empty(m * blk)
        self._gd = np.empty(m * blk)
        self._gx = np.empty(2 * self.nparams * blk)

    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        nb = len(slabs)
        m = self.nstreams
        p = self.nparams
        w = hi - lo
        stride = slabs[0].shape[1]
        ptrs = (ctypes.c_void_p * nb)(
            *[s.ctypes.data for s in slabs]
        )
        sz = self._sz[: m * w].reshape(m, w)
        gd = self._gd[: m * w].reshape(m, w)
        gx = self._gx[: 2 * p * w].reshape(2, p, w)
        rc = self._lib.fold_block(
            ctypes.cast(ptrs, ctypes.c_void_p), nb, m, stride, lo, w,
            sz.ctypes.data, gd.ctypes.data, gx.ctypes.data,
        )
        if rc != 0:  # pragma: no cover - guarded by MAX_NPARAMS
            raise RuntimeError(f"cext fold_block failed (rc={rc})")
        return center_raw_sums(sz, gd, gx, nb, p)

    def fold_into(self, slabs, lo, hi, mean, m2, cxy, na) -> bool:
        """Fused full fold: contraction + centering + Pebay combination
        in one pass over the slabs, written straight into the state."""
        nb = len(slabs)
        stride = slabs[0].shape[1]
        sstride = mean.shape[1]
        ptrs = (ctypes.c_void_p * nb)(
            *[s.ctypes.data for s in slabs]
        )
        rc = self._lib.fold_apply(
            ctypes.cast(ptrs, ctypes.c_void_p), nb, self.nstreams, stride,
            lo, hi - lo, na, sstride,
            mean.ctypes.data, m2.ctypes.data, cxy.ctypes.data,
        )
        if rc != 0:  # pragma: no cover - guarded by MAX_NPARAMS
            raise RuntimeError(f"cext fold_apply failed (rc={rc})")
        return True
