"""The co-moment kernel interface the batched Sobol' engine folds through.

A :class:`CoMomentKernel` computes, for one staged micro-batch of member
slabs and one cell window, the *centered batch statistics* the Pebay
pairwise combination needs:

* ``mz`` — ``(m, w)`` batch means of the residuals ``z_b = slab_b -
  slab_0`` (the first slab is the exact shift reference, so its residual
  row is implicitly zero and the divisor is the full batch size);
* ``gd`` — ``(m, w)`` centered second-moment sums ``sum_b (z_b - mz)^2``;
* ``gx`` — ``(2, p, w)`` centered cross co-moments ``sum_b (z_b[l] -
  mz[l]) (z_b[2+k] - mz[2+k])`` for the A/B rows ``l`` against every
  C-stream ``k``.

All backends implement the same mathematically exact formulas; they may
only differ in floating-point association order, which is why the
equivalence suite pins every backend to the scalar reference at
rtol 1e-10.  The base class also hosts the two small shared contractions
the engine routes through the kernel seam — the rank-1 cross correction
used by merges (:meth:`merge_cross`) and the correlation-map extraction
(:meth:`correlation_maps`) — with NumPy implementations backends can
override.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class CoMomentKernel:
    """One fold backend, bound to a field's (nparams, batch, block) shape."""

    #: registry name; subclasses override
    name: str = "base"

    def __init__(self, nparams: int, batch_size: int, block_cells: int):
        self.nparams = int(nparams)
        self.batch_size = int(batch_size)
        self.block_cells = int(block_cells)
        self.nstreams = self.nparams + 2

    # ------------------------------------------------------------------ #
    def fold_batch(
        self, slabs: Sequence[np.ndarray], lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Centered batch statistics ``(mz, gd, gx)`` for cells [lo, hi).

        ``slabs`` is the staged micro-batch: ``nb`` C-contiguous
        ``(p+2, ncells)`` float64 arrays.  ``slabs[0]`` is the shift
        reference.  Returned arrays stay valid until the next
        ``fold_batch`` call on the same kernel (they may alias reusable
        scratch); the engine consumes them immediately.
        """
        raise NotImplementedError

    def fold_into(
        self,
        slabs: Sequence[np.ndarray],
        lo: int,
        hi: int,
        mean: np.ndarray,
        m2: np.ndarray,
        cxy: np.ndarray,
        na: int,
    ) -> bool:
        """Optionally fold the batch DIRECTLY into the running state.

        ``mean``/``m2`` are the ``(p+2, ncells)`` state rows of one
        timestep, ``cxy`` its ``(2, p, ncells)`` co-moments, ``na`` the
        samples already folded.  A backend that fuses the centering and
        the Pebay pairwise combination with the contraction (one pass
        over memory instead of several) performs the whole update and
        returns True; the default returns False and the engine runs
        :meth:`fold_batch` plus the shared NumPy combination instead.
        """
        return False

    # ------------------------------------------------------------------ #
    # shared small contractions (NumPy defaults, overridable)
    # ------------------------------------------------------------------ #
    @staticmethod
    def merge_cross(dx: np.ndarray, dc: np.ndarray, f, out=None) -> np.ndarray:
        """Rank-1 cross correction ``f * dx[l] * dc[k]``.

        ``dx`` has shape ``(..., 2, n)``, ``dc`` ``(..., p, n)``; ``f`` is
        a scalar or broadcasts against the output ``(..., 2, p, n)``.
        Used by both the fold (batch-vs-state combine) and field merges.
        """
        o = np.multiply(dx[..., :, None, :], dc[..., None, :, :], out=out)
        o *= f
        return o

    @staticmethod
    def correlation_maps(
        cxy: np.ndarray, m2x: np.ndarray, m2c: np.ndarray
    ) -> np.ndarray:
        """Pearson maps for stream rows against every C-stream.

        ``cxy`` is ``(r, p, n)`` co-moments, ``m2x`` the ``(r, n)`` row
        second moments, ``m2c`` the ``(p, n)`` C-stream second moments.
        Cells without variance yield NaN (indices are meaningless there,
        paper Sec. 5.5); the result is clipped to [-1, 1].
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            rc = np.sqrt(m2c)
            out = np.empty_like(cxy)
            for r in range(cxy.shape[0]):
                denom = np.sqrt(m2x[r])[None, :] * rc
                out[r] = np.where(denom > 0, cxy[r] / denom, np.nan)
        return np.clip(out, -1.0, 1.0, out=out)

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"{type(self).__name__}(nparams={self.nparams}, "
            f"batch_size={self.batch_size}, block_cells={self.block_cells})"
        )


def center_raw_sums(
    sz: np.ndarray, gd: np.ndarray, gx: np.ndarray, nb: int, nparams: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Turn raw residual sums into centered batch statistics, in place.

    Shared by the compiled backends, which accumulate plain sums
    (``sum z``, ``sum z^2``, ``sum z_l z_k``) in one fused pass:

        gd_centered = gd_raw - nb * mz^2
        gx_centered = gx_raw - nb * mz_l * mz_k

    (the same correction the einsum path applies to its contractions).
    """
    mz = sz
    mz *= 1.0 / nb
    gd -= nb * mz * mz
    gx -= nb * mz[:2, None, :] * mz[None, 2:, :]
    return mz, gd, gx
