"""Fault-injection plans for exercising the Sec. 4.2 protocols.

A :class:`FaultPlan` is a declarative schedule of failures the runtime
injects while a study runs:

* :class:`GroupCrash` — the whole group dies at a given timestep (the
  paper treats a group as a single failure unit);
* :class:`GroupZombie` — the job runs but never sends a message
  (Sec. 4.2.2's second detection case);
* :class:`GroupStraggler` — the group computes N times slower
  ("straggler issues" the framework must also detect);
* :class:`ServerCrash` — Melissa Server dies at a virtual time and must
  be restarted from its last checkpoint (Sec. 4.2.3);
* :class:`DuplicateDelivery` — every message of a group is delivered
  twice (exercises discard-on-replay idempotence, Sec. 4.2.1).

Server-*rank* faults target one real ``repro serve`` process (the
distributed deployment's failure unit) and drive the live respawn
protocol instead of the virtual-time launcher:

* :class:`ServerRankCrash` — the rank SIGKILLs itself mid-study;
* :class:`ServerRankZombie` — the rank hangs (alive, silent) until the
  supervisor kills it;
* :class:`ServerRankStraggler` — the rank slows down but stays live (no
  respawn may fire).

Group-*worker* faults target one real ``repro work`` process (the other
distributed failure unit) and drive the coordinator's resubmission,
reaping, and straggler-speculation machinery:

* :class:`WorkerCrash` — the worker SIGKILLs itself after N deliveries;
* :class:`WorkerZombie` — the worker hangs (alive, silent) until the
  coordinator's staleness reap closes its connection;
* :class:`WorkerStraggler` — the worker delivers each message ``delay``
  seconds slower but stays live (speculative re-execution, not
  resubmission, must absorb it).

:func:`parse_server_fault` / :func:`parse_worker_fault` turn the
``--fault`` / ``REPRO_SERVE_FAULT`` / ``REPRO_WORK_FAULT`` spec string
of a real subprocess into a single-process plan, so the same schedule
drives unit tests, the loopback chaos suite, and CI.

Group faults target a specific *attempt* so a restarted instance runs
clean — matching real intermittent failures; a respawned server rank
always runs clean.
"""

from repro.faults.plan import (
    DuplicateDelivery,
    FaultPlan,
    GroupCrash,
    GroupStraggler,
    GroupZombie,
    ServerCrash,
    ServerRankCrash,
    ServerRankStraggler,
    ServerRankZombie,
    WorkerCrash,
    WorkerStraggler,
    WorkerZombie,
    parse_server_fault,
    parse_worker_fault,
)

__all__ = [
    "FaultPlan",
    "GroupCrash",
    "GroupZombie",
    "GroupStraggler",
    "ServerCrash",
    "ServerRankCrash",
    "ServerRankZombie",
    "ServerRankStraggler",
    "WorkerCrash",
    "WorkerZombie",
    "WorkerStraggler",
    "DuplicateDelivery",
    "parse_server_fault",
    "parse_worker_fault",
]
