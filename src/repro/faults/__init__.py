"""Fault-injection plans for exercising the Sec. 4.2 protocols.

A :class:`FaultPlan` is a declarative schedule of failures the runtime
injects while a study runs:

* :class:`GroupCrash` — the whole group dies at a given timestep (the
  paper treats a group as a single failure unit);
* :class:`GroupZombie` — the job runs but never sends a message
  (Sec. 4.2.2's second detection case);
* :class:`GroupStraggler` — the group computes N times slower
  ("straggler issues" the framework must also detect);
* :class:`ServerCrash` — Melissa Server dies at a virtual time and must
  be restarted from its last checkpoint (Sec. 4.2.3);
* :class:`DuplicateDelivery` — every message of a group is delivered
  twice (exercises discard-on-replay idempotence, Sec. 4.2.1).

Faults target a specific *attempt* so a restarted instance runs clean —
matching real intermittent failures.
"""

from repro.faults.plan import (
    DuplicateDelivery,
    FaultPlan,
    GroupCrash,
    GroupStraggler,
    GroupZombie,
    ServerCrash,
)

__all__ = [
    "FaultPlan",
    "GroupCrash",
    "GroupZombie",
    "GroupStraggler",
    "ServerCrash",
    "DuplicateDelivery",
]
