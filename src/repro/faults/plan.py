"""Fault specification dataclasses and the plan container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set


@dataclass(frozen=True)
class GroupCrash:
    """Group ``group_id`` crashes when it reaches ``at_timestep`` on
    attempt ``on_attempt`` (0 = the first run)."""

    group_id: int
    at_timestep: int
    on_attempt: int = 0


@dataclass(frozen=True)
class GroupZombie:
    """Group runs but never sends any message, on the given attempt."""

    group_id: int
    on_attempt: int = 0


@dataclass(frozen=True)
class GroupStraggler:
    """Group advances only every ``factor``-th step on the given attempt."""

    group_id: int
    factor: int
    on_attempt: int = 0

    def __post_init__(self):
        if self.factor < 2:
            raise ValueError("a straggler needs factor >= 2")


@dataclass(frozen=True)
class ServerCrash:
    """Melissa Server dies at virtual time ``at_time`` (once)."""

    at_time: float


@dataclass(frozen=True)
class DuplicateDelivery:
    """Every delivered message of ``group_id`` is delivered twice."""

    group_id: int


@dataclass
class FaultPlan:
    """Schedule of failures a runtime injects during a study."""

    group_crashes: List[GroupCrash] = field(default_factory=list)
    group_zombies: List[GroupZombie] = field(default_factory=list)
    group_stragglers: List[GroupStraggler] = field(default_factory=list)
    server_crashes: List[ServerCrash] = field(default_factory=list)
    duplicate_deliveries: List[DuplicateDelivery] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def crash_for(self, group_id: int, attempt: int) -> Optional[GroupCrash]:
        for spec in self.group_crashes:
            if spec.group_id == group_id and spec.on_attempt == attempt:
                return spec
        return None

    def is_zombie(self, group_id: int, attempt: int) -> bool:
        return any(
            s.group_id == group_id and s.on_attempt == attempt
            for s in self.group_zombies
        )

    def straggler_for(self, group_id: int, attempt: int) -> Optional[GroupStraggler]:
        for spec in self.group_stragglers:
            if spec.group_id == group_id and spec.on_attempt == attempt:
                return spec
        return None

    def server_crash_due(self, now: float, already_fired: int) -> Optional[ServerCrash]:
        """Next un-fired server crash whose time has come (sorted order)."""
        pending = sorted(self.server_crashes, key=lambda s: s.at_time)
        if already_fired < len(pending) and pending[already_fired].at_time <= now:
            return pending[already_fired]
        return None

    @property
    def duplicated_groups(self) -> Set[int]:
        return {s.group_id for s in self.duplicate_deliveries}

    @property
    def empty(self) -> bool:
        return not (
            self.group_crashes
            or self.group_zombies
            or self.group_stragglers
            or self.server_crashes
            or self.duplicate_deliveries
        )
