"""Fault specification dataclasses and the plan container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set


@dataclass(frozen=True)
class GroupCrash:
    """Group ``group_id`` crashes when it reaches ``at_timestep`` on
    attempt ``on_attempt`` (0 = the first run)."""

    group_id: int
    at_timestep: int
    on_attempt: int = 0


@dataclass(frozen=True)
class GroupZombie:
    """Group runs but never sends any message, on the given attempt."""

    group_id: int
    on_attempt: int = 0


@dataclass(frozen=True)
class GroupStraggler:
    """Group advances only every ``factor``-th step on the given attempt."""

    group_id: int
    factor: int
    on_attempt: int = 0

    def __post_init__(self):
        if self.factor < 2:
            raise ValueError("a straggler needs factor >= 2")


@dataclass(frozen=True)
class ServerCrash:
    """Melissa Server dies at virtual time ``at_time`` (once)."""

    at_time: float


@dataclass(frozen=True)
class ServerRankCrash:
    """Server rank ``rank`` SIGKILLs itself after handling
    ``after_messages`` data messages (Sec. 4.2.3's failure unit in the
    distributed deployment: one ``repro serve`` process)."""

    rank: int
    after_messages: int = 0

    def __post_init__(self):
        if self.after_messages < 0:
            raise ValueError("after_messages must be >= 0")


@dataclass(frozen=True)
class ServerRankZombie:
    """Server rank ``rank`` hangs after ``after_messages`` messages: the
    process stays alive but stops draining its inbox and stops
    heartbeating, so only heartbeat staleness can expose it."""

    rank: int
    after_messages: int = 0

    def __post_init__(self):
        if self.after_messages < 0:
            raise ValueError("after_messages must be >= 0")


@dataclass(frozen=True)
class ServerRankStraggler:
    """Server rank ``rank`` handles each message ``delay`` seconds slower
    (still heartbeats — must NOT trigger the respawn protocol)."""

    rank: int
    delay: float

    def __post_init__(self):
        if self.delay <= 0:
            raise ValueError("a straggler needs delay > 0")


@dataclass(frozen=True)
class WorkerCrash:
    """Group worker ``worker`` SIGKILLs itself after delivering
    ``after_messages`` data messages (the distributed deployment's other
    failure unit: one ``repro work`` process, Sec. 4.2.2)."""

    worker: int
    after_messages: int = 0

    def __post_init__(self):
        if self.after_messages < 0:
            raise ValueError("after_messages must be >= 0")


@dataclass(frozen=True)
class WorkerZombie:
    """Group worker ``worker`` hangs after ``after_messages`` deliveries:
    alive but silent (no heartbeats, no frames), so only the
    coordinator's worker-staleness reap can expose it."""

    worker: int
    after_messages: int = 0

    def __post_init__(self):
        if self.after_messages < 0:
            raise ValueError("after_messages must be >= 0")


@dataclass(frozen=True)
class WorkerStraggler:
    """Group worker ``worker`` delivers each data message ``delay``
    seconds slower (still heartbeats — this is the scheduler's prey, not
    the reaper's: speculation, not resubmission, must absorb it)."""

    worker: int
    delay: float

    def __post_init__(self):
        if self.delay <= 0:
            raise ValueError("a straggler needs delay > 0")


@dataclass(frozen=True)
class DuplicateDelivery:
    """Every delivered message of ``group_id`` is delivered twice."""

    group_id: int


@dataclass
class FaultPlan:
    """Schedule of failures a runtime injects during a study."""

    group_crashes: List[GroupCrash] = field(default_factory=list)
    group_zombies: List[GroupZombie] = field(default_factory=list)
    group_stragglers: List[GroupStraggler] = field(default_factory=list)
    server_crashes: List[ServerCrash] = field(default_factory=list)
    duplicate_deliveries: List[DuplicateDelivery] = field(default_factory=list)
    server_rank_crashes: List[ServerRankCrash] = field(default_factory=list)
    server_rank_zombies: List[ServerRankZombie] = field(default_factory=list)
    server_rank_stragglers: List[ServerRankStraggler] = field(default_factory=list)
    worker_crashes: List[WorkerCrash] = field(default_factory=list)
    worker_zombies: List[WorkerZombie] = field(default_factory=list)
    worker_stragglers: List[WorkerStraggler] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def crash_for(self, group_id: int, attempt: int) -> Optional[GroupCrash]:
        for spec in self.group_crashes:
            if spec.group_id == group_id and spec.on_attempt == attempt:
                return spec
        return None

    def is_zombie(self, group_id: int, attempt: int) -> bool:
        return any(
            s.group_id == group_id and s.on_attempt == attempt
            for s in self.group_zombies
        )

    def straggler_for(self, group_id: int, attempt: int) -> Optional[GroupStraggler]:
        for spec in self.group_stragglers:
            if spec.group_id == group_id and spec.on_attempt == attempt:
                return spec
        return None

    def server_crash_due(self, now: float, already_fired: int) -> Optional[ServerCrash]:
        """Next un-fired server crash whose time has come (sorted order)."""
        pending = sorted(self.server_crashes, key=lambda s: s.at_time)
        if already_fired < len(pending) and pending[already_fired].at_time <= now:
            return pending[already_fired]
        return None

    @property
    def duplicated_groups(self) -> Set[int]:
        return {s.group_id for s in self.duplicate_deliveries}

    # ------------------------------------------------------------------ #
    # server-rank faults (the distributed ``repro serve`` failure unit)
    # ------------------------------------------------------------------ #
    def rank_crash_for(self, rank: int) -> Optional[ServerRankCrash]:
        for spec in self.server_rank_crashes:
            if spec.rank == rank:
                return spec
        return None

    def rank_zombie_for(self, rank: int) -> Optional[ServerRankZombie]:
        for spec in self.server_rank_zombies:
            if spec.rank == rank:
                return spec
        return None

    def rank_straggler_for(self, rank: int) -> Optional[ServerRankStraggler]:
        for spec in self.server_rank_stragglers:
            if spec.rank == rank:
                return spec
        return None

    # ------------------------------------------------------------------ #
    # group-worker faults (the distributed ``repro work`` failure unit)
    # ------------------------------------------------------------------ #
    def worker_crash_for(self, worker: int) -> Optional[WorkerCrash]:
        for spec in self.worker_crashes:
            if spec.worker == worker:
                return spec
        return None

    def worker_zombie_for(self, worker: int) -> Optional[WorkerZombie]:
        for spec in self.worker_zombies:
            if spec.worker == worker:
                return spec
        return None

    def worker_straggler_for(self, worker: int) -> Optional[WorkerStraggler]:
        for spec in self.worker_stragglers:
            if spec.worker == worker:
                return spec
        return None

    @property
    def has_server_rank_faults(self) -> bool:
        """Any fault targeting a live ``repro serve`` process — THE place
        to extend when a new server-rank spec is added, so the runtime
        routing below cannot drift."""
        return bool(
            self.server_rank_crashes
            or self.server_rank_zombies
            or self.server_rank_stragglers
        )

    @property
    def has_worker_faults(self) -> bool:
        """Any fault targeting a live ``repro work`` process."""
        return bool(
            self.worker_crashes or self.worker_zombies or self.worker_stragglers
        )

    @property
    def socket_only(self) -> bool:
        """True when the plan targets only real socket processes (server
        ranks and group workers) — the subset the distributed runtime can
        inject (group faults and virtual-time ServerCrash specs need the
        sequential driver)."""
        return not (
            self.group_crashes
            or self.group_zombies
            or self.group_stragglers
            or self.server_crashes
            or self.duplicate_deliveries
        )

    @property
    def server_faults_only(self) -> bool:
        """True when the plan touches nothing but server ranks."""
        return self.socket_only and not self.has_worker_faults

    @property
    def empty(self) -> bool:
        return (
            self.socket_only
            and not self.has_server_rank_faults
            and not self.has_worker_faults
        )


# --------------------------------------------------------------------- #
def parse_worker_fault(spec: str, worker: int = 0) -> FaultPlan:
    """Fault plan for one group-worker process from a compact spec.

    Same grammar as :func:`parse_server_fault` — ``crash[:after=N]`` /
    ``zombie[:after=N]`` (``after`` counts data messages delivered before
    the fault fires) / ``straggler:delay=S`` (seconds per delivered
    message).  This is how a real ``repro work`` subprocess is told to
    misbehave (``--fault`` flag or ``REPRO_WORK_FAULT``), so the same
    specs drive unit tests, the loopback chaos suite, and CI.
    """
    kind, _, rest = spec.partition(":")
    params = {}
    for item in filter(None, rest.split(",")):
        key, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"malformed fault parameter {item!r} in {spec!r}")
        params[key.strip()] = value.strip()
    if kind == "crash":
        after = int(params.pop("after", 0))
        plan = FaultPlan(worker_crashes=[WorkerCrash(worker, after)])
    elif kind == "zombie":
        after = int(params.pop("after", 0))
        plan = FaultPlan(worker_zombies=[WorkerZombie(worker, after)])
    elif kind == "straggler":
        if "delay" not in params:
            raise ValueError(f"fault spec {spec!r} is missing 'delay'")
        plan = FaultPlan(worker_stragglers=[
            WorkerStraggler(worker, delay=float(params.pop("delay")))
        ])
    else:
        raise ValueError(
            f"unknown fault kind {kind!r} (use crash | zombie | straggler)"
        )
    if params:
        raise ValueError(f"unknown fault parameter(s) {sorted(params)} in {spec!r}")
    return plan


def parse_server_fault(spec: str, rank: int) -> FaultPlan:
    """Fault plan for one serve process from a compact CLI/env spec.

    Grammar: ``kind[:key=value]`` where kind is ``crash`` / ``zombie``
    (key ``after``, messages handled before the fault fires, default 0)
    or ``straggler`` (key ``delay``, seconds per message).  Examples::

        crash:after=40      zombie          straggler:delay=0.01

    This is how a real ``repro serve`` subprocess is told to misbehave
    (``--fault`` flag or ``REPRO_SERVE_FAULT``), so the same specs drive
    unit tests, the loopback chaos suite, and the CI smoke leg.
    """
    kind, _, rest = spec.partition(":")
    params = {}
    for item in filter(None, rest.split(",")):
        key, eq, value = item.partition("=")
        if not eq:
            raise ValueError(f"malformed fault parameter {item!r} in {spec!r}")
        params[key.strip()] = value.strip()
    if kind == "crash":
        after = int(params.pop("after", 0))
        plan = FaultPlan(server_rank_crashes=[ServerRankCrash(rank, after)])
    elif kind == "zombie":
        after = int(params.pop("after", 0))
        plan = FaultPlan(server_rank_zombies=[ServerRankZombie(rank, after)])
    elif kind == "straggler":
        if "delay" not in params:
            raise ValueError(f"fault spec {spec!r} is missing 'delay'")
        plan = FaultPlan(server_rank_stragglers=[
            ServerRankStraggler(rank, delay=float(params.pop("delay")))
        ])
    else:
        raise ValueError(
            f"unknown fault kind {kind!r} (use crash | zombie | straggler)"
        )
    if params:
        raise ValueError(f"unknown fault parameter(s) {sorted(params)} in {spec!r}")
    return plan
