"""Time-stepped campaign model: the scheduler/server back-pressure loop.

State advanced every ``dt`` virtual seconds:

* the batch scheduler starts pending groups while cores remain, at a
  bounded ramp rate (Fig. 6a/c show a ramp, not a step);
* every *unblocked* running group advances its timestep counter at the
  Melissa compute rate and deposits one group-timestep of bytes in the
  server's inbound buffer;
* the server drains the buffer at its aggregate throughput;
* when the buffer is full, groups cannot deposit and are *suspended*
  (they make no progress) — their eventual completion time stretches,
  which is exactly what the paper's 15-node experiment shows;
* a finished group frees its cores; pending groups take them.

The model is deterministic.  It runs the 1000-group campaign in a few
thousand iterations of trivial arithmetic — fast enough to sweep server
sizes in the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.perfmodel.baselines import (
    classical_group_time,
    melissa_group_time_unblocked,
    no_output_group_time,
)
from repro.perfmodel.parameters import CampaignParameters


@dataclass
class CampaignResult:
    """Time series + per-group records + derived summary of one campaign."""

    params: CampaignParameters
    times: np.ndarray  # sample instants (s)
    running_groups: np.ndarray  # concurrently running groups
    cores_in_use: np.ndarray  # incl. server cores
    buffer_bytes: np.ndarray  # server inbound queue depth
    avg_group_seconds: np.ndarray  # windowed avg exec time of completions
    group_start: np.ndarray  # (ngroups,)
    group_end: np.ndarray  # (ngroups,)
    wall_clock_seconds: float

    # ------------------------------------------------------------------ #
    @property
    def group_exec_seconds(self) -> np.ndarray:
        return self.group_end - self.group_start

    @property
    def peak_running_groups(self) -> int:
        return int(self.running_groups.max())

    @property
    def peak_cores(self) -> int:
        return int(self.cores_in_use.max())

    @property
    def simulation_cpu_hours(self) -> float:
        return float(
            (self.group_exec_seconds * self.params.cores_per_group).sum() / 3600.0
        )

    @property
    def server_cpu_hours(self) -> float:
        return self.wall_clock_seconds * self.params.server_cores / 3600.0

    @property
    def server_cpu_fraction(self) -> float:
        total = self.simulation_cpu_hours + self.server_cpu_hours
        return self.server_cpu_hours / total

    @property
    def suspended_fraction(self) -> float:
        """Mean stretch of group exec time beyond the unblocked time."""
        unblocked = melissa_group_time_unblocked(self.params)
        return float((self.group_exec_seconds / unblocked - 1.0).mean())

    def messages_per_minute_per_server_process(self) -> float:
        """Average inbound message rate per server process at steady state."""
        total_messages = (
            self.params.ngroups
            * self.params.ntimesteps
            * self.params.messages_per_group_timestep
        )
        minutes = self.wall_clock_seconds / 60.0
        return total_messages / (minutes * self.params.server_processes)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """The T1 table: every number Sec. 5.3 reports for one campaign."""
        params = self.params
        return {
            "server_nodes": params.server_nodes,
            "wall_clock_hours": self.wall_clock_seconds / 3600.0,
            "simulation_cpu_hours": self.simulation_cpu_hours,
            "server_cpu_hours": self.server_cpu_hours,
            "server_cpu_percent": 100.0 * self.server_cpu_fraction,
            "peak_running_groups": self.peak_running_groups,
            "peak_cores": self.peak_cores,
            "avg_group_seconds": float(self.group_exec_seconds.mean()),
            "no_output_group_seconds": no_output_group_time(params),
            "classical_group_seconds": classical_group_time(params),
            "messages_per_min_per_proc": self.messages_per_minute_per_server_process(),
            "server_memory_gb": params.server_memory_bytes / 1e9,
            "streamed_tb": params.total_streamed_bytes / 1e12,
            "suspended_fraction": self.suspended_fraction,
        }


class CampaignSimulator:
    """Deterministic model of one Melissa campaign on the Curie machine."""

    def __init__(self, params: CampaignParameters, dt: float = 2.0):
        if dt <= 0:
            raise ValueError("dt must be positive")
        if params.max_concurrent_groups < 1:
            raise ValueError("machine cannot fit a single group beside the server")
        self.params = params
        self.dt = dt

    # ------------------------------------------------------------------ #
    def run(self, max_time: float = 1e6) -> CampaignResult:
        p = self.params
        dt = self.dt
        unblocked_time = melissa_group_time_unblocked(p)
        step_rate = p.ntimesteps / unblocked_time  # timesteps/s when free
        bytes_per_step = p.bytes_per_group_timestep
        drain_rate = p.server_throughput_bytes_per_s
        buffer_cap = p.buffer_capacity_bytes

        pending = p.ngroups
        # per running group: fractional timestep progress
        progress: Dict[int, float] = {}
        start = np.full(p.ngroups, np.nan)
        end = np.full(p.ngroups, np.nan)
        next_group = 0
        buffer_bytes = 0.0
        ramp_budget = 0.0

        times: List[float] = []
        running_hist: List[int] = []
        cores_hist: List[int] = []
        buffer_hist: List[float] = []
        avg_exec_hist: List[float] = []
        recently_finished: List[float] = []

        t = 0.0
        while (pending > 0 or progress) and t < max_time:
            # --- scheduler: start groups under core and ramp limits ------
            ramp_budget += p.starts_per_minute * dt / 60.0
            while (
                pending > 0
                and len(progress) < p.max_concurrent_groups
                and ramp_budget >= 1.0
            ):
                progress[next_group] = 0.0
                start[next_group] = t
                next_group += 1
                pending -= 1
                ramp_budget -= 1.0

            # --- group progress + data production ------------------------
            # groups are suspended when the buffer cannot take their data:
            # compute how many groups can deposit this step
            room = buffer_cap - buffer_bytes
            produced_per_group = step_rate * dt * bytes_per_step
            n_running = len(progress)
            if n_running:
                n_can_produce = min(
                    n_running, int(room // produced_per_group) if produced_per_group
                    else n_running,
                )
            else:
                n_can_produce = 0
            # longest-running groups get priority (FIFO fairness)
            for idx, group in enumerate(sorted(progress)):
                if idx >= n_can_produce:
                    break  # the rest are suspended this interval
                progress[group] += step_rate * dt
                buffer_bytes += produced_per_group

            # --- server drains -------------------------------------------
            buffer_bytes = max(0.0, buffer_bytes - drain_rate * dt)

            # --- completions ---------------------------------------------
            for group in [g for g, w in progress.items() if w >= p.ntimesteps]:
                end[group] = t + dt
                recently_finished.append(end[group] - start[group])
                del progress[group]

            # --- sampling -------------------------------------------------
            t += dt
            times.append(t)
            running_hist.append(len(progress))
            cores_hist.append(
                len(progress) * p.cores_per_group + p.server_cores
            )
            buffer_hist.append(buffer_bytes)
            window = recently_finished[-50:]
            avg_exec_hist.append(float(np.mean(window)) if window else np.nan)

        return CampaignResult(
            params=p,
            times=np.asarray(times),
            running_groups=np.asarray(running_hist),
            cores_in_use=np.asarray(cores_hist),
            buffer_bytes=np.asarray(buffer_hist),
            avg_group_seconds=np.asarray(avg_exec_hist),
            group_start=start,
            group_end=end,
            wall_clock_seconds=t,
        )
