"""Calibrated performance model of the paper's Curie campaign (Sec. 5.3-5.4).

The paper's wall-clock results come from a 28 672-core run of a 2017
supercomputer; they cannot be *timed* on a laptop.  What can be reproduced
is the *mechanism* that produced them, with the paper's own constants:

* 1000 groups x 8 simulations x 64 cores (512 cores per group);
* a 10M-hexahedra mesh, 100 output timesteps per simulation, for 48 TB of
  streamed ensemble data;
* Melissa Server on 15 or 32 nodes (16 cores each), whose per-node
  statistics throughput either keeps up with the peak ~56 concurrent
  groups (32 nodes) or does not (15 nodes), in which case ZeroMQ buffers
  fill and simulations *suspend* — stretching their execution time up to
  ~2x, exactly Fig. 6a/b;
* a classical baseline writing EnSight files to Lustre (35.3% slower than
  a no-output run) and a no-output reference.

:class:`CampaignSimulator` is a time-stepped discrete-event model of this
feedback loop (scheduler -> group progress -> data rate -> server queue ->
back-pressure -> group progress).  Its outputs regenerate the Fig. 6
series and the summary table; EXPERIMENTS.md records paper-vs-model for
every number.
"""

from repro.perfmodel.parameters import CampaignParameters, paper_campaign
from repro.perfmodel.campaign import CampaignResult, CampaignSimulator
from repro.perfmodel.baselines import (
    classical_group_time,
    no_output_group_time,
    melissa_group_time_unblocked,
)

__all__ = [
    "CampaignParameters",
    "paper_campaign",
    "CampaignSimulator",
    "CampaignResult",
    "classical_group_time",
    "no_output_group_time",
    "melissa_group_time_unblocked",
]
