"""Campaign constants, taken from the paper wherever it states them.

Quantities the paper gives directly:

===============================  ==========================================
mesh cells                       9 603 840 hexahedra (Sec. 5.2)
timesteps per simulation         100
groups / simulations             1000 groups x 8 sims (6 params + 2)
cores per simulation             64 (Sec. 5.3)
cores per group                  512 (32 nodes of 16 cores)
server sizes studied             15 nodes (240 cores) / 32 nodes (512)
node memory                      64 GB; Lustre bandwidth 150 GB/s
classical vs no-output           +35.3% execution time
Melissa(32 nodes) vs no-output   +18.5%;  vs classical: -13%
total streamed data              48 TB
server memory                    ~491 GB total (959 MB / process x 512)
peak concurrency                 55-56 groups (28 672 / 28 912 cores)
message rate at peak             ~1000 msgs/min per server process
checkpoint / restart             2.75 s / 7.24 s per process, 600 s period
===============================  ==========================================

The two *free* constants are the no-output group execution time (the
paper's Fig. 6 y-axis suggests ~200 s) and the server per-node processing
throughput, calibrated so that 15 nodes saturate at peak concurrency and
32 nodes do not — the paper's central observation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: bytes per float64 cell value
_F64 = 8


@dataclass(frozen=True)
class CampaignParameters:
    """All knobs of the campaign model (defaults = the paper's campaign)."""

    # study shape
    ngroups: int = 1000
    sims_per_group: int = 8  # p + 2 with p = 6
    nparams: int = 6
    ntimesteps: int = 100
    ncells: int = 9_603_840

    # machine shape
    cores_per_sim: int = 64
    cores_per_node: int = 16
    available_cores: int = 29_180  # partition the batch scheduler granted
    server_nodes: int = 32
    node_memory_gb: float = 64.0
    lustre_bandwidth_gbps: float = 150.0

    # execution-time anchors (seconds)
    no_output_group_seconds: float = 200.0
    classical_slowdown: float = 1.353  # paper: +35.3% vs no output
    melissa_send_overhead: float = 1.185  # paper: +18.5% vs no output

    # server model
    server_node_throughput_gbps: float = 0.50  # calibrated (see module doc)
    buffer_gb_per_server_node: float = 24.0  # ZeroMQ buffer budget
    # HTC mode (paper Sec. 7): groups and server on different machines,
    # linked by a WAN of this aggregate bandwidth; None = same machine
    network_bandwidth_gbps: Optional[float] = None

    # transfer bookkeeping
    main_sim_ranks: int = 64  # stage-2 senders per group
    avg_server_fanout: float = 6.0  # server ranks each sender intersects

    # fault tolerance
    checkpoint_period_seconds: float = 600.0
    checkpoint_write_gbps_per_proc: float = 0.35
    checkpoint_read_gbps_per_proc: float = 0.13
    group_timeout_seconds: float = 300.0

    # scheduler ramp: groups the batch system starts per minute at most
    starts_per_minute: float = 16.0

    def __post_init__(self):
        if self.ngroups < 1 or self.ntimesteps < 1:
            raise ValueError("ngroups and ntimesteps must be >= 1")
        if self.no_output_group_seconds <= 0:
            raise ValueError("no_output_group_seconds must be positive")
        if self.server_node_throughput_gbps <= 0:
            raise ValueError("server throughput must be positive")
        if self.network_bandwidth_gbps is not None and self.network_bandwidth_gbps <= 0:
            raise ValueError("network_bandwidth_gbps must be positive or None")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def cores_per_group(self) -> int:
        return self.sims_per_group * self.cores_per_sim

    @property
    def server_cores(self) -> int:
        return self.server_nodes * self.cores_per_node

    @property
    def server_processes(self) -> int:
        """One MPI process per server core, as in the paper (512 on 32 nodes)."""
        return self.server_cores

    @property
    def max_concurrent_groups(self) -> int:
        return (self.available_cores - self.server_cores) // self.cores_per_group

    @property
    def bytes_per_sim_timestep(self) -> int:
        return self.ncells * _F64

    @property
    def bytes_per_group_timestep(self) -> int:
        return self.sims_per_group * self.bytes_per_sim_timestep

    @property
    def total_streamed_bytes(self) -> int:
        """The 48 TB the classical study would have written."""
        return self.ngroups * self.ntimesteps * self.bytes_per_group_timestep

    @property
    def server_throughput_bytes_per_s(self) -> float:
        """Effective drain rate: server compute, capped by the WAN link
        in HTC mode (whichever is scarcer bounds the in-transit rate)."""
        compute = self.server_nodes * self.server_node_throughput_gbps * 1e9
        if self.network_bandwidth_gbps is None:
            return compute
        return min(compute, self.network_bandwidth_gbps * 1e9)

    @property
    def buffer_capacity_bytes(self) -> float:
        return self.server_nodes * self.buffer_gb_per_server_node * 1e9

    @property
    def messages_per_group_timestep(self) -> float:
        """Stage-2 message count: main-sim ranks x their server fanout."""
        return self.main_sim_ranks * self.avg_server_fanout

    # --- server memory model (matches repro.sobol memory accounting) ---- #
    @property
    def statistics_floats_per_cell_timestep(self) -> int:
        """2p covariance accumulators x 5 arrays + mean/M2 of the output."""
        return 2 * self.nparams * 5 + 2

    @property
    def server_memory_bytes(self) -> int:
        return (
            self.statistics_floats_per_cell_timestep
            * self.ncells
            * self.ntimesteps
            * _F64
        )

    @property
    def checkpoint_bytes_per_process(self) -> float:
        return self.server_memory_bytes / self.server_processes

    @property
    def checkpoint_seconds_per_process(self) -> float:
        return self.checkpoint_bytes_per_process / (
            self.checkpoint_write_gbps_per_proc * 1e9
        )

    @property
    def restart_read_seconds_per_process(self) -> float:
        return self.checkpoint_bytes_per_process / (
            self.checkpoint_read_gbps_per_proc * 1e9
        )

    # ------------------------------------------------------------------ #
    def with_server_nodes(self, nodes: int) -> "CampaignParameters":
        return replace(self, server_nodes=nodes)


def paper_campaign(server_nodes: int = 32) -> CampaignParameters:
    """The paper's campaign with the chosen server size (15 or 32 nodes)."""
    return CampaignParameters(server_nodes=server_nodes)
