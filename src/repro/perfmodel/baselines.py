"""Closed-form execution-time baselines (the flat lines of Fig. 6b/6d)."""

from __future__ import annotations

from repro.perfmodel.parameters import CampaignParameters


def no_output_group_time(params: CampaignParameters) -> float:
    """Best-case group time: compute only, nothing leaves the node."""
    return params.no_output_group_seconds


def classical_group_time(params: CampaignParameters) -> float:
    """File-writing baseline: the paper measured +35.3% over no-output.

    This is *optimistic* for the classical workflow (measured with only 8
    simultaneous writers; contention from 448 concurrent simulations would
    make it worse, as the paper notes) and excludes the postmortem
    read-back entirely.
    """
    return params.no_output_group_seconds * params.classical_slowdown


def melissa_group_time_unblocked(params: CampaignParameters) -> float:
    """Melissa group time when the server keeps up: +18.5% over no-output
    (send/gather overhead), 13% faster than classical."""
    return params.no_output_group_seconds * params.melissa_send_overhead


def classical_readback_seconds(params: CampaignParameters) -> float:
    """Extra postmortem cost the classical workflow pays: reading the whole
    ensemble back from Lustre at full filesystem bandwidth (lower bound)."""
    return params.total_streamed_bytes / (params.lustre_bandwidth_gbps * 1e9)


def classical_write_seconds(params: CampaignParameters) -> float:
    """Aggregate Lustre write time of the ensemble (lower bound)."""
    return params.total_streamed_bytes / (params.lustre_bandwidth_gbps * 1e9)
