"""Command-line interface: run studies and campaign replays from a shell.

Three subcommands mirror the examples:

``python -m repro.cli quickstart``
    Ishigami study; prints estimates vs closed form.
``python -m repro.cli tube --nx 48 --ny 24 --groups 40``
    The paper's tube-bundle use case with ASCII Sobol' maps.
``python -m repro.cli campaign --server-nodes 32``
    The Curie campaign through the calibrated performance model.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import SensitivityStudy
    from repro.sobol import IshigamiFunction

    fn = IshigamiFunction()
    study = SensitivityStudy.for_function(
        fn, ngroups=args.groups, seed=args.seed, kernel=args.kernel
    )
    results = study.run(runtime=args.runtime)
    print(f"groups integrated: {results.groups_integrated}")
    print(f"{'parameter':<6} {'S est':>8} {'S exact':>8} {'ST est':>8} {'ST exact':>9}")
    for k, name in enumerate(results.parameter_names):
        print(
            f"{name:<6} {results.first_order[k, 0, 0]:8.4f} "
            f"{fn.first_order[k]:8.4f} {results.total_order[k, 0, 0]:8.4f} "
            f"{fn.total_order[k]:9.4f}"
        )
    return 0


def _cmd_tube(args: argparse.Namespace) -> int:
    from repro import SensitivityStudy
    from repro.report import render_field_slice
    from repro.solver import TubeBundleCase

    case = TubeBundleCase(
        nx=args.nx, ny=args.ny, ntimesteps=args.timesteps, total_time=args.time
    )
    study = SensitivityStudy.for_tube_bundle(
        case, ngroups=args.groups, seed=args.seed,
        server_ranks=args.server_ranks, client_ranks=2,
        kernel=args.kernel,
    )
    kwargs = {"steps_per_tick": 4} if args.runtime == "sequential" else {}
    results = study.run(runtime=args.runtime, **kwargs)
    print(results.summary())
    step = max(0, int(0.8 * case.ntimesteps))
    for k, name in enumerate(results.parameter_names):
        print(render_field_slice(
            np.nan_to_num(results.first_order_map(k, step)), case.mesh.dims,
            width=min(64, args.nx), height=min(16, args.ny),
            title=f"\nS map: {name} (t={step})", vmin=0.0, vmax=1.0,
        ))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.perfmodel import CampaignSimulator, paper_campaign
    from repro.report import format_table

    params = paper_campaign(args.server_nodes)
    result = CampaignSimulator(params).run()
    summary = result.summary()
    rows = [[k, v] for k, v in summary.items()]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"Curie campaign model, server on {args.server_nodes} nodes",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Melissa (SC'17) reproduction: in-transit sensitivity analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runtime_choices = ("sequential", "threaded", "process")
    from repro.kernels import KERNEL_NAMES

    def add_kernel_arg(sp):
        sp.add_argument(
            "--kernel", choices=KERNEL_NAMES, default=None,
            help="co-moment fold backend (default: $REPRO_KERNEL, then "
                 "'auto' = autotune on the first fold)",
        )

    p = sub.add_parser("quickstart", help="Ishigami study vs closed form")
    p.add_argument("--groups", type=int, default=2000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--runtime", choices=runtime_choices, default="sequential",
                   help="execution driver (process = multi-core workers)")
    add_kernel_arg(p)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("tube", help="tube-bundle use case with ASCII maps")
    p.add_argument("--nx", type=int, default=48)
    p.add_argument("--ny", type=int, default=24)
    p.add_argument("--timesteps", type=int, default=10)
    p.add_argument("--time", type=float, default=1.5)
    p.add_argument("--groups", type=int, default=30)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--server-ranks", type=int, default=4)
    p.add_argument("--runtime", choices=runtime_choices, default="sequential",
                   help="execution driver (process = multi-core workers)")
    add_kernel_arg(p)
    p.set_defaults(func=_cmd_tube)

    p = sub.add_parser("campaign", help="Curie campaign performance model")
    p.add_argument("--server-nodes", type=int, default=32)
    p.set_defaults(func=_cmd_campaign)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
