"""Command-line interface: run studies and campaign replays from a shell.

Study subcommands mirror the examples:

``python -m repro.cli quickstart``
    Ishigami study; prints estimates vs closed form.
``python -m repro.cli tube --nx 48 --ny 24 --groups 40``
    The paper's tube-bundle use case with ASCII Sobol' maps.
``python -m repro.cli campaign --server-nodes 32``
    The Curie campaign through the calibrated performance model.

Distributed deployment (the paper's multi-host shape — every process may
run on a different machine, pointed at the same coordinator):

``python -m repro.cli launch --study quickstart --groups 100 --bind HOST:PORT``
    Rendezvous + work queue; waits for ranks and workers, prints results.
``python -m repro.cli serve --study quickstart --groups 100 --rank K --coordinator HOST:PORT``
    One Melissa Server rank (run ``--server-ranks`` of these).
``python -m repro.cli work --study quickstart --groups 100 --coordinator HOST:PORT``
    One group worker (run as many as the machines allow).

``launch --local-workers N`` instead forks ranks + workers on this host
(loopback single-host mode, same code path the tests drive).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional, Tuple

import numpy as np


def _stats_overrides(args: argparse.Namespace) -> dict:
    """``statistics=[...]`` config override from repeated/comma'd --stats.

    No ``--stats`` flag keeps the study default; ``--stats none`` disables
    general statistics; anything else is a catalog spec string (see
    ``repro stats --list``).
    """
    raw = getattr(args, "stats", None)
    if not raw:
        return {}
    specs: List[str] = []
    for chunk in raw:
        specs.extend(s.strip() for s in chunk.split(",") if s.strip())
    if specs == ["none"]:
        return {"statistics": []}
    return {"statistics": specs}


def _configure_logging(args: argparse.Namespace) -> None:
    """Apply ``--log-level`` / ``--log-json`` (structured logging, ISSUE 8)."""
    from repro.telemetry.logs import configure_logging

    configure_logging(
        level=getattr(args, "log_level", "warning") or "warning",
        json_mode=bool(getattr(args, "log_json", False)),
    )


def _print_observability_summary(coordinator) -> None:
    """End-of-run summary: channel suspensions + the launcher event timeline.

    Both are collected unconditionally (the ``bye``/``rank_state`` frames
    carry final :class:`~repro.transport.channel.ChannelStats` and the
    coordinator keeps its event list), so this needs no telemetry flags.
    """
    worker_stats = getattr(coordinator, "worker_channel_stats", {}) or {}
    rank_stats = getattr(coordinator, "rank_channel_stats", {}) or {}
    if worker_stats or rank_stats:
        print("\nchannel suspension summary (dual-HWM back-pressure):")
        for name in sorted(worker_stats):
            st = worker_stats[name]
            print(
                f"  {name}: sent {int(st.get('bytes_sent', 0)):,} B in "
                f"{int(st.get('messages_sent', 0))} message(s), "
                f"{int(st.get('send_blocks', 0))} suspension(s), "
                f"{float(st.get('blocked_seconds', 0.0)):.3f}s blocked"
            )
        for rank in sorted(rank_stats):
            st = rank_stats[rank]
            print(
                f"  server-rank-{rank}: received "
                f"{int(st.get('bytes_received', 0)):,} B in "
                f"{int(st.get('messages_received', 0))} message(s), "
                f"{int(st.get('recv_blocks', 0))} producer suspension(s), "
                f"{float(st.get('blocked_seconds', 0.0)):.3f}s blocked"
            )
    events = list(getattr(coordinator, "events", None) or [])
    if events:
        t0 = events[0][0]
        print(f"\nrun timeline ({len(events)} event(s)):")
        for when, kind, detail in events:
            line = f"  +{when - t0:8.3f}s  {kind}"
            if detail:
                line += f"  {detail}"
            print(line)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import SensitivityStudy
    from repro.sobol import IshigamiFunction

    fn = IshigamiFunction()
    study = SensitivityStudy.for_function(
        fn, ngroups=args.groups, seed=args.seed, kernel=args.kernel,
        fold_threads=args.fold_threads,
        **_stats_overrides(args),
    )
    results = study.run(runtime=args.runtime)
    print(f"groups integrated: {results.groups_integrated}")
    print(f"{'parameter':<6} {'S est':>8} {'S exact':>8} {'ST est':>8} {'ST exact':>9}")
    for k, name in enumerate(results.parameter_names):
        print(
            f"{name:<6} {results.first_order[k, 0, 0]:8.4f} "
            f"{fn.first_order[k]:8.4f} {results.total_order[k, 0, 0]:8.4f} "
            f"{fn.total_order[k]:9.4f}"
        )
    if results.statistics:
        from repro.report import statistics_table

        print(statistics_table(results, title="\nconfigured statistics (t=0)"))
    return 0


def _cmd_tube(args: argparse.Namespace) -> int:
    from repro import SensitivityStudy
    from repro.report import render_field_slice
    from repro.solver import TubeBundleCase

    case = TubeBundleCase(
        nx=args.nx, ny=args.ny, ntimesteps=args.timesteps, total_time=args.time
    )
    study = SensitivityStudy.for_tube_bundle(
        case, ngroups=args.groups, seed=args.seed,
        server_ranks=args.server_ranks, client_ranks=2,
        kernel=args.kernel,
        fold_threads=args.fold_threads,
        **_stats_overrides(args),
    )
    kwargs = {"steps_per_tick": 4} if args.runtime == "sequential" else {}
    results = study.run(runtime=args.runtime, **kwargs)
    print(results.summary())
    if results.statistics:
        from repro.report import statistics_table

        print(statistics_table(results, title="\nconfigured statistics (final t)"))
    step = max(0, int(0.8 * case.ntimesteps))
    for k, name in enumerate(results.parameter_names):
        print(render_field_slice(
            np.nan_to_num(results.first_order_map(k, step)), case.mesh.dims,
            width=min(64, args.nx), height=min(16, args.ny),
            title=f"\nS map: {name} (t={step})", vmin=0.0, vmax=1.0,
        ))
    return 0


def _parse_address(spec: str, wait: float = 60.0) -> Tuple[str, int]:
    """HOST:PORT, or ``@FILE`` naming an address file ``launch`` wrote.

    The file form lets every process bind ephemeral ports (port 0):
    ``launch --bind 127.0.0.1:0 --address-file rendezvous.addr`` writes
    the actual address once bound, and ``serve``/``work`` started with
    ``--coordinator @rendezvous.addr`` poll for the file — no fixed port
    to collide on (the EADDRINUSE class of CI flakes).  Each candidate
    address is probed with a TCP connect before being accepted: a stale
    file from a previous run (its port now dead) keeps the poll going
    until the new launch overwrites it, instead of sending every
    participant off to dial a corpse.
    """
    if spec.startswith("@"):
        import socket as _socket
        import time as _time

        path = spec[1:]
        deadline = _time.monotonic() + wait
        while True:
            content = ""
            try:
                with open(path) as fh:
                    content = fh.read().strip()
            except OSError:
                pass
            if content:
                host, port = _parse_address(content)
                try:
                    _socket.create_connection((host, port), timeout=1.0).close()
                    return host, port
                except OSError:
                    pass  # stale address from a previous run; keep polling
            if _time.monotonic() >= deadline:
                raise SystemExit(f"no live coordinator address in {path!r} after {wait}s")
            _time.sleep(0.1)
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {spec!r}")
    return host, int(port)


def _resolve_study(args: argparse.Namespace):
    """Build the SensitivityStudy every distributed participant agrees on.

    ``--study`` accepts the built-in specs ``quickstart`` (Ishigami, one
    cell), ``vector`` (Ishigami over ``--cells`` cells — the cheap
    multi-rank smoke study), and ``tube`` (the paper's CFD case), or
    ``module:callable`` where the callable takes no arguments and
    returns a :class:`~repro.study.SensitivityStudy` — the escape hatch
    for real models.  Every process (launch / serve / work) must be
    given the SAME spec and flags; the coordinator rejects mismatched
    fingerprints.
    """
    from repro import SensitivityStudy

    spec = args.study
    if spec == "quickstart":
        from repro.sobol import IshigamiFunction

        return SensitivityStudy.for_function(
            IshigamiFunction(), ngroups=args.groups, seed=args.seed,
            ntimesteps=args.timesteps, server_ranks=args.server_ranks,
            kernel=getattr(args, "kernel", None),
            **_stats_overrides(args),
        )
    if spec == "vector":
        from repro.core.config import StudyConfig
        from repro.core.group import VectorFieldSimulation
        from repro.sobol import IshigamiFunction

        fn = IshigamiFunction()
        ncells = args.cells
        ntimesteps = args.timesteps
        config = StudyConfig(
            space=fn.space(), ngroups=args.groups, ntimesteps=ntimesteps,
            ncells=ncells, seed=args.seed, server_ranks=args.server_ranks,
            client_ranks=min(2, ncells), kernel=getattr(args, "kernel", None),
            **_stats_overrides(args),
        )

        def factory(params, sim_id):
            return VectorFieldSimulation(fn, params, ncells, ntimesteps, sim_id)

        return SensitivityStudy(config, factory)
    if spec == "tube":
        from repro.solver import TubeBundleCase

        case = TubeBundleCase()
        return SensitivityStudy.for_tube_bundle(
            case, ngroups=args.groups, seed=args.seed,
            server_ranks=args.server_ranks,
            kernel=getattr(args, "kernel", None),
            **_stats_overrides(args),
        )
    if ":" in spec:
        module_name, _, attr = spec.partition(":")
        obj = getattr(importlib.import_module(module_name), attr)
        study = obj() if callable(obj) and not isinstance(obj, SensitivityStudy) else obj
        if not isinstance(study, SensitivityStudy):
            raise SystemExit(f"--study {spec!r} did not yield a SensitivityStudy")
        return study
    raise SystemExit(
        f"unknown study spec {spec!r} "
        "(use 'quickstart', 'vector', 'tube', or module:callable)"
    )


def _resolved_study(args: argparse.Namespace):
    """The study plus the per-process config overrides (not fingerprinted)."""
    study = _resolve_study(args)
    interval = getattr(args, "checkpoint_interval", None)
    if interval is not None:
        study.config.checkpoint_interval = interval
    transport = getattr(args, "transport", None)
    if transport is not None:
        study.config.transport = transport
    fold_threads = getattr(args, "fold_threads", None)
    if fold_threads is not None:
        from repro.kernels.parallel import validate_threads_spec

        study.config.fold_threads = validate_threads_spec(fold_threads)
    return study


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.serve import run_server_rank

    _configure_logging(args)
    study = _resolved_study(args)
    return run_server_rank(
        args.rank,
        study.config,
        _parse_address(args.coordinator),
        data_host=args.data_host,
        data_port=args.data_port,
        checkpoint_dir=args.checkpoint_dir,
        fault_spec=args.fault,
    )


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.net.worker import run_worker

    _configure_logging(args)
    study = _resolved_study(args)
    return run_worker(
        study.config,
        study.factory,
        _parse_address(args.coordinator),
        name=args.name,
        fault_spec=args.fault,
        elastic=args.elastic,
        # elastic extras are the remedy, not the disease: a pool spawned
        # by `repro launch` inherits the launch environment, so a stray
        # $REPRO_WORK_FAULT must not re-arm in them
        env_fault=not args.elastic,
    )


def _scheduling_spec(args: argparse.Namespace) -> Optional[str]:
    """Scheduling spec string from the launch flags (None = plain FIFO).

    ``--schedule`` passes a full :func:`repro.scheduler.policy.parse_scheduling`
    spec; ``--speculate`` / ``--steal`` / ``--elastic`` are sugar for one
    clause each, optionally with that clause's parameters attached
    (``--speculate multiple=2.5,min_done=1``).
    """
    if args.schedule:
        if args.speculate is not None or args.steal is not None or args.elastic is not None:
            raise SystemExit("pass either --schedule or the per-clause flags, not both")
        return args.schedule
    clauses = []
    for kind, value in (
        ("speculate", args.speculate),
        ("steal", args.steal),
        ("elastic", args.elastic),
    ):
        if value is None:
            continue
        clauses.append(f"{kind}:{value}" if value else kind)
    return ";".join(clauses) or None


def _serve_respawn_command(args: argparse.Namespace, rank: int, address) -> List[str]:
    """The ``repro serve`` invocation the launch supervisor respawns.

    Mirrors the study flags the launch itself was given so the
    replacement's fingerprint matches, and points it at the checkpoint
    directory so the restored statistics carry over.  The data listener
    binds ``--respawn-data-host`` (default: the coordinator's bind host,
    so remote workers can reach the replacement) on an ephemeral port —
    the fresh address is re-published through the rendezvous, so a fixed
    data port is never needed.
    """
    data_host = args.respawn_data_host or address[0]
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--study", args.study,
        "--groups", str(args.groups),
        "--seed", str(args.seed),
        "--timesteps", str(args.timesteps),
        "--cells", str(args.cells),
        "--server-ranks", str(args.server_ranks),
        "--rank", str(rank),
        "--coordinator", f"{address[0]}:{address[1]}",
        "--data-host", data_host,
    ]
    if args.kernel:
        cmd += ["--kernel", args.kernel]
    if getattr(args, "fold_threads", None) is not None:
        cmd += ["--fold-threads", str(args.fold_threads)]
    for spec in getattr(args, "stats", None) or []:
        cmd += ["--stats", spec]
    if args.checkpoint_interval is not None:
        cmd += ["--checkpoint-interval", str(args.checkpoint_interval)]
    if getattr(args, "transport", None):
        cmd += ["--transport", args.transport]
    if args.checkpoint_dir:
        cmd += ["--checkpoint-dir", args.checkpoint_dir]
    return cmd


def _work_spawn_command(args: argparse.Namespace, index: int, address) -> List[str]:
    """The ``repro work --elastic`` invocation the elastic pool spawns.

    Mirrors the study flags the launch was given (fingerprint match) and
    marks the worker retirable, so the coordinator drains it once the
    queue empties.  Elastic workers spawn on the launch host; multi-host
    deployments start extra ``repro work`` processes with their own
    process manager — the protocol is identical.
    """
    cmd = [
        sys.executable, "-m", "repro.cli", "work",
        "--study", args.study,
        "--groups", str(args.groups),
        "--seed", str(args.seed),
        "--timesteps", str(args.timesteps),
        "--cells", str(args.cells),
        "--server-ranks", str(args.server_ranks),
        "--coordinator", f"{address[0]}:{address[1]}",
        "--name", f"elastic-{index}",
        "--elastic",
    ]
    if args.kernel:
        cmd += ["--kernel", args.kernel]
    if getattr(args, "fold_threads", None) is not None:
        cmd += ["--fold-threads", str(args.fold_threads)]
    for spec in getattr(args, "stats", None) or []:
        cmd += ["--stats", spec]
    if getattr(args, "transport", None):
        cmd += ["--transport", args.transport]
    return cmd


def _cmd_launch(args: argparse.Namespace) -> int:
    _configure_logging(args)
    study = _resolved_study(args)
    scheduling = _scheduling_spec(args)
    if scheduling is not None:
        from repro.scheduler.policy import parse_scheduling

        study.config.scheduling = parse_scheduling(scheduling)
    telemetry_on = bool(
        args.trace or args.metrics_file or args.metrics_port is not None
    )
    coordinator = None
    pool = None
    if args.local_workers:
        # loopback single-host mode: fork ranks + workers right here
        from repro.runtime import DistributedRuntime

        host, port = _parse_address(args.bind)
        runtime = DistributedRuntime(
            study.config, study.factory, nworkers=args.local_workers,
            host=host, port=port, checkpoint_dir=args.checkpoint_dir,
            telemetry=telemetry_on, trace_file=args.trace,
            metrics_file=args.metrics_file, metrics_port=args.metrics_port,
            metrics_interval=args.metrics_interval,
        )
        if args.address_file:
            raise SystemExit("--address-file only applies without --local-workers")
        results = runtime.run(timeout=args.timeout)
        coordinator = runtime.coordinator
        pool = runtime.pool
    else:
        import subprocess

        from repro.core.launcher import RankRespawnPolicy
        from repro.net.coordinator import Coordinator
        from repro.net.supervisor import RankSupervisor
        from repro.runtime.distributed import assemble_results

        import os

        if args.address_file:
            # a leftover file from a previous run would hand serve/work a
            # dead address before we bind; remove it up front
            try:
                os.unlink(args.address_file)
            except OSError:
                pass
        host, port = _parse_address(args.bind)
        policy = None
        sched_cfg = study.config.scheduling
        if sched_cfg is not None and sched_cfg.enabled:
            from repro.net.supervisor import PoolSupervisor
            from repro.scheduler.policy import ElasticPoolPolicy, SchedulingPolicy

            policy = SchedulingPolicy(sched_cfg)
        telemetry = tracer = None
        if telemetry_on:
            from repro import telemetry as _telemetry
            from repro.telemetry.aggregate import StudyTelemetry
            from repro.telemetry.tracer import Tracer

            _telemetry.enable()
            tracer = Tracer()
            telemetry = StudyTelemetry(_telemetry.REGISTRY, tracer)
        coordinator = Coordinator(
            study.config, host=host, port=port, policy=policy,
            telemetry=telemetry, tracer=tracer,
        )
        elastic_procs: List = []
        if policy is not None and sched_cfg.elastic:
            # elastic ramp: spawn extra `repro work --elastic` subprocesses
            # on this host while the queue is deep, retire them as it
            # drains (they exit through the retire op on their own)
            pool = PoolSupervisor(
                spawner=lambda index: elastic_procs.append(
                    subprocess.Popen(
                        _work_spawn_command(args, index, coordinator.address)
                    )
                ),
                policy=ElasticPoolPolicy(sched_cfg),
            )
            coordinator.pool = pool
        if args.respawn_serve:
            from repro.net.serve import FAULT_ENV

            # the launcher protocol against externally started serves:
            # a dead/silent rank is killed and a replacement subprocess
            # spawned ON THIS HOST from the same study flags (multi-host
            # deployments respawn serve with their own process manager).
            # The fault env var is stripped: replacements run clean even
            # when the original serve was env-injected to die.  The env
            # is computed at SPAWN time, not launch time, so fold-plan
            # exports the coordinator absorbed mid-study
            # ($REPRO_FOLD_AUTOTUNE) reach the replacement and it skips
            # the autotune probe.
            coordinator.supervisor = RankSupervisor(
                spawner=lambda rank: subprocess.Popen(
                    _serve_respawn_command(args, rank, coordinator.address),
                    env={k: v for k, v in os.environ.items() if k != FAULT_ENV},
                ),
                policy=RankRespawnPolicy(
                    nranks=study.config.server_ranks,
                    timeout=study.config.server_timeout,
                    max_respawns=study.config.max_rank_respawns,
                ),
            )
        coordinator.start()
        print(
            f"coordinator on {coordinator.address[0]}:{coordinator.address[1]} — "
            f"waiting for {study.config.server_ranks} server rank(s) and workers"
        )
        if args.address_file:
            # atomic publish: pollers must never read a half-written file
            tmp = f"{args.address_file}.tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{coordinator.address[0]}:{coordinator.address[1]}\n")
            os.replace(tmp, args.address_file)
        metrics_writer = metrics_server = None
        if telemetry is not None:
            from repro.telemetry.exporters import (
                MetricsFileWriter,
                MetricsHTTPServer,
            )

            frame_fn = lambda: telemetry.view(coordinator.study_view())  # noqa: E731
            if args.metrics_file:
                metrics_writer = MetricsFileWriter(
                    args.metrics_file, frame_fn,
                    interval=args.metrics_interval,
                ).start()
            if args.metrics_port is not None:
                metrics_server = MetricsHTTPServer(
                    frame_fn, host=host, port=args.metrics_port
                ).start()
                print(f"metrics endpoint: {metrics_server.url}")
        try:
            coordinator.wait(timeout=args.timeout)
        finally:
            coordinator.close()
            if metrics_writer is not None:
                metrics_writer.close()
            if metrics_server is not None:
                metrics_server.close()
        results = assemble_results(study.config, coordinator)
        if tracer is not None and args.trace:
            tracer.write(args.trace)
        if coordinator.rank_respawns:
            print(f"respawned server rank(s): {coordinator.rank_respawns}")
        for proc in elastic_procs:
            # retired/finished elastic workers exit through the protocol;
            # anything still around after the study is surplus
            if proc.poll() is None:
                proc.terminate()
    print(results.summary())
    if results.abandoned_groups:
        print(f"abandoned groups: {results.abandoned_groups}")
    if coordinator is not None and coordinator.speculated:
        print(f"speculated group(s): {sorted(set(coordinator.speculated))}")
    if pool is not None:
        print(
            f"elastic workers spawned: {pool.spawned_total}, "
            f"retired: {pool.retired_total}"
        )
    if coordinator is not None:
        _print_observability_summary(coordinator)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry.top import run_top

    return run_top(args.source, interval=args.interval, once=args.once)


def _cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats --list``: the registered streaming-statistics catalog."""
    from repro.report import format_table
    from repro.stats import available_statistics

    rows = []
    for name, cls in available_statistics().items():
        params = ", ".join(
            f"{key}={default}" if default is not None else f"{key} (required)"
            for key, default in cls.PARAMS.items()
        ) or "-"
        merge = "exact" if cls.exact_merge else "approximate"
        rows.append([name, params, merge, cls.description])
    print(format_table(
        ["name", "parameters", "merge", "description"], rows,
        title="streaming-statistics catalog (use with --stats or "
              "StudyConfig(statistics=[...]))",
    ))
    print(
        "\ncustom plugins: subclass repro.stats.FieldStatistic, decorate "
        "with @repro.stats.register,\nor reference one directly as "
        "'my_module:MyStatistic' in any spec position."
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.perfmodel import CampaignSimulator, paper_campaign
    from repro.report import format_table

    params = paper_campaign(args.server_nodes)
    result = CampaignSimulator(params).run()
    summary = result.summary()
    rows = [[k, v] for k, v in summary.items()]
    print(format_table(
        ["quantity", "value"], rows,
        title=f"Curie campaign model, server on {args.server_nodes} nodes",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Melissa (SC'17) reproduction: in-transit sensitivity analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runtime_choices = ("sequential", "threaded", "process", "distributed")
    from repro.kernels import KERNEL_NAMES

    def add_kernel_arg(sp):
        sp.add_argument(
            "--kernel", choices=KERNEL_NAMES, default=None,
            help="co-moment fold backend (default: $REPRO_KERNEL, then "
                 "'auto' = autotune on the first fold)",
        )
        sp.add_argument(
            "--fold-threads", metavar="N|auto", default=None,
            help="fold-pool width per server rank: an int >= 1, or "
                 "'auto' = probe 1/2/half/all cores on the first real "
                 "fold, clamped by cpus // local_ranks (default: "
                 "$REPRO_FOLD_THREADS, then 'auto')",
        )

    def add_stats_arg(sp):
        sp.add_argument(
            "--stats", action="append", default=None, metavar="SPEC",
            help="statistic spec from the catalog (repeat or comma-"
                 "separate; 'none' disables; see `repro stats --list`); "
                 "default: the study's configured statistics",
        )

    p = sub.add_parser("quickstart", help="Ishigami study vs closed form")
    p.add_argument("--groups", type=int, default=2000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--runtime", choices=runtime_choices, default="sequential",
                   help="execution driver (process = multi-core workers)")
    add_kernel_arg(p)
    add_stats_arg(p)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser("tube", help="tube-bundle use case with ASCII maps")
    p.add_argument("--nx", type=int, default=48)
    p.add_argument("--ny", type=int, default=24)
    p.add_argument("--timesteps", type=int, default=10)
    p.add_argument("--time", type=float, default=1.5)
    p.add_argument("--groups", type=int, default=30)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--server-ranks", type=int, default=4)
    p.add_argument("--runtime", choices=runtime_choices, default="sequential",
                   help="execution driver (process = multi-core workers)")
    add_kernel_arg(p)
    add_stats_arg(p)
    p.set_defaults(func=_cmd_tube)

    p = sub.add_parser("campaign", help="Curie campaign performance model")
    p.add_argument("--server-nodes", type=int, default=32)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("stats", help="the streaming-statistics catalog")
    p.add_argument("--list", action="store_true", default=True,
                   help="list registered statistics (default action)")
    p.set_defaults(func=_cmd_stats)

    def add_log_args(sp):
        sp.add_argument(
            "--log-level", default="warning",
            choices=("debug", "info", "warning", "error"),
            help="structured-log verbosity for this process (default: warning)",
        )
        sp.add_argument(
            "--log-json", action="store_true",
            help="emit structured logs as one JSON object per line",
        )

    def add_study_args(sp):
        sp.add_argument(
            "--study", default="quickstart",
            help="study spec: quickstart | vector | tube | module:callable "
                 "(must be identical on launch, serve, and work)",
        )
        sp.add_argument("--groups", type=int, default=100)
        sp.add_argument("--seed", type=int, default=42)
        sp.add_argument("--timesteps", type=int, default=1)
        sp.add_argument("--cells", type=int, default=32,
                        help="cell count for the 'vector' study spec")
        sp.add_argument("--server-ranks", type=int, default=2)
        sp.add_argument("--checkpoint-interval", type=float, default=None,
                        help="seconds between rank checkpoints (default: "
                             "the study config's 600s)")
        sp.add_argument("--transport", choices=("auto", "tcp", "shm"),
                        default=None,
                        help="data-plane fabric: auto negotiates a "
                             "shared-memory ring per channel when worker "
                             "and rank share a host, falling back to TCP; "
                             "tcp/shm pin the fabric (per-process knob, "
                             "not fingerprinted)")
        add_kernel_arg(sp)
        add_stats_arg(sp)

    p = sub.add_parser(
        "serve", help="one Melissa Server rank (distributed deployment)"
    )
    add_study_args(p)
    p.add_argument("--rank", type=int, required=True)
    p.add_argument("--coordinator", required=True, metavar="HOST:PORT")
    p.add_argument("--data-host", default="127.0.0.1",
                   help="interface for this rank's data listener")
    p.add_argument("--data-port", type=int, default=0,
                   help="data port (0 = ephemeral, sent to the rendezvous)")
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--fault", default=None, metavar="SPEC",
                   help="inject a fault into this rank: crash[:after=N] | "
                        "zombie[:after=N] | straggler:delay=S (also via "
                        "$REPRO_SERVE_FAULT)")
    add_log_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("work", help="one group worker (distributed deployment)")
    add_study_args(p)
    p.add_argument("--coordinator", required=True, metavar="HOST:PORT")
    p.add_argument("--name", default="", help="worker name for logs/liveness")
    p.add_argument("--fault", default=None, metavar="SPEC",
                   help="inject a fault into this worker: crash[:after=N] | "
                        "zombie[:after=N] | straggler:delay=S (seconds per "
                        "delivered message; also via $REPRO_WORK_FAULT)")
    p.add_argument("--elastic", action="store_true",
                   help="mark this worker retirable: the coordinator may "
                        "drain it once the queue empties (used by the "
                        "elastic pool's spawned workers)")
    add_log_args(p)
    p.set_defaults(func=_cmd_work)

    p = sub.add_parser(
        "launch",
        help="coordinator: rendezvous + work queue + results assembly",
    )
    add_study_args(p)
    p.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--local-workers", type=int, default=0,
                   help="loopback mode: fork ranks + N workers on this host")
    p.add_argument("--checkpoint-dir", default=None)
    p.add_argument("--address-file", default=None, metavar="PATH",
                   help="write the bound coordinator address here so "
                        "serve/work can use --coordinator @PATH (enables "
                        "--bind HOST:0)")
    p.add_argument("--respawn-serve", action="store_true",
                   help="supervise server ranks: kill and respawn a dead "
                        "or silent 'repro serve' on this host from its "
                        "checkpoint (Sec. 4.2.3)")
    p.add_argument("--respawn-data-host", default=None, metavar="HOST",
                   help="interface a respawned serve binds its data "
                        "listener on (default: the --bind host, so remote "
                        "workers can still reach it)")
    p.add_argument("--schedule", default=None, metavar="SPEC",
                   help="full scheduling spec, ';'-separated clauses "
                        "(e.g. 'speculate:multiple=2.5;steal;elastic:high=6')")
    p.add_argument("--speculate", nargs="?", const="", default=None,
                   metavar="PARAMS",
                   help="speculatively re-run straggler groups (optional "
                        "clause params, e.g. 'multiple=2.5,min_done=2'); "
                        "first completion wins, duplicates discard exactly")
    p.add_argument("--steal", nargs="?", const="", default=None,
                   metavar="PARAMS",
                   help="work stealing: hold demonstrably slow workers "
                        "back from the queue tail (optional 'ratio=R')")
    p.add_argument("--elastic", nargs="?", const="", default=None,
                   metavar="PARAMS",
                   help="elastic pool resize: spawn extra workers while "
                        "queue depth exceeds the high-water mark, retire "
                        "them below the low-water mark (optional params, "
                        "e.g. 'high=6,low=1,max=4,budget=8')")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON timeline of the "
                        "study here (open in Perfetto / chrome://tracing)")
    p.add_argument("--metrics-file", default=None, metavar="FILE",
                   help="append live dashboard frames (JSONL) here; "
                        "`repro top FILE` tails it")
    p.add_argument("--metrics-interval", type=float, default=1.0,
                   help="seconds between --metrics-file frames (default 1.0)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics (Prometheus text) and /metrics.json "
                        "on this port (0 = ephemeral, printed at startup)")
    add_log_args(p)
    p.set_defaults(func=_cmd_launch)

    p = sub.add_parser(
        "top", help="live study dashboard from a metrics endpoint or file"
    )
    p.add_argument("source",
                   help="HOST:PORT or http://... of a --metrics-port "
                        "endpoint, or the path of a --metrics-file JSONL")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen control)")
    p.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
