"""Dynamic connection handshake and N x M redistribution planning.

Reproduces Sec. 4.1.3: when a simulation group starts, its main-simulation
rank 0 contacts the server's rank 0, retrieves the server-side data
partition, shares it with the other main-simulation ranks, and each of
them opens direct channels to exactly the server ranks whose cell ranges
intersect its own.  The :class:`Router` is the in-process stand-in for
"the network": it owns one :class:`BoundedChannel` per (client-rank,
server-rank) pair, created lazily at connect time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mesh.partition import BlockPartition
from repro.transport.channel import BoundedChannel
from repro.transport.message import (
    ConnectionReply,
    ConnectionRequest,
    FieldMessage,
    split_by_partition,
)


@dataclass(frozen=True)
class Endpoint:
    """Address of one server rank's inbound queue."""

    server_rank: int


def redistribution_plan(
    client_partition: BlockPartition, server_partition: BlockPartition
) -> List[List[Tuple[int, int, int]]]:
    """Per-client-rank list of (server_rank, cell_lo, cell_hi) to forward.

    Thin veneer over :meth:`BlockPartition.intersections` kept as a named
    concept because it *is* the paper's static N x M pattern.
    """
    return client_partition.intersections(server_partition)


class Router:
    """Network fabric: connection handshake + per-pair bounded channels.

    This is the in-memory :class:`~repro.transport.base.TransportClient`;
    ``repro.runtime.process._QueueRouter`` (multiprocessing queues) and
    :class:`repro.net.worker.SocketRouter` (TCP) implement the same
    protocol, so :class:`~repro.core.group.GroupExecutor` is agnostic to
    which fabric carries its messages.

    Parameters
    ----------
    server_partition:
        Server-side data partition (fixed at server start).
    channel_capacity_bytes:
        ZeroMQ-style combined buffer budget per channel (None = unbounded).
    """

    def __init__(
        self,
        server_partition: BlockPartition,
        channel_capacity_bytes: Optional[int] = None,
    ):
        self.server_partition = server_partition
        self.channel_capacity_bytes = channel_capacity_bytes
        # inbound data channels, keyed by server rank: every connected
        # client pushes into the owning rank's single queue (ZeroMQ PULL).
        self.inbound: Dict[int, BoundedChannel] = {
            rank: BoundedChannel(
                capacity_bytes=channel_capacity_bytes,
                name=f"server-rank-{rank}",
            )
            for rank in range(server_partition.nranks)
        }
        self.connections: Dict[int, ConnectionReply] = {}

    # ------------------------------------------------------------------ #
    def connect(self, request: ConnectionRequest) -> ConnectionReply:
        """Handshake: group announces itself, learns the server partition."""
        if request.ncells != self.server_partition.ncells:
            raise ValueError(
                f"group {request.group_id} has {request.ncells} cells, "
                f"server partitions {self.server_partition.ncells}"
            )
        reply = ConnectionReply(
            nranks_server=self.server_partition.nranks,
            offsets=tuple(int(o) for o in self.server_partition.offsets),
        )
        self.connections[request.group_id] = reply
        return reply

    def is_connected(self, group_id: int) -> bool:
        return group_id in self.connections

    def disconnect(self, group_id: int) -> None:
        self.connections.pop(group_id, None)

    # ------------------------------------------------------------------ #
    def route_field(
        self,
        group_id: int,
        member: int,
        timestep: int,
        field_values: np.ndarray,
        client_partition: BlockPartition,
        blocking: bool = False,
        timeout: Optional[float] = None,
    ) -> List[FieldMessage]:
        """Split a gathered field along the server partition and enqueue.

        Returns the messages that could *not* be delivered (non-blocking
        mode with full buffers); blocking mode waits and returns [].
        The caller (the group's main simulation) retries undelivered
        messages — that retry loop is the "suspended simulation".
        """
        if not self.is_connected(group_id):
            raise RuntimeError(f"group {group_id} is not connected")
        field_values = np.asarray(field_values, dtype=np.float64).ravel()
        if field_values.size != self.server_partition.ncells:
            raise ValueError("field size does not match the study mesh")
        undelivered: List[FieldMessage] = []
        for entries in redistribution_plan(client_partition, self.server_partition):
            for server_rank, lo, hi in entries:
                msg = FieldMessage(
                    group_id=group_id,
                    member=member,
                    timestep=timestep,
                    cell_lo=lo,
                    cell_hi=hi,
                    data=field_values[lo:hi],
                )
                channel = self.inbound[server_rank]
                if blocking:
                    channel.send(msg, timeout=timeout)
                elif not channel.try_send(msg):
                    undelivered.append(msg)
        return undelivered

    def deliver(self, msg: FieldMessage, blocking: bool = False) -> bool:
        """Enqueue one pre-built message to its owning server rank(s).

        A message whose ``[cell_lo, cell_hi)`` straddles a server-partition
        boundary is split along the partition fenceposts and each chunk is
        delivered to its owning rank (previously such messages were routed
        whole by ``cell_lo`` and died deep inside the receiving rank).

        Non-blocking split delivery is all-or-nothing: capacities are
        probed first and nothing is enqueued unless every chunk fits, so
        the caller's whole-message retry cannot re-send chunks that
        already landed.  (Under concurrent senders the probe is racy; a
        lost race can still deliver a duplicate chunk, which replay
        protection discards — only a ``discard_on_replay=False`` study
        with concurrent straddling senders could double-count.)
        """
        chunks = split_by_partition(msg, self.server_partition)
        if blocking:
            for server_rank, chunk in chunks:
                self.inbound[server_rank].send(chunk)
            return True
        if len(chunks) > 1 and not all(
            self.inbound[rank].can_accept(chunk.nbytes) for rank, chunk in chunks
        ):
            return False
        for server_rank, chunk in chunks:
            if not self.inbound[server_rank].try_send(chunk):
                return False
        return True

    # ------------------------------------------------------------------ #
    def total_stats(self) -> Dict[str, int]:
        """Aggregate channel counters over all server ranks."""
        agg = {
            "messages_sent": 0,
            "bytes_sent": 0,
            "messages_received": 0,
            "bytes_received": 0,
            "send_blocks": 0,
            "high_water_bytes": 0,
        }
        for ch in self.inbound.values():
            agg["messages_sent"] += ch.stats.messages_sent
            agg["bytes_sent"] += ch.stats.bytes_sent
            agg["messages_received"] += ch.stats.messages_received
            agg["bytes_received"] += ch.stats.bytes_received
            agg["send_blocks"] += ch.stats.send_blocks
            agg["high_water_bytes"] = max(
                agg["high_water_bytes"], ch.stats.high_water_bytes
            )
        return agg

    def close(self) -> None:
        for ch in self.inbound.values():
            ch.close()
