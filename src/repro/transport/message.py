"""Wire messages exchanged between simulation groups and the server.

Every message knows how to serialize itself to bytes and back.  The data
plane passes NumPy payloads by reference for speed, but ``to_bytes`` is
exercised by tests and by the channel byte-accounting so the sizes that
drive back-pressure are the real wire sizes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

_FIELD_HEADER = struct.Struct("<4sqqqqqq")  # magic, group, member, step, lo, hi, nbytes
_FIELD_MAGIC = b"FLDM"


@dataclass(frozen=True)
class FieldMessage:
    """One member's field slice for one timestep, addressed by cell range.

    Attributes
    ----------
    group_id:
        Simulation-group index (the pick-freeze row).
    member:
        0 = A, 1 = B, 2+k = C^k (see :mod:`repro.sampling.pickfreeze`).
    timestep:
        Output timestep index, strictly increasing per (group, member).
    cell_lo, cell_hi:
        Global half-open cell range covered by ``data``.
    data:
        float64 field values, ``len == cell_hi - cell_lo``.
    """

    group_id: int
    member: int
    timestep: int
    cell_lo: int
    cell_hi: int
    data: np.ndarray

    def __post_init__(self):
        data = np.ascontiguousarray(self.data, dtype=np.float64)
        object.__setattr__(self, "data", data)
        if data.ndim != 1:
            raise ValueError("FieldMessage data must be 1-D")
        if data.size != self.cell_hi - self.cell_lo:
            raise ValueError(
                f"data length {data.size} != cell range "
                f"[{self.cell_lo}, {self.cell_hi})"
            )
        if self.timestep < 0 or self.group_id < 0 or self.member < 0:
            raise ValueError("ids and timestep must be non-negative")

    @property
    def nbytes(self) -> int:
        """Wire size: header + payload (drives buffer accounting)."""
        return _FIELD_HEADER.size + self.data.nbytes

    def to_bytes(self) -> bytes:
        return (
            _FIELD_HEADER.pack(
                _FIELD_MAGIC,
                self.group_id,
                self.member,
                self.timestep,
                self.cell_lo,
                self.cell_hi,
                self.data.nbytes,
            )
            + self.data.tobytes()
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "FieldMessage":
        magic, group, member, step, lo, hi, nbytes = _FIELD_HEADER.unpack_from(raw)
        if magic != _FIELD_MAGIC:
            raise ValueError("not a FieldMessage frame")
        data = np.frombuffer(
            raw, dtype=np.float64, count=nbytes // 8, offset=_FIELD_HEADER.size
        ).copy()
        return cls(group, member, step, lo, hi, data)

    def slice(self, lo: int, hi: int) -> "FieldMessage":
        """Sub-message covering ``[lo, hi)`` of this message's cell range."""
        if not self.cell_lo <= lo < hi <= self.cell_hi:
            raise ValueError(
                f"slice [{lo}, {hi}) outside message range "
                f"[{self.cell_lo}, {self.cell_hi})"
            )
        return FieldMessage(
            group_id=self.group_id,
            member=self.member,
            timestep=self.timestep,
            cell_lo=lo,
            cell_hi=hi,
            data=self.data[lo - self.cell_lo : hi - self.cell_lo],
        )


_GROUP_HEADER = struct.Struct("<4sqqqqqq")  # magic, group, step, lo, hi, nmembers, nbytes
_GROUP_MAGIC = b"GRPM"


@dataclass(frozen=True)
class GroupFieldMessage:
    """All p+2 members' field slices for one (group, timestep, cell range).

    This is what the *two-stage* transfer produces (Sec. 4.1.2): the main
    simulation's rank i gathers the slice of every member, then sends one
    aggregate message per intersecting server rank — cutting the message
    count by a factor of p+2 versus each member pushing its own slice.
    The ablation benchmark compares both shapes.
    """

    group_id: int
    timestep: int
    cell_lo: int
    cell_hi: int
    data: np.ndarray  # (nmembers, cell_hi - cell_lo)

    def __post_init__(self):
        data = np.ascontiguousarray(self.data, dtype=np.float64)
        object.__setattr__(self, "data", data)
        if data.ndim != 2:
            raise ValueError("GroupFieldMessage data must be 2-D (members, cells)")
        if data.shape[1] != self.cell_hi - self.cell_lo:
            raise ValueError("data width does not match the cell range")
        if self.timestep < 0 or self.group_id < 0:
            raise ValueError("ids and timestep must be non-negative")

    @property
    def nmembers(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        return _GROUP_HEADER.size + self.data.nbytes

    def to_bytes(self) -> bytes:
        return (
            _GROUP_HEADER.pack(
                _GROUP_MAGIC,
                self.group_id,
                self.timestep,
                self.cell_lo,
                self.cell_hi,
                self.data.shape[0],
                self.data.nbytes,
            )
            + self.data.tobytes()
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GroupFieldMessage":
        magic, group, step, lo, hi, nmembers, nbytes = _GROUP_HEADER.unpack_from(raw)
        if magic != _GROUP_MAGIC:
            raise ValueError("not a GroupFieldMessage frame")
        data = np.frombuffer(
            raw, dtype=np.float64, count=nbytes // 8, offset=_GROUP_HEADER.size
        ).reshape(nmembers, hi - lo).copy()
        return cls(group, step, lo, hi, data)

    def slice(self, lo: int, hi: int) -> "GroupFieldMessage":
        """Sub-message covering ``[lo, hi)`` of this message's cell range."""
        if not self.cell_lo <= lo < hi <= self.cell_hi:
            raise ValueError(
                f"slice [{lo}, {hi}) outside message range "
                f"[{self.cell_lo}, {self.cell_hi})"
            )
        return GroupFieldMessage(
            group_id=self.group_id,
            timestep=self.timestep,
            cell_lo=lo,
            cell_hi=hi,
            data=self.data[:, lo - self.cell_lo : hi - self.cell_lo],
        )


def split_by_partition(msg, partition):
    """Chunks of ``msg`` along ``partition`` rank boundaries.

    Returns ``[(rank, chunk_message), ...]``; a message contained in one
    rank yields itself unsliced.  This is the single splitting rule every
    transport (router, server front-door, process-runtime queues) shares,
    so boundary behaviour cannot diverge between them.
    """
    spans = partition.spans(msg.cell_lo, msg.cell_hi)
    if len(spans) == 1:
        return [(spans[0][0], msg)]
    return [(rank, msg.slice(lo, hi)) for rank, lo, hi in spans]


@dataclass(frozen=True)
class ConnectionRequest:
    """Group -> server rank 0: announce and ask for the data partition."""

    group_id: int
    ncells: int
    nranks_client: int


@dataclass(frozen=True)
class ConnectionReply:
    """Server rank 0 -> group: server partition fenceposts and addresses."""

    nranks_server: int
    offsets: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "offsets", tuple(int(o) for o in self.offsets))
        if len(self.offsets) != self.nranks_server + 1:
            raise ValueError("offsets must have nranks_server + 1 fenceposts")


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon (server -> launcher and group -> server).

    ``metrics`` optionally piggybacks a compact telemetry payload
    (snapshot delta + trace spans, see :mod:`repro.telemetry`) on the
    beacon.  Version tolerance lives in the framing layer: a heartbeat
    with ``metrics=None`` encodes byte-identically to the historical
    format, and senders only attach metrics after the coordinator
    advertises support in its registration ack — so old and new peers
    interoperate in both directions (asserted by the mixed-version
    framing tests).
    """

    sender: str
    time: float
    metrics: Optional[dict] = None
