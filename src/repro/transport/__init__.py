"""ZeroMQ-like transport substrate: framed messages over bounded channels.

The paper uses ZeroMQ push sockets between each simulation group's main
simulation and the Melissa Server ranks (Sec. 4.1.3).  The properties the
framework actually depends on — and which this package reproduces — are:

* **framed messages** with (group, member, timestep, cell-range) headers;
* **bounded buffers on both sides**: messages queue asynchronously until
  client and server buffers are both full, at which point *sends block*,
  suspending the simulation (the Fig. 6a/b saturation mechanism);
* **dynamic connection**: a starting group contacts server rank 0, learns
  the server-side data partition, then opens direct channels to exactly
  the server ranks its cell ranges intersect (the N x M pattern);
* **per-channel accounting**: message/byte counters and high-water marks
  feed the performance model's calibration.
"""

from repro.transport.message import (
    ConnectionReply,
    ConnectionRequest,
    FieldMessage,
    GroupFieldMessage,
    Heartbeat,
)
from repro.transport.base import Channel, TransportClient
from repro.transport.channel import BoundedChannel, ChannelClosed, ChannelStats
from repro.transport.router import Endpoint, Router, redistribution_plan

__all__ = [
    "FieldMessage",
    "GroupFieldMessage",
    "ConnectionRequest",
    "ConnectionReply",
    "Heartbeat",
    "Channel",
    "TransportClient",
    "BoundedChannel",
    "ChannelClosed",
    "ChannelStats",
    "Endpoint",
    "Router",
    "redistribution_plan",
]
