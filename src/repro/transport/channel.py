"""Byte-bounded buffered channels with ZeroMQ-like blocking semantics.

ZeroMQ buffers messages on the sender and the receiver and only blocks
the sending application when *both* high-water marks are hit (paper
Sec. 4.1.3: "Communications only become blocking when both buffers are
full").  :class:`BoundedChannel` models the pair of buffers as a single
capacity equal to their sum — equivalent for the back-pressure behaviour
the study depends on — and exposes:

* ``try_send``   — non-blocking; returns False when the channel is full
  (used by the deterministic sequential runtime and the perf model);
* ``send``       — blocking with timeout (used by the threaded runtime;
  the wait time is recorded as *suspension* time, Fig. 6b's mechanism);
* ``recv`` / ``try_recv`` — consumer side;
* high-water-mark and throughput statistics.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional, Tuple


class ChannelClosed(RuntimeError):
    """Raised when sending to or receiving from a closed, drained channel."""


@dataclass
class ChannelStats:
    """Cumulative channel accounting (feeds the perf-model calibration)."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    high_water_bytes: int = 0
    send_blocks: int = 0
    blocked_seconds: float = 0.0


def _default_size(obj: Any) -> int:
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is None:
        return 64  # control messages: small fixed cost
    return int(nbytes)


class BoundedChannel:
    """FIFO of messages bounded by total payload bytes.

    Parameters
    ----------
    capacity_bytes:
        Combined client+server buffer budget.  ``None`` means unbounded
        (useful for control channels that must never block).
    sizer:
        Maps a message to its accounted size; defaults to ``.nbytes``.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        sizer: Callable[[Any], int] = _default_size,
        name: str = "",
    ):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive or None")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._sizer = sizer
        self._queue: Deque[Tuple[Any, int]] = deque()
        self._bytes = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self.stats = ChannelStats()

    # ------------------------------------------------------------------ #
    @property
    def pending_messages(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _fits(self, size: int) -> bool:
        if self.capacity_bytes is None:
            return True
        # an oversized message is admitted into an empty channel so it can
        # ever be delivered; otherwise it would deadlock forever
        return self._bytes + size <= self.capacity_bytes or not self._queue

    def can_accept(self, nbytes: int) -> bool:
        """Non-mutating capacity probe (racy under concurrent senders)."""
        with self._lock:
            return not self._closed and self._fits(int(nbytes))

    def _enqueue(self, msg: Any, size: int) -> None:
        self._queue.append((msg, size))
        self._bytes += size
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self._bytes > self.stats.high_water_bytes:
            self.stats.high_water_bytes = self._bytes
        self._not_empty.notify()

    # ------------------------------------------------------------------ #
    def try_send(self, msg: Any) -> bool:
        """Enqueue if buffer space remains; False means "would block"."""
        size = self._sizer(msg)
        with self._lock:
            if self._closed:
                raise ChannelClosed(f"channel {self.name or id(self)} is closed")
            if not self._fits(size):
                self.stats.send_blocks += 1
                return False
            self._enqueue(msg, size)
            return True

    def send(self, msg: Any, timeout: Optional[float] = None) -> None:
        """Blocking send: waits for space (ZeroMQ full-buffers behaviour)."""
        size = self._sizer(msg)
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._not_full:
            if self._closed:
                raise ChannelClosed(f"channel {self.name or id(self)} is closed")
            if not self._fits(size):
                self.stats.send_blocks += 1
                start = _time.monotonic()
                while not self._fits(size):
                    if self._closed:
                        raise ChannelClosed("channel closed while blocked on send")
                    remaining = None if deadline is None else deadline - _time.monotonic()
                    if remaining is not None and remaining <= 0:
                        self.stats.blocked_seconds += _time.monotonic() - start
                        raise TimeoutError(
                            f"send on {self.name or id(self)} timed out"
                        )
                    self._not_full.wait(timeout=remaining)
                self.stats.blocked_seconds += _time.monotonic() - start
            self._enqueue(msg, size)

    def send_many(self, msgs: list, timeout: Optional[float] = None) -> None:
        """Blocking send of a batch under one lock acquisition.

        Semantically identical to calling :meth:`send` per message (each
        waits for its own space, stats count each message), but the
        receiving side's event loop amortizes the lock/notify round trip
        across the batch — the hot path for shared-memory ring drains.

        Messages are consumed from the front of ``msgs`` as each lands,
        so a caller catching TimeoutError can retry with what remains
        without double-sending.
        """
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._not_full:
            while msgs:
                msg = msgs[0]
                size = self._sizer(msg)
                if self._closed:
                    raise ChannelClosed(
                        f"channel {self.name or id(self)} is closed"
                    )
                if not self._fits(size):
                    self.stats.send_blocks += 1
                    start = _time.monotonic()
                    while not self._fits(size):
                        if self._closed:
                            raise ChannelClosed(
                                "channel closed while blocked on send"
                            )
                        remaining = (
                            None if deadline is None
                            else deadline - _time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            self.stats.blocked_seconds += (
                                _time.monotonic() - start
                            )
                            raise TimeoutError(
                                f"send on {self.name or id(self)} timed out"
                            )
                        self._not_full.wait(timeout=remaining)
                    self.stats.blocked_seconds += _time.monotonic() - start
                self._enqueue(msg, size)
                msgs.pop(0)

    # ------------------------------------------------------------------ #
    def try_recv(self) -> Optional[Any]:
        """Dequeue one message or None if empty (raises when closed+drained)."""
        with self._lock:
            if not self._queue:
                if self._closed:
                    raise ChannelClosed("channel closed and drained")
                return None
            return self._pop()

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Blocking receive."""
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._not_empty:
            while not self._queue:
                if self._closed:
                    raise ChannelClosed("channel closed and drained")
                remaining = None if deadline is None else deadline - _time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("recv timed out")
                self._not_empty.wait(timeout=remaining)
            return self._pop()

    def _pop(self) -> Any:
        msg, size = self._queue.popleft()
        self._bytes -= size
        self.stats.messages_received += 1
        self.stats.bytes_received += size
        self._not_full.notify()
        return msg

    def drain(self) -> list:
        """Dequeue everything currently buffered (server poll loop)."""
        out = []
        with self._lock:
            while self._queue:
                out.append(self._pop())
        return out

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Mark closed; blocked senders/receivers wake with ChannelClosed."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BoundedChannel(name={self.name!r}, pending={len(self._queue)}, "
            f"bytes={self._bytes}/{self.capacity_bytes})"
        )
