"""Transport-agnostic protocols shared by every channel/router flavour.

Three transports implement the paper's connection pattern today:

* :class:`repro.transport.router.Router` — in-memory bounded channels
  (sequential and threaded runtimes);
* ``repro.runtime.process._QueueRouter`` — multiprocessing queues
  (process runtime, one host);
* :class:`repro.net.worker.SocketRouter` — length-prefixed TCP frames
  (distributed runtime, many hosts).

:class:`GroupExecutor` only ever talks to the :class:`TransportClient`
surface below, so the group logic cannot grow a dependency on any one
fabric; the protocols are ``runtime_checkable`` and the transport tests
assert conformance for all three.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.transport.message import ConnectionReply, ConnectionRequest


@runtime_checkable
class Channel(Protocol):
    """The send surface of one bounded FIFO with ZeroMQ-like dual-buffer
    blocking semantics — what routers and group executors program
    against.

    ``try_send`` must return False (not raise) when the channel is full,
    and implementations must account traffic in a
    :class:`~repro.transport.channel.ChannelStats` exposed as ``stats``
    — the Fig. 6a/b suspension analysis is built on those counters.
    :class:`~repro.transport.channel.BoundedChannel` additionally offers
    the receive side; for :class:`~repro.net.channel.SocketChannel` the
    receive side lives in the remote rank's inbox.
    """

    def try_send(self, msg: Any) -> bool: ...

    def send(self, msg: Any, timeout: Optional[float] = None) -> None: ...

    def can_accept(self, nbytes: int) -> bool: ...

    def close(self) -> None: ...


@runtime_checkable
class TransportClient(Protocol):
    """What a :class:`~repro.core.group.GroupExecutor` needs from "the
    network": the dynamic connection handshake of Sec. 4.1.3 plus
    back-pressured delivery along the server partition.
    """

    @property
    def server_partition(self):  # -> BlockPartition
        ...

    def connect(self, request: ConnectionRequest) -> ConnectionReply: ...

    def is_connected(self, group_id: int) -> bool: ...

    def disconnect(self, group_id: int) -> None: ...

    def deliver(self, msg: Any, blocking: bool = False) -> bool:
        """Deliver one message (splitting along the server partition);
        False means "would block" and the caller must retry the whole
        message later — implementations must make non-blocking split
        delivery all-or-nothing (or rely on replay protection)."""
        ...
