"""Pick-freeze experiment design (paper Sec. 3.2).

Draw two independent ``n x p`` input matrices A and B, then for each input
``k`` build ``C^k`` = A with column k replaced by B's column k.  Row i of
every matrix together defines simulation group i: the p+2 runs
``f(A_i), f(B_i), f(C^1_i), ..., f(C^p_i)`` whose outputs update all p
first-order and total Sobol' indices at once.

The design object is the single source of truth for "which parameters does
simulation (group, member) run with" — launcher, clients, and reference
(non-iterative) estimators all read from it.  It supports *row
regeneration*: drawing fresh independent rows either to extend a study
whose confidence intervals have not converged, or to replace a failing
group when discard-on-replay is disabled (Sec. 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.sampling.distributions import Distribution

#: Symbolic member indices within a group: member 0 runs A_i, member 1 runs
#: B_i, member 2+k runs C^k_i.
MEMBER_A = 0
MEMBER_B = 1


def member_name(member: int, nparams: int) -> str:
    """Human-readable label of a group member ('A', 'B', 'C1'..'Cp')."""
    if member == MEMBER_A:
        return "A"
    if member == MEMBER_B:
        return "B"
    k = member - 2
    if 0 <= k < nparams:
        return f"C{k + 1}"
    raise ValueError(f"invalid member index {member} for {nparams} parameters")


@dataclass
class ParameterSpace:
    """Named, distribution-typed study inputs."""

    names: Tuple[str, ...]
    distributions: Tuple[Distribution, ...]

    def __post_init__(self):
        self.names = tuple(self.names)
        self.distributions = tuple(self.distributions)
        if len(self.names) != len(self.distributions):
            raise ValueError("names and distributions must have equal length")
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate parameter names")
        if not self.names:
            raise ValueError("parameter space must not be empty")

    @property
    def nparams(self) -> int:
        return len(self.names)

    def sample_matrix(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw an ``n x p`` matrix of independent parameter sets."""
        cols = [d.sample(rng, n) for d in self.distributions]
        return np.column_stack(cols)

    def lhs_matrix(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Latin-hypercube-stratified ``n x p`` matrix (variance reduction)."""
        u = latin_hypercube(rng, n, self.nparams)
        cols = [d.ppf(u[:, j]) for j, d in enumerate(self.distributions)]
        return np.column_stack(cols)


def latin_hypercube(rng: np.random.Generator, n: int, p: int) -> np.ndarray:
    """Stratified uniform design: one point per row-stratum per column."""
    if n <= 0 or p <= 0:
        raise ValueError("latin_hypercube requires n > 0 and p > 0")
    u = np.empty((n, p))
    for j in range(p):
        perm = rng.permutation(n)
        u[:, j] = (perm + rng.random(n)) / n
    return u


@dataclass
class PickFreezeDesign:
    """Materialized A/B matrices plus lazy C^k views and row regeneration.

    Attributes
    ----------
    space:
        The study's parameter space (defines p and the laws).
    a, b:
        Independent ``n x p`` sample matrices.  Rows may be appended by
        :meth:`extend` — statistically valid because all row couples are
        independent (paper Sec. 3.2, final remark).
    """

    space: ParameterSpace
    a: np.ndarray
    b: np.ndarray
    seed: int = 0

    def __post_init__(self):
        self.a = np.asarray(self.a, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64)
        if self.a.shape != self.b.shape:
            raise ValueError("A and B must have identical shapes")
        if self.a.ndim != 2 or self.a.shape[1] != self.space.nparams:
            raise ValueError("design matrices must be (n, p) with p = nparams")

    # ------------------------------------------------------------------ #
    @property
    def ngroups(self) -> int:
        return self.a.shape[0]

    @property
    def nparams(self) -> int:
        return self.space.nparams

    @property
    def nsimulations(self) -> int:
        """Total runs in the study: n * (p + 2)."""
        return self.ngroups * (self.nparams + 2)

    @property
    def group_size(self) -> int:
        return self.nparams + 2

    def c_matrix(self, k: int) -> np.ndarray:
        """C^k = A with column k (0-based) swapped in from B."""
        if not 0 <= k < self.nparams:
            raise ValueError(f"k must be in [0, {self.nparams}), got {k}")
        c = self.a.copy()
        c[:, k] = self.b[:, k]
        return c

    def member_parameters(self, group: int, member: int) -> np.ndarray:
        """Parameter vector run by ``member`` of simulation group ``group``."""
        if not 0 <= group < self.ngroups:
            raise ValueError(f"group {group} out of range [0, {self.ngroups})")
        if member == MEMBER_A:
            return self.a[group].copy()
        if member == MEMBER_B:
            return self.b[group].copy()
        k = member - 2
        if not 0 <= k < self.nparams:
            raise ValueError(f"invalid member {member}")
        row = self.a[group].copy()
        row[k] = self.b[group, k]
        return row

    def group_parameters(self, group: int) -> np.ndarray:
        """All p+2 parameter vectors of a group, shape (p+2, p)."""
        return np.vstack(
            [self.member_parameters(group, m) for m in range(self.group_size)]
        )

    # ------------------------------------------------------------------ #
    def extend(self, rng: np.random.Generator, extra_groups: int) -> None:
        """Append fresh independent rows (convergence-driven study growth)."""
        if extra_groups <= 0:
            raise ValueError("extra_groups must be positive")
        self.a = np.vstack([self.a, self.space.sample_matrix(rng, extra_groups)])
        self.b = np.vstack([self.b, self.space.sample_matrix(rng, extra_groups)])

    def regenerate_row(self, rng: np.random.Generator, group: int) -> None:
        """Replace group ``group``'s rows with a fresh independent couple.

        Used when a group fails permanently and discard-on-replay is
        disabled: statistically valid because row couples are i.i.d.
        """
        self.a[group] = self.space.sample_matrix(rng, 1)[0]
        self.b[group] = self.space.sample_matrix(rng, 1)[0]

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {"a": self.a, "b": self.b, "seed": self.seed}


def draw_design(
    space: ParameterSpace,
    ngroups: int,
    seed: int = 0,
    method: str = "random",
) -> PickFreezeDesign:
    """Draw a pick-freeze design of ``ngroups`` rows.

    Parameters
    ----------
    method:
        ``"random"`` — i.i.d. Monte-Carlo rows (the paper's choice; required
        for the Fisher-z confidence intervals to be valid).
        ``"lhs"`` — Latin hypercube stratification of each matrix
        independently (variance-reduction extension).
    """
    if ngroups <= 0:
        raise ValueError("ngroups must be positive")
    rng = np.random.default_rng(seed)
    if method == "random":
        a = space.sample_matrix(rng, ngroups)
        b = space.sample_matrix(rng, ngroups)
    elif method == "lhs":
        a = space.lhs_matrix(rng, ngroups)
        b = space.lhs_matrix(rng, ngroups)
    else:
        raise ValueError(f"unknown design method {method!r}")
    return PickFreezeDesign(space=space, a=a, b=b, seed=seed)
