"""Per-parameter probability laws for the study inputs.

Each distribution can draw i.i.d. samples from a caller-supplied
``numpy.random.Generator`` (so the launcher controls reproducibility) and
map uniform-[0,1) quantiles through its inverse CDF (used by the Latin
hypercube option).  Laws are deliberately small, immutable value objects:
the launcher serializes them into the study configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class Distribution:
    """Abstract 1-D parameter law."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` i.i.d. values."""
        return self.ppf(rng.random(size))

    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Inverse CDF; maps u ~ U[0,1) to the law."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Uniform(Distribution):
    """Continuous uniform on [low, high]."""

    low: float
    high: float

    def __post_init__(self):
        if not self.high > self.low:
            raise ValueError("Uniform requires high > low")

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self.low + (self.high - self.low) * np.asarray(q)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian with given mean and standard deviation."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self):
        if self.sigma <= 0:
            raise ValueError("Normal requires sigma > 0")

    def ppf(self, q: np.ndarray) -> np.ndarray:
        from scipy.special import ndtri

        return self.mu + self.sigma * ndtri(np.asarray(q))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma**2


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Gaussian truncated to [low, high] (inverse-CDF sampling)."""

    mu: float
    sigma: float
    low: float
    high: float

    def __post_init__(self):
        if self.sigma <= 0 or not self.high > self.low:
            raise ValueError("TruncatedNormal requires sigma > 0 and high > low")

    def _bounds(self):
        from scipy.special import ndtr

        a = ndtr((self.low - self.mu) / self.sigma)
        b = ndtr((self.high - self.mu) / self.sigma)
        return a, b

    def ppf(self, q: np.ndarray) -> np.ndarray:
        from scipy.special import ndtri

        a, b = self._bounds()
        return self.mu + self.sigma * ndtri(a + (b - a) * np.asarray(q))

    @property
    def mean(self) -> float:
        from scipy.stats import truncnorm

        a = (self.low - self.mu) / self.sigma
        b = (self.high - self.mu) / self.sigma
        return float(truncnorm.mean(a, b, loc=self.mu, scale=self.sigma))

    @property
    def variance(self) -> float:
        from scipy.stats import truncnorm

        a = (self.low - self.mu) / self.sigma
        b = (self.high - self.mu) / self.sigma
        return float(truncnorm.var(a, b, loc=self.mu, scale=self.sigma))


@dataclass(frozen=True)
class LogUniform(Distribution):
    """log10-uniform between two positive bounds (scale parameters)."""

    low: float
    high: float

    def __post_init__(self):
        if not (0 < self.low < self.high):
            raise ValueError("LogUniform requires 0 < low < high")

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self.low * np.power(self.high / self.low, np.asarray(q))

    @property
    def mean(self) -> float:
        ln_ratio = math.log(self.high / self.low)
        return (self.high - self.low) / ln_ratio

    @property
    def variance(self) -> float:
        ln_ratio = math.log(self.high / self.low)
        ex2 = (self.high**2 - self.low**2) / (2.0 * ln_ratio)
        return ex2 - self.mean**2


@dataclass(frozen=True)
class Triangular(Distribution):
    """Triangular law on [low, high] with mode ``mode``."""

    low: float
    mode: float
    high: float

    def __post_init__(self):
        if not (self.low <= self.mode <= self.high and self.high > self.low):
            raise ValueError("Triangular requires low <= mode <= high, high > low")

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q)
        span = self.high - self.low
        fc = (self.mode - self.low) / span
        left = self.low + np.sqrt(q * span * (self.mode - self.low))
        right = self.high - np.sqrt((1.0 - q) * span * (self.high - self.mode))
        return np.where(q < fc, left, right)

    @property
    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    @property
    def variance(self) -> float:
        a, c, b = self.low, self.mode, self.high
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0


@dataclass(frozen=True)
class DiscreteUniform(Distribution):
    """Uniform over the integers {low, ..., high} inclusive."""

    low: int
    high: int

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError("DiscreteUniform requires high >= low")

    def ppf(self, q: np.ndarray) -> np.ndarray:
        k = self.high - self.low + 1
        return self.low + np.minimum((np.asarray(q) * k).astype(np.int64), k - 1)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        k = self.high - self.low + 1
        return (k * k - 1) / 12.0
