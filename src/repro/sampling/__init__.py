"""Input-parameter sampling: distributions and pick-freeze experiment designs.

The paper's launcher draws two independent ``n x p`` matrices A and B from
the per-parameter probabilistic laws, then builds the p pick-freeze
matrices C^k (A with column k swapped in from B).  Row i of (A, B, C^1..C^p)
defines one *simulation group* of p+2 synchronized runs (Sec. 3.2-3.3).
"""

from repro.sampling.distributions import (
    Distribution,
    Uniform,
    Normal,
    TruncatedNormal,
    LogUniform,
    Triangular,
    DiscreteUniform,
)
from repro.sampling.pickfreeze import (
    PickFreezeDesign,
    ParameterSpace,
    draw_design,
    latin_hypercube,
)

__all__ = [
    "Distribution",
    "Uniform",
    "Normal",
    "TruncatedNormal",
    "LogUniform",
    "Triangular",
    "DiscreteUniform",
    "ParameterSpace",
    "PickFreezeDesign",
    "draw_design",
    "latin_hypercube",
]
