"""Plain-text tables for paper-vs-measured comparisons."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a header rule (monospace-friendly)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def statistics_table(results, timestep: int = -1, title: str = "") -> str:
    """Field summary of every catalog statistic in a StudyResults.

    One row per result field: min / mean / max over the field at one
    timestep (default: the last).  Catalog-driven — whatever statistics
    the study configured show up, with no per-statistic code here.
    """
    import numpy as np

    rows: List[List[object]] = []
    for name in results.statistic_names:
        stacked = results.statistics[name]
        t = timestep if timestep >= 0 else stacked.shape[0] + timestep
        field = np.asarray(stacked[t], dtype=np.float64)
        if field.size == 0 or np.all(np.isnan(field)):
            rows.append([name, "-", "-", "-"])
            continue
        rows.append([
            name,
            float(np.nanmin(field)),
            float(np.nanmean(field)),
            float(np.nanmax(field)),
        ])
    return format_table(["statistic", "min", "mean", "max"], rows, title=title)


def comparison_table(
    entries: Sequence[Tuple[str, Number, Number]],
    paper_label: str = "paper",
    measured_label: str = "model",
    title: str = "",
) -> str:
    """(quantity, paper value, measured value) rows with a ratio column."""
    rows: List[List[object]] = []
    for name, paper, measured in entries:
        ratio = measured / paper if paper else float("nan")
        rows.append([name, paper, measured, f"{ratio:.2f}x"])
    return format_table(
        ["quantity", paper_label, measured_label, "ratio"], rows, title=title
    )
