"""ASCII rendering of 2-D fields and 1-D series."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: dark -> bright luminance ramp (blue -> red in the paper's colormap)
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    grid: np.ndarray,
    width: int = 72,
    height: int = 24,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    title: str = "",
) -> str:
    """Render a 2-D array as an ASCII heatmap (x horizontal, y up).

    NaNs render as spaces.  The grid is average-pooled onto the requested
    character raster, so any resolution fits a terminal.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2-D array")
    finite = grid[np.isfinite(grid)]
    lo = vmin if vmin is not None else (finite.min() if finite.size else 0.0)
    hi = vmax if vmax is not None else (finite.max() if finite.size else 1.0)
    span = hi - lo if hi > lo else 1.0

    nx, ny = grid.shape
    width = min(width, nx)
    height = min(height, ny)
    # average-pool with NaN awareness
    x_edges = np.linspace(0, nx, width + 1).astype(int)
    y_edges = np.linspace(0, ny, height + 1).astype(int)
    lines = []
    for jy in reversed(range(height)):  # y axis points up
        row = []
        for jx in range(width):
            block = grid[x_edges[jx]:x_edges[jx + 1], y_edges[jy]:y_edges[jy + 1]]
            vals = block[np.isfinite(block)]
            if vals.size == 0:
                row.append(" ")
                continue
            level = (float(vals.mean()) - lo) / span
            idx = int(np.clip(level, 0.0, 1.0) * (len(_RAMP) - 1))
            row.append(_RAMP[idx])
        lines.append("".join(row))
    header = []
    if title:
        header.append(title)
    header.append(f"range [{lo:.3g}, {hi:.3g}]   ramp '{_RAMP}'")
    return "\n".join(header + lines)


def render_field_slice(
    flat_field: np.ndarray,
    dims: Sequence[int],
    title: str = "",
    **kwargs,
) -> str:
    """Heatmap of a flat cell field given the mesh dims (2-D only)."""
    dims = tuple(dims)
    if len(dims) != 2:
        raise ValueError("render_field_slice handles 2-D grids")
    grid = np.asarray(flat_field).reshape(dims)
    return ascii_heatmap(grid, title=title, **kwargs)


def ascii_series(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 16,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Minimal ASCII line plot of y(x) (used for Fig. 6-style series)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    mask = np.isfinite(x) & np.isfinite(y)
    if not mask.any():
        return f"{title}\n(no finite data)"
    x, y = x[mask], y[mask]
    lo, hi = float(y.min()), float(y.max())
    span = hi - lo if hi > lo else 1.0
    cols = np.clip(
        ((x - x.min()) / (x.max() - x.min() if x.max() > x.min() else 1.0))
        * (width - 1),
        0, width - 1,
    ).astype(int)
    rows = np.clip((y - lo) / span * (height - 1), 0, height - 1).astype(int)
    canvas = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        canvas[height - 1 - r][c] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} max {hi:.4g}")
    lines.extend("".join(row) for row in canvas)
    lines.append(f"{ylabel} min {lo:.4g}   (x: {x.min():.4g} .. {x.max():.4g})")
    return "\n".join(lines)
