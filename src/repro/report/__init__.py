"""Reporting: ASCII field maps, series plots, and experiment tables.

The paper visualizes its ubiquitous Sobol' maps in ParaView (Fig. 7/8);
in this repository the benchmark harness renders the same maps as ASCII
heatmaps and writes the raw arrays to ``.npy`` so any plotting tool can
pick them up.  The table helpers format paper-vs-measured comparisons for
EXPERIMENTS.md.
"""

from repro.report.render import ascii_heatmap, ascii_series, render_field_slice
from repro.report.tables import comparison_table, format_table, statistics_table

__all__ = [
    "ascii_heatmap",
    "ascii_series",
    "render_field_slice",
    "comparison_table",
    "format_table",
    "statistics_table",
]
