"""Analytic benchmark functions with exactly-known Sobol' indices.

Used to validate the estimators end-to-end: draw a pick-freeze design,
evaluate a function with closed-form indices, and check the estimates (and
their confidence intervals) converge to the truth.

* Ishigami: the classic nonlinear, non-monotonic 3-parameter test.
* Sobol' g-function: arbitrary dimension, tunable importance profile.
* Linear function: trivial additive case (indices proportional to a_i^2
  Var(X_i)); also the sharpest numerical-exactness check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.sampling.distributions import Distribution, Normal, Uniform
from repro.sampling.pickfreeze import ParameterSpace


@dataclass(frozen=True)
class IshigamiFunction:
    """f(x) = sin x1 + a sin^2 x2 + b x3^4 sin x1, x_i ~ U(-pi, pi).

    Closed-form decomposition:
        V1  = (1 + b pi^4 / 5)^2 / 2
        V2  = a^2 / 8
        V13 = 8 b^2 pi^8 / 225
        V   = V1 + V2 + V13
    giving S = (V1/V, V2/V, 0) and ST = ((V1+V13)/V, V2/V, V13/V).
    """

    a: float = 7.0
    b: float = 0.1

    @property
    def nparams(self) -> int:
        return 3

    def space(self) -> ParameterSpace:
        return ParameterSpace(
            names=("x1", "x2", "x3"),
            distributions=tuple(Uniform(-math.pi, math.pi) for _ in range(3)),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return (
            np.sin(x[:, 0])
            + self.a * np.sin(x[:, 1]) ** 2
            + self.b * x[:, 2] ** 4 * np.sin(x[:, 0])
        )

    def variance_terms(self) -> Tuple[float, float, float, float]:
        pi4 = math.pi**4
        v1 = 0.5 * (1.0 + self.b * pi4 / 5.0) ** 2
        v2 = self.a**2 / 8.0
        v13 = 8.0 * self.b**2 * math.pi**8 / 225.0
        return v1, v2, v13, v1 + v2 + v13

    @property
    def total_variance(self) -> float:
        return self.variance_terms()[3]

    @property
    def first_order(self) -> np.ndarray:
        v1, v2, _v13, v = self.variance_terms()
        return np.array([v1 / v, v2 / v, 0.0])

    @property
    def total_order(self) -> np.ndarray:
        v1, v2, v13, v = self.variance_terms()
        return np.array([(v1 + v13) / v, v2 / v, v13 / v])


@dataclass(frozen=True)
class GFunction:
    """Sobol' g-function: prod_k (|4 x_k - 2| + a_k) / (1 + a_k), x ~ U(0,1)^p.

    Partial variances ``V_k = 1 / (3 (1 + a_k)^2)``; total variance
    ``V = prod(1 + V_k) - 1``; first-order ``S_k = V_k / V``; total
    ``ST_k = V_k prod_{j != k} (1 + V_j) / V``.
    """

    a: Tuple[float, ...] = (0.0, 1.0, 4.5, 9.0, 99.0, 99.0)

    def __post_init__(self):
        if any(ai < 0 for ai in self.a):
            raise ValueError("g-function coefficients must be >= 0")

    @property
    def nparams(self) -> int:
        return len(self.a)

    def space(self) -> ParameterSpace:
        return ParameterSpace(
            names=tuple(f"x{k + 1}" for k in range(self.nparams)),
            distributions=tuple(Uniform(0.0, 1.0) for _ in range(self.nparams)),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        a = np.asarray(self.a)
        terms = (np.abs(4.0 * x - 2.0) + a) / (1.0 + a)
        return terms.prod(axis=1)

    def _partial_variances(self) -> np.ndarray:
        a = np.asarray(self.a)
        return 1.0 / (3.0 * (1.0 + a) ** 2)

    @property
    def total_variance(self) -> float:
        vk = self._partial_variances()
        return float(np.prod(1.0 + vk) - 1.0)

    @property
    def first_order(self) -> np.ndarray:
        vk = self._partial_variances()
        return vk / self.total_variance

    @property
    def total_order(self) -> np.ndarray:
        vk = self._partial_variances()
        prod_all = np.prod(1.0 + vk)
        return (vk * prod_all / (1.0 + vk)) / self.total_variance


@dataclass(frozen=True)
class LinearFunction:
    """f(x) = c0 + sum_k c_k x_k with independent inputs of given laws.

    Purely additive: S_k = ST_k = c_k^2 Var(X_k) / sum_j c_j^2 Var(X_j).
    """

    coefficients: Tuple[float, ...] = (1.0, 2.0, 3.0)
    intercept: float = 0.0
    laws: Tuple[Distribution, ...] = ()

    def __post_init__(self):
        if not self.coefficients:
            raise ValueError("need at least one coefficient")
        if self.laws and len(self.laws) != len(self.coefficients):
            raise ValueError("laws must match coefficients")
        if not self.laws:
            object.__setattr__(
                self, "laws", tuple(Normal(0.0, 1.0) for _ in self.coefficients)
            )

    @property
    def nparams(self) -> int:
        return len(self.coefficients)

    def space(self) -> ParameterSpace:
        return ParameterSpace(
            names=tuple(f"x{k + 1}" for k in range(self.nparams)),
            distributions=self.laws,
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return self.intercept + x @ np.asarray(self.coefficients)

    @property
    def total_variance(self) -> float:
        return float(
            sum(c * c * d.variance for c, d in zip(self.coefficients, self.laws))
        )

    @property
    def first_order(self) -> np.ndarray:
        contribs = np.array(
            [c * c * d.variance for c, d in zip(self.coefficients, self.laws)]
        )
        return contribs / contribs.sum()

    @property
    def total_order(self) -> np.ndarray:
        return self.first_order
