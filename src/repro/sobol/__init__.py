"""Sobol' index engine: iterative Martinez estimator plus reference paths.

The paper's core numerical contribution (Sec. 3.3): first-order and total
Sobol' indices expressed as Pearson correlations over pick-freeze outputs,

    S_k  =     corr(Y^B, Y^{C^k})        (Eq. 5)
    ST_k = 1 - corr(Y^A, Y^{C^k})        (Eq. 6)

updated one simulation group at a time with one-pass co-moment formulas, so
the server never stores the ensemble.  Fisher-z asymptotic confidence
intervals (Eq. 8-9) come for free from the correlation form.

``reference`` holds classical two-pass estimators (Martinez, Jansen,
Saltelli, Sobol) used to validate the iterative path, and ``analytic``
holds test functions with exactly-known indices (Ishigami, g-function).
"""

from repro.sobol.martinez import IterativeSobolEstimator, UbiquitousSobolField
from repro.sobol.confidence import (
    first_order_confidence_interval,
    total_order_confidence_interval,
)
from repro.sobol.reference import (
    martinez_indices,
    jansen_indices,
    saltelli_indices,
    sobol_indices,
)
from repro.sobol.analytic import IshigamiFunction, GFunction, LinearFunction

__all__ = [
    "IterativeSobolEstimator",
    "UbiquitousSobolField",
    "first_order_confidence_interval",
    "total_order_confidence_interval",
    "martinez_indices",
    "jansen_indices",
    "saltelli_indices",
    "sobol_indices",
    "IshigamiFunction",
    "GFunction",
    "LinearFunction",
]
