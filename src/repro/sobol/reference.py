"""Classical two-pass (non-iterative) Sobol' estimators for validation.

The paper notes there are "many other estimators" relying on the A/B/C^k
matrices ([38] in the text).  We implement the common four so the iterative
Martinez path can be cross-checked:

* Martinez (correlation form) — must match the iterative path *exactly*
  (same algebra, different accumulation order).
* Jansen           — ST_k from mean-square differences, S_k complementary.
* Saltelli (2010 best practice) — S_k from B.(C^k - A) inner products.
* Sobol (original 1993)        — S_k from A.C^k inner products.

All operate on stacked scalar output vectors ``y_a, y_b, y_c`` of shapes
``(n,)``, ``(n,)``, ``(p, n)``; vectorized field variants apply along the
last axis.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _validate(y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray):
    y_a = np.asarray(y_a, dtype=np.float64)
    y_b = np.asarray(y_b, dtype=np.float64)
    y_c = np.asarray(y_c, dtype=np.float64)
    if y_a.shape != y_b.shape:
        raise ValueError("y_a and y_b must have the same shape")
    if y_c.ndim != y_a.ndim + 1 or y_c.shape[1:] != y_a.shape:
        raise ValueError("y_c must have shape (p,) + y_a.shape")
    if y_a.shape[0] < 2:
        raise ValueError("need at least 2 pick-freeze rows")
    return y_a, y_b, y_c


def martinez_indices(
    y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Two-pass Martinez estimator (paper Eq. 5-6).

    Returns ``(S, ST)`` of shape ``(p,) + field_shape``.
    """
    y_a, y_b, y_c = _validate(y_a, y_b, y_c)
    p = y_c.shape[0]
    s = np.empty((p,) + y_a.shape[1:])
    st = np.empty_like(s)
    a_c = y_a - y_a.mean(axis=0)
    b_c = y_b - y_b.mean(axis=0)
    var_a = (a_c**2).sum(axis=0)
    var_b = (b_c**2).sum(axis=0)
    for k in range(p):
        ck = y_c[k] - y_c[k].mean(axis=0)
        var_ck = (ck**2).sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            s[k] = (b_c * ck).sum(axis=0) / np.sqrt(var_b * var_ck)
            st[k] = 1.0 - (a_c * ck).sum(axis=0) / np.sqrt(var_a * var_ck)
    return s, st


def jansen_indices(
    y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Jansen (1999) estimator.

    ``ST_k = E[(Y_A - Y_Ck)^2] / (2 Var)`` and
    ``S_k = 1 - E[(Y_B - Y_Ck)^2] / (2 Var)``.
    """
    y_a, y_b, y_c = _validate(y_a, y_b, y_c)
    n = y_a.shape[0]
    var = np.var(np.concatenate([y_a, y_b], axis=0), axis=0, ddof=1)
    p = y_c.shape[0]
    s = np.empty((p,) + y_a.shape[1:])
    st = np.empty_like(s)
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(p):
            st[k] = ((y_a - y_c[k]) ** 2).sum(axis=0) / (2.0 * (n - 1) * var)
            s[k] = 1.0 - ((y_b - y_c[k]) ** 2).sum(axis=0) / (2.0 * (n - 1) * var)
    return s, st


def saltelli_indices(
    y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Saltelli et al. (2010) recommended estimator.

    ``S_k = mean(Y_B (Y_Ck - Y_A)) / Var`` and
    ``ST_k = mean(Y_A (Y_A - Y_Ck)) / Var``.
    """
    y_a, y_b, y_c = _validate(y_a, y_b, y_c)
    var = np.var(np.concatenate([y_a, y_b], axis=0), axis=0, ddof=1)
    p = y_c.shape[0]
    s = np.empty((p,) + y_a.shape[1:])
    st = np.empty_like(s)
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(p):
            s[k] = (y_b * (y_c[k] - y_a)).mean(axis=0) / var
            st[k] = (y_a * (y_a - y_c[k])).mean(axis=0) / var
    return s, st


def sobol_indices(
    y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Original Sobol (1993) / Homma-Saltelli (1996) direct estimator.

    With this paper's convention (C^k = A with column k from B), Y_B and
    Y_Ck share *only* input k, so ``S_k = (mean(Y_B Y_Ck) - f0^2) / Var``;
    Y_A and Y_Ck share everything *except* k, so mean(Y_A Y_Ck) estimates
    the closed complementary index and ``ST_k = 1 - (mean(Y_A Y_Ck) -
    f0^2) / Var``.  The mean-square term uses the Homma-Saltelli
    bias-reduced form ``f0^2 = mean(Y_A) mean(Y_B)`` (product of two
    independent sample means).
    """
    y_a, y_b, y_c = _validate(y_a, y_b, y_c)
    f0_sq = y_a.mean(axis=0) * y_b.mean(axis=0)
    var = np.var(np.concatenate([y_a, y_b], axis=0), axis=0, ddof=1)
    p = y_c.shape[0]
    s = np.empty((p,) + y_a.shape[1:])
    st = np.empty_like(s)
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(p):
            s[k] = ((y_b * y_c[k]).mean(axis=0) - f0_sq) / var
            st[k] = 1.0 - ((y_a * y_c[k]).mean(axis=0) - f0_sq) / var
    return s, st


ESTIMATORS = {
    "martinez": martinez_indices,
    "jansen": jansen_indices,
    "saltelli": saltelli_indices,
    "sobol": sobol_indices,
}


def all_estimators(
    y_a: np.ndarray, y_b: np.ndarray, y_c: np.ndarray
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Evaluate every reference estimator on the same outputs."""
    return {name: fn(y_a, y_b, y_c) for name, fn in ESTIMATORS.items()}
