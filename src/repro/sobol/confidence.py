"""Fisher-z asymptotic confidence intervals for Martinez Sobol' estimates.

Implements Eq. 8 (first-order) and Eq. 9 (total) of the paper.  Because the
Martinez estimator is a plain Pearson correlation, the classical Fisher
transformation ``z = atanh(r)`` is asymptotically normal with standard
error ``1/sqrt(i - 3)`` after ``i`` groups, giving

    S_k  in  tanh(atanh(S_k)  +- z_alpha / sqrt(i-3))
    ST_k in  1 - tanh(atanh(1 - ST_k) -+ z_alpha / sqrt(i-3))

(the total-index bounds swap because of the ``1 -`` reflection).  The
formulas need only the current estimate and the group count — exactly why
the paper picked Martinez for the iterative setting (Sec. 3.3).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Two-sided 95% normal quantile used throughout the paper.
Z_95 = 1.96


def _atanh_clipped(r: ArrayLike) -> np.ndarray:
    """atanh with the argument clipped strictly inside (-1, 1).

    Estimates can touch +-1 exactly (e.g. perfectly linear models at small
    n); clipping keeps the interval finite instead of emitting inf/nan.
    """
    r = np.clip(np.asarray(r, dtype=np.float64), -1.0 + 1e-12, 1.0 - 1e-12)
    return np.arctanh(r)


def first_order_confidence_interval(
    s: ArrayLike, ngroups: int, z: float = Z_95
) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) bounds of the first-order index at confidence ``z``.

    Returns ``(nan, nan)`` fields when ``ngroups <= 3`` (the Fisher standard
    error ``1/sqrt(i-3)`` is undefined), matching the paper's validity
    domain.
    """
    s = np.asarray(s, dtype=np.float64)
    if ngroups <= 3:
        nan = np.full(s.shape, np.nan)
        return nan, nan
    half_width = z / np.sqrt(ngroups - 3.0)
    zr = _atanh_clipped(s)
    # a Sobol' index lives in [0, 1]; the raw Fisher bounds can stray
    # outside (the correlation lives in [-1, 1]) and would inflate the
    # Sec. 4.1.5 convergence scalar with mass the index cannot carry
    lower = np.clip(np.tanh(zr - half_width), 0.0, 1.0)
    upper = np.clip(np.tanh(zr + half_width), 0.0, 1.0)
    return lower, upper


def total_order_confidence_interval(
    st: ArrayLike, ngroups: int, z: float = Z_95
) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) bounds of the total index at confidence ``z``.

    Derived by transforming the correlation ``rho = 1 - ST`` (Eq. 9): note
    ``(1+rho)/(1-rho) = (2-ST)/ST``, so the bound signs flip under the
    reflection.
    """
    st = np.asarray(st, dtype=np.float64)
    if ngroups <= 3:
        nan = np.full(st.shape, np.nan)
        return nan, nan
    half_width = z / np.sqrt(ngroups - 3.0)
    zr = _atanh_clipped(1.0 - st)
    # clip to the index's valid range [0, 1]: the reflected Fisher bound
    # can exceed 1 (e.g. ST=0.5 at n=10 gives an upper of ~1.19), which
    # inflated max_interval_width and stalled convergence control
    lower = np.clip(1.0 - np.tanh(zr + half_width), 0.0, 1.0)
    upper = np.clip(1.0 - np.tanh(zr - half_width), 0.0, 1.0)
    return lower, upper


def interval_width_first_order(s: ArrayLike, ngroups: int, z: float = Z_95) -> np.ndarray:
    """Convenience: upper - lower of the first-order CI."""
    lo, hi = first_order_confidence_interval(s, ngroups, z)
    return hi - lo


def interval_width_total_order(st: ArrayLike, ngroups: int, z: float = Z_95) -> np.ndarray:
    """Convenience: upper - lower of the total-order CI."""
    lo, hi = total_order_confidence_interval(st, ngroups, z)
    return hi - lo
