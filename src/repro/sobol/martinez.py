"""Iterative ubiquitous Sobol' indices via the Martinez estimator.

:class:`IterativeSobolEstimator` tracks, per input parameter k, the two
streaming correlations the Martinez formulas need:

* ``corr(Y^B, Y^{C^k})``  -> first-order index  S_k   (Eq. 5/7)
* ``corr(Y^A, Y^{C^k})``  -> total index        ST_k  (Eq. 6)

State is elementwise over an arbitrary field shape, so one estimator per
timestep gives the paper's *ubiquitous* indices S_k(x, t) — a value for
every mesh cell and every timestep, with O(fields) memory independent of
the number of simulation groups.

Group-at-a-time semantics: :meth:`update_group` consumes the p+2 outputs
``(Y^A_i, Y^B_i, Y^{C^1}_i .. Y^{C^p}_i)`` of one pick-freeze group.  All
groups are independent so updates commute (any arrival order yields the
same result, to FP rounding) — the property the asynchronous server relies
on (Sec. 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sobol.confidence import (
    first_order_confidence_interval,
    total_order_confidence_interval,
)
from repro.stats.covariance import IterativeCovariance
from repro.stats.moments import IterativeMoments


class IterativeSobolEstimator:
    """One-pass first-order and total Sobol' indices for one output field.

    Parameters
    ----------
    nparams:
        Number of variable inputs p; each group supplies p+2 outputs.
    shape:
        Field shape of each simulation output (``()`` for scalar outputs).

    Notes
    -----
    Memory = (2p + const) arrays of ``shape``: per parameter one
    covariance pair vs Y^B and one vs Y^A.  The output moments (mean,
    variance) of the A member are tracked too, because the paper recommends
    co-visualizing Var(Y) with the index maps (Sec. 5.5) and variance is
    the denominator sanity-check for near-constant cells.
    """

    def __init__(self, nparams: int, shape: Tuple[int, ...] = (),
                 track_pairs: bool = False):
        if nparams < 1:
            raise ValueError("nparams must be >= 1")
        self.nparams = nparams
        self.shape = tuple(shape)
        # corr(Y^B, Y^Ck) per k  -> S_k
        self._first = [IterativeCovariance(self.shape) for _ in range(nparams)]
        # corr(Y^A, Y^Ck) per k  -> ST_k
        self._total = [IterativeCovariance(self.shape) for _ in range(nparams)]
        # extension (zero extra simulations): corr(Y^Ci, Y^Cj) estimates
        # the closed index of everything EXCEPT {i, j}, giving the pair's
        # total index ST_{ij} = 1 - corr — O(p^2) memory, opt-in.
        self.track_pairs = bool(track_pairs)
        self._pairs: Dict[Tuple[int, int], IterativeCovariance] = {}
        if self.track_pairs:
            self._pairs = {
                (i, j): IterativeCovariance(self.shape)
                for i in range(nparams)
                for j in range(i + 1, nparams)
            }
        # general output statistics on the A member (variance map, Fig. 8)
        self.output_moments = IterativeMoments(self.shape, order=2)
        self.ngroups = 0

    # ------------------------------------------------------------------ #
    def update_group(
        self,
        y_a: np.ndarray,
        y_b: np.ndarray,
        y_c: Sequence[np.ndarray],
    ) -> None:
        """Fold one simulation group's p+2 outputs into every index."""
        if len(y_c) != self.nparams:
            raise ValueError(
                f"expected {self.nparams} C-member outputs, got {len(y_c)}"
            )
        y_a = np.asarray(y_a, dtype=np.float64)
        y_b = np.asarray(y_b, dtype=np.float64)
        y_c = [np.asarray(yc, dtype=np.float64) for yc in y_c]
        for k in range(self.nparams):
            self._first[k].update(y_b, y_c[k])
            self._total[k].update(y_a, y_c[k])
        for (i, j), cov in self._pairs.items():
            cov.update(y_c[i], y_c[j])
        self.output_moments.update(y_a)
        self.ngroups += 1

    def merge(self, other: "IterativeSobolEstimator") -> None:
        """Combine with an estimator fed a disjoint set of groups."""
        if other.nparams != self.nparams or other.shape != self.shape:
            raise ValueError("incompatible estimator merge")
        if other.track_pairs != self.track_pairs:
            raise ValueError("incompatible pair tracking")
        for k in range(self.nparams):
            self._first[k].merge(other._first[k])
            self._total[k].merge(other._total[k])
        for key, cov in self._pairs.items():
            cov.merge(other._pairs[key])
        self.output_moments.merge(other.output_moments)
        self.ngroups += other.ngroups

    # ------------------------------------------------------------------ #
    def first_order(self, k: Optional[int] = None) -> np.ndarray:
        """S_k (or stacked (p,)+shape array if ``k`` is None)."""
        if k is not None:
            return self._first[k].correlation
        return np.stack([c.correlation for c in self._first])

    def total_order(self, k: Optional[int] = None) -> np.ndarray:
        """ST_k (or stacked array if ``k`` is None)."""
        if k is not None:
            return 1.0 - self._total[k].correlation
        return np.stack([1.0 - c.correlation for c in self._total])

    def pair_total_order(self, i: int, j: int) -> np.ndarray:
        """Total index ST_{ij} of the pair {i, j} (extension).

        With this paper's pick-freeze convention, Y^{C^i} and Y^{C^j}
        share every input *except* i and j, so their correlation estimates
        the closed index of the complementary set and
        ``ST_{ij} = 1 - corr(Y^{C^i}, Y^{C^j})`` — the overall sensitivity
        to {X_i, X_j} including every interaction containing either, at no
        extra simulation cost.  Requires ``track_pairs=True``.
        """
        if not self.track_pairs:
            raise ValueError("estimator built without track_pairs=True")
        if i == j:
            raise ValueError("pair indices must differ")
        key = (min(i, j), max(i, j))
        if key not in self._pairs:
            raise ValueError(f"invalid pair {key} for {self.nparams} parameters")
        return 1.0 - self._pairs[key].correlation

    def interaction_residual(self) -> np.ndarray:
        """1 - sum_k S_k: mass attributable to parameter interactions.

        Small values mean first-order indices tell the whole story and the
        total indices are redundant (paper Sec. 5.5, point on interactions).
        """
        return 1.0 - np.nansum(self.first_order(), axis=0)

    @property
    def output_variance(self) -> np.ndarray:
        """Unbiased Var(Y^A): the Fig. 8 co-visualization map."""
        return self.output_moments.variance

    @property
    def output_mean(self) -> np.ndarray:
        return self.output_moments.mean

    # ------------------------------------------------------------------ #
    def first_order_interval(self, k: int, z: float = 1.96):
        """Fisher-z CI of S_k after the groups seen so far (Eq. 8)."""
        return first_order_confidence_interval(self.first_order(k), self.ngroups, z)

    def total_order_interval(self, k: int, z: float = 1.96):
        """Fisher-z CI of ST_k (Eq. 9)."""
        return total_order_confidence_interval(self.total_order(k), self.ngroups, z)

    def max_interval_width(self, z: float = 1.96) -> float:
        """Largest CI width over all parameters and cells.

        This is the scalar the server reports for convergence control
        (Sec. 4.1.5: "only keep the largest value over all the mesh and all
        the timesteps").  ``inf`` until enough groups for the Fisher SE;
        ``nan`` when no cell carries any output variance (indices are
        meaningless there, Sec. 5.5) — aggregators skip NaN estimators.
        """
        if self.ngroups <= 3:
            return float("inf")
        widths: List[float] = []
        for k in range(self.nparams):
            lo, hi = self.first_order_interval(k, z)
            w = hi - lo
            finite = w[np.isfinite(w)]
            if finite.size:
                widths.append(float(finite.max()))
            lo, hi = self.total_order_interval(k, z)
            w = hi - lo
            finite = w[np.isfinite(w)]
            if finite.size:
                widths.append(float(finite.max()))
        return max(widths) if widths else float("nan")

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        state = {
            "nparams": self.nparams,
            "ngroups": self.ngroups,
            "track_pairs": self.track_pairs,
            "first": [c.state_dict() for c in self._first],
            "total": [c.state_dict() for c in self._total],
            "output_moments": self.output_moments.state_dict(),
        }
        if self.track_pairs:
            state["pairs"] = {
                f"{i},{j}": cov.state_dict() for (i, j), cov in self._pairs.items()
            }
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterativeSobolEstimator":
        moments = IterativeMoments.from_state_dict(state["output_moments"])
        obj = cls(
            nparams=int(state["nparams"]),
            shape=moments.shape,
            track_pairs=bool(state.get("track_pairs", False)),
        )
        obj.ngroups = int(state["ngroups"])
        obj._first = [IterativeCovariance.from_state_dict(s) for s in state["first"]]
        obj._total = [IterativeCovariance.from_state_dict(s) for s in state["total"]]
        if obj.track_pairs:
            obj._pairs = {
                tuple(int(v) for v in key.split(",")): IterativeCovariance.from_state_dict(s)
                for key, s in state["pairs"].items()
            }
        obj.output_moments = moments
        return obj

    def copy(self) -> "IterativeSobolEstimator":
        return IterativeSobolEstimator.from_state_dict(self.state_dict())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IterativeSobolEstimator(nparams={self.nparams}, shape={self.shape}, "
            f"ngroups={self.ngroups})"
        )


class UbiquitousSobolField:
    """Per-timestep family of :class:`IterativeSobolEstimator`.

    This is the server-rank payload: for a spatial partition of
    ``ncells_local`` cells and ``ntimesteps`` outputs, it owns one
    estimator per timestep and dispatches group updates as (timestep,
    member-field) messages arrive — in any order across groups.
    """

    def __init__(self, nparams: int, ntimesteps: int, ncells: int):
        if ntimesteps < 1 or ncells < 1:
            raise ValueError("ntimesteps and ncells must be >= 1")
        self.nparams = nparams
        self.ntimesteps = ntimesteps
        self.ncells = ncells
        self.estimators = [
            IterativeSobolEstimator(nparams, (ncells,)) for _ in range(ntimesteps)
        ]

    def update_group_timestep(
        self,
        timestep: int,
        y_a: np.ndarray,
        y_b: np.ndarray,
        y_c: Sequence[np.ndarray],
    ) -> None:
        """Fold one group's outputs for one timestep."""
        self.estimators[timestep].update_group(y_a, y_b, y_c)

    def first_order_map(self, k: int, timestep: int) -> np.ndarray:
        return self.estimators[timestep].first_order(k)

    def total_order_map(self, k: int, timestep: int) -> np.ndarray:
        return self.estimators[timestep].total_order(k)

    def variance_map(self, timestep: int) -> np.ndarray:
        return self.estimators[timestep].output_variance

    def max_interval_width(self, z: float = 1.96) -> float:
        """Largest CI width over all timesteps (convergence scalar).

        Timesteps with no meaningful cells (NaN) are skipped; ``inf`` when
        nothing meaningful exists anywhere yet.
        """
        widths = [e.max_interval_width(z) for e in self.estimators]
        finite_or_inf = [w for w in widths if not np.isnan(w)]
        return max(finite_or_inf) if finite_or_inf else float("nan")

    @property
    def memory_floats(self) -> int:
        """Number of float64 state entries — O(fields), not O(groups).

        Per timestep: 2p covariance objects x 5 arrays + 1 moments object
        x 2 arrays, each of ``ncells`` floats.  Used by the memory-accounting
        benchmark (paper: 491 GB server memory for 10M cells x 100 steps).
        """
        per_estimator = (2 * self.nparams * 5 + 2) * self.ncells
        return per_estimator * self.ntimesteps

    def state_dict(self) -> dict:
        return {
            "nparams": self.nparams,
            "ntimesteps": self.ntimesteps,
            "ncells": self.ncells,
            "estimators": [e.state_dict() for e in self.estimators],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "UbiquitousSobolField":
        obj = cls(
            nparams=int(state["nparams"]),
            ntimesteps=int(state["ntimesteps"]),
            ncells=int(state["ncells"]),
        )
        obj.estimators = [
            IterativeSobolEstimator.from_state_dict(s) for s in state["estimators"]
        ]
        return obj
