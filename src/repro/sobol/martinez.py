"""Iterative ubiquitous Sobol' indices via the Martinez estimator.

Two implementations of the same statistics:

* :class:`IterativeSobolEstimator` — the scalar-loop reference: per input
  parameter k it tracks the two streaming correlations the Martinez
  formulas need,

  - ``corr(Y^B, Y^{C^k})``  -> first-order index  S_k   (Eq. 5/7)
  - ``corr(Y^A, Y^{C^k})``  -> total index        ST_k  (Eq. 6)

  as 2p separate :class:`~repro.stats.covariance.IterativeCovariance`
  objects.  Kept as the readable specification, for scalar studies, and
  for the opt-in pairwise extension (``track_pairs``).

* :class:`UbiquitousSobolField` — the production path: the whole
  per-timestep estimator forest as stacked dense arrays with micro-batched
  vectorized folds (see its docstring).  This is what server ranks hold;
  the equivalence suite pins it to the reference at rtol 1e-10.

State is elementwise over the field, so per-timestep state gives the
paper's *ubiquitous* indices S_k(x, t) — a value for every mesh cell and
every timestep, with O(fields) memory independent of the number of
simulation groups.

Group-at-a-time semantics: updates consume the p+2 outputs
``(Y^A_i, Y^B_i, Y^{C^1}_i .. Y^{C^p}_i)`` of one pick-freeze group.  All
groups are independent so updates commute (any arrival order yields the
same result, to FP rounding) — the property the asynchronous server relies
on (Sec. 3.1).
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.kernels import make_kernel
from repro.kernels import parallel as _parallel
from repro.sobol.confidence import (
    first_order_confidence_interval,
    total_order_confidence_interval,
)
from repro.stats.covariance import IterativeCovariance
from repro.stats.moments import IterativeMoments


class IterativeSobolEstimator:
    """One-pass first-order and total Sobol' indices for one output field.

    Parameters
    ----------
    nparams:
        Number of variable inputs p; each group supplies p+2 outputs.
    shape:
        Field shape of each simulation output (``()`` for scalar outputs).

    Notes
    -----
    Memory = (2p + const) arrays of ``shape``: per parameter one
    covariance pair vs Y^B and one vs Y^A.  The output moments (mean,
    variance) of the A member are tracked too, because the paper recommends
    co-visualizing Var(Y) with the index maps (Sec. 5.5) and variance is
    the denominator sanity-check for near-constant cells.
    """

    def __init__(self, nparams: int, shape: Tuple[int, ...] = (),
                 track_pairs: bool = False):
        if nparams < 1:
            raise ValueError("nparams must be >= 1")
        self.nparams = nparams
        self.shape = tuple(shape)
        # corr(Y^B, Y^Ck) per k  -> S_k
        self._first = [IterativeCovariance(self.shape) for _ in range(nparams)]
        # corr(Y^A, Y^Ck) per k  -> ST_k
        self._total = [IterativeCovariance(self.shape) for _ in range(nparams)]
        # extension (zero extra simulations): corr(Y^Ci, Y^Cj) estimates
        # the closed index of everything EXCEPT {i, j}, giving the pair's
        # total index ST_{ij} = 1 - corr — O(p^2) memory, opt-in.
        self.track_pairs = bool(track_pairs)
        self._pairs: Dict[Tuple[int, int], IterativeCovariance] = {}
        if self.track_pairs:
            self._pairs = {
                (i, j): IterativeCovariance(self.shape)
                for i in range(nparams)
                for j in range(i + 1, nparams)
            }
        # general output statistics on the A member (variance map, Fig. 8)
        self.output_moments = IterativeMoments(self.shape, order=2)
        self.ngroups = 0

    # ------------------------------------------------------------------ #
    def update_group(
        self,
        y_a: np.ndarray,
        y_b: np.ndarray,
        y_c: Sequence[np.ndarray],
    ) -> None:
        """Fold one simulation group's p+2 outputs into every index."""
        if len(y_c) != self.nparams:
            raise ValueError(
                f"expected {self.nparams} C-member outputs, got {len(y_c)}"
            )
        y_a = np.asarray(y_a, dtype=np.float64)
        y_b = np.asarray(y_b, dtype=np.float64)
        y_c = [np.asarray(yc, dtype=np.float64) for yc in y_c]
        for k in range(self.nparams):
            self._first[k].update(y_b, y_c[k])
            self._total[k].update(y_a, y_c[k])
        for (i, j), cov in self._pairs.items():
            cov.update(y_c[i], y_c[j])
        self.output_moments.update(y_a)
        self.ngroups += 1

    def merge(self, other: "IterativeSobolEstimator") -> None:
        """Combine with an estimator fed a disjoint set of groups."""
        if other.nparams != self.nparams or other.shape != self.shape:
            raise ValueError("incompatible estimator merge")
        if other.track_pairs != self.track_pairs:
            raise ValueError("incompatible pair tracking")
        for k in range(self.nparams):
            self._first[k].merge(other._first[k])
            self._total[k].merge(other._total[k])
        for key, cov in self._pairs.items():
            cov.merge(other._pairs[key])
        self.output_moments.merge(other.output_moments)
        self.ngroups += other.ngroups

    # ------------------------------------------------------------------ #
    def first_order(self, k: Optional[int] = None) -> np.ndarray:
        """S_k (or stacked (p,)+shape array if ``k`` is None)."""
        if k is not None:
            return self._first[k].correlation
        return np.stack([c.correlation for c in self._first])

    def total_order(self, k: Optional[int] = None) -> np.ndarray:
        """ST_k (or stacked array if ``k`` is None)."""
        if k is not None:
            return 1.0 - self._total[k].correlation
        return np.stack([1.0 - c.correlation for c in self._total])

    def pair_total_order(self, i: int, j: int) -> np.ndarray:
        """Total index ST_{ij} of the pair {i, j} (extension).

        With this paper's pick-freeze convention, Y^{C^i} and Y^{C^j}
        share every input *except* i and j, so their correlation estimates
        the closed index of the complementary set and
        ``ST_{ij} = 1 - corr(Y^{C^i}, Y^{C^j})`` — the overall sensitivity
        to {X_i, X_j} including every interaction containing either, at no
        extra simulation cost.  Requires ``track_pairs=True``.
        """
        if not self.track_pairs:
            raise ValueError("estimator built without track_pairs=True")
        if i == j:
            raise ValueError("pair indices must differ")
        key = (min(i, j), max(i, j))
        if key not in self._pairs:
            raise ValueError(f"invalid pair {key} for {self.nparams} parameters")
        return 1.0 - self._pairs[key].correlation

    def interaction_residual(self) -> np.ndarray:
        """1 - sum_k S_k: mass attributable to parameter interactions.

        Small values mean first-order indices tell the whole story and the
        total indices are redundant (paper Sec. 5.5, point on interactions).
        """
        return 1.0 - np.nansum(self.first_order(), axis=0)

    @property
    def output_variance(self) -> np.ndarray:
        """Unbiased Var(Y^A): the Fig. 8 co-visualization map."""
        return self.output_moments.variance

    @property
    def output_mean(self) -> np.ndarray:
        return self.output_moments.mean

    # ------------------------------------------------------------------ #
    def first_order_interval(self, k: int, z: float = 1.96):
        """Fisher-z CI of S_k after the groups seen so far (Eq. 8)."""
        return first_order_confidence_interval(self.first_order(k), self.ngroups, z)

    def total_order_interval(self, k: int, z: float = 1.96):
        """Fisher-z CI of ST_k (Eq. 9)."""
        return total_order_confidence_interval(self.total_order(k), self.ngroups, z)

    def max_interval_width(self, z: float = 1.96) -> float:
        """Largest CI width over all parameters and cells.

        This is the scalar the server reports for convergence control
        (Sec. 4.1.5: "only keep the largest value over all the mesh and all
        the timesteps").  ``inf`` until enough groups for the Fisher SE;
        ``nan`` when no cell carries any output variance (indices are
        meaningless there, Sec. 5.5) — aggregators skip NaN estimators.
        """
        if self.ngroups <= 3:
            return float("inf")
        widths: List[float] = []
        for k in range(self.nparams):
            lo, hi = self.first_order_interval(k, z)
            w = hi - lo
            finite = w[np.isfinite(w)]
            if finite.size:
                widths.append(float(finite.max()))
            lo, hi = self.total_order_interval(k, z)
            w = hi - lo
            finite = w[np.isfinite(w)]
            if finite.size:
                widths.append(float(finite.max()))
        return max(widths) if widths else float("nan")

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        state = {
            "nparams": self.nparams,
            "ngroups": self.ngroups,
            "track_pairs": self.track_pairs,
            "first": [c.state_dict() for c in self._first],
            "total": [c.state_dict() for c in self._total],
            "output_moments": self.output_moments.state_dict(),
        }
        if self.track_pairs:
            state["pairs"] = {
                f"{i},{j}": cov.state_dict() for (i, j), cov in self._pairs.items()
            }
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "IterativeSobolEstimator":
        moments = IterativeMoments.from_state_dict(state["output_moments"])
        obj = cls(
            nparams=int(state["nparams"]),
            shape=moments.shape,
            track_pairs=bool(state.get("track_pairs", False)),
        )
        obj.ngroups = int(state["ngroups"])
        obj._first = [IterativeCovariance.from_state_dict(s) for s in state["first"]]
        obj._total = [IterativeCovariance.from_state_dict(s) for s in state["total"]]
        if obj.track_pairs:
            obj._pairs = {
                tuple(int(v) for v in key.split(",")): IterativeCovariance.from_state_dict(s)
                for key, s in state["pairs"].items()
            }
        obj.output_moments = moments
        return obj

    def copy(self) -> "IterativeSobolEstimator":
        return IterativeSobolEstimator.from_state_dict(self.state_dict())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IterativeSobolEstimator(nparams={self.nparams}, shape={self.shape}, "
            f"ngroups={self.ngroups})"
        )


class _TimestepEstimator:
    """Read-only per-timestep facade over :class:`UbiquitousSobolField`.

    Mimics the parts of the old per-timestep ``IterativeSobolEstimator``
    API that callers relied on (``ngroups``, output moments, index maps)
    while the actual state lives in the field's stacked arrays.
    """

    __slots__ = ("_field", "_t")

    def __init__(self, field: "UbiquitousSobolField", timestep: int):
        self._field = field
        self._t = timestep

    @property
    def ngroups(self) -> int:
        self._field.flush(self._t)
        return int(self._field._counts[self._t])

    @property
    def output_mean(self) -> np.ndarray:
        return self._field.mean_map(self._t)

    @property
    def output_variance(self) -> np.ndarray:
        return self._field.variance_map(self._t)

    def first_order(self, k: Optional[int] = None) -> np.ndarray:
        if k is not None:
            return self._field.first_order_map(k, self._t)
        return self._field.first_order_all(self._t)

    def total_order(self, k: Optional[int] = None) -> np.ndarray:
        if k is not None:
            return self._field.total_order_map(k, self._t)
        return self._field.total_order_all(self._t)

    def max_interval_width(self, z: float = 1.96) -> float:
        return self._field._timestep_interval_width(self._t, z)


class UbiquitousSobolField:
    """Vectorized batched Martinez estimator over every (timestep, cell).

    This is the server-rank payload.  It replaces the old per-parameter /
    per-timestep forest of ``IterativeCovariance`` objects (2p objects x 5
    arrays x T timesteps) with stacked dense state:

    * ``_mean``  — ``(T, p+2, ncells)`` running means of every member
      stream, rows ordered ``[Y^A, Y^B, Y^{C^1} .. Y^{C^p}]``;
    * ``_m2``    — same shape, centered second-moment sums per stream;
    * ``_cxy``   — ``(T, 2, p, ncells)`` co-moments: row 0 pairs
      ``<Y^A, Y^{C^k}>`` (total index), row 1 ``<Y^B, Y^{C^k}>`` (first
      order);
    * ``_counts``— ``(T,)`` groups folded per timestep.

    Because the A/B streams are shared by all p correlations and the C^k
    stream is shared by the first/total pair, this layout stores
    ``(4p+4) x ncells`` floats per timestep versus ``(10p+2)`` for the
    object forest — a >2x memory reduction at the paper's p=6.

    Hot path: :meth:`update_group_buffer` *adopts* one staged
    ``(p+2, ncells)`` buffer per call (by reference — the caller
    relinquishes it) and folds a micro-batch of ``batch_size`` buffers at
    a time: residuals are taken against the first buffer of the batch (an
    exact shift, so the contraction stays numerically stable like Pebay's
    one-pass formulas), a pluggable :mod:`repro.kernels` backend produces
    every co-moment of the batch (einsum baseline, GEMM-shaped BLAS,
    fused compiled C, or Numba — ``kernel="auto"`` autotunes on the first
    real fold), and one exact pairwise combination (Pebay, SAND2008-6212)
    merges the batch into the running state.  Any read (maps, intervals,
    checkpoints) flushes pending buffers first, so results never lag the
    data.

    Updates remain commutative across groups up to FP rounding — the
    property the asynchronous server relies on (Sec. 3.1) — and a fold of
    B=1 reduces to the classical iterative update, so arrival order only
    perturbs results at the reassociation level (~1e-13 relative).

    Multicore folds: ``fold_threads`` shards each fold across disjoint,
    block-aligned cell windows onto the persistent thread pool of
    :mod:`repro.kernels.parallel` — per-thread kernel instances (scratch
    isolation), no combine step (windows write disjoint state slices),
    and therefore **bit-exact** results against ``fold_threads=1``.
    ``"auto"`` (the default) measures 1/2/half/all cores on the first
    real fold and picks ``(backend, nthreads, block_cells)`` jointly;
    explicit integers are honored un-clamped.  Thread count is execution
    policy, not statistics: checkpoints and fingerprints ignore it.
    """

    #: staged buffers per timestep before a fold is triggered
    DEFAULT_BATCH = 16
    #: cells per fold block (keeps scratch in cache)
    DEFAULT_BLOCK = 8192

    def __init__(
        self,
        nparams: int,
        ntimesteps: int,
        ncells: int,
        batch_size: int = DEFAULT_BATCH,
        block_cells: int = DEFAULT_BLOCK,
        max_staged: Optional[int] = None,
        kernel: Optional[str] = None,
        fold_threads=None,
        local_ranks: int = 1,
    ):
        if nparams < 1:
            raise ValueError("nparams must be >= 1")
        if ntimesteps < 1 or ncells < 1:
            raise ValueError("ntimesteps and ncells must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.nparams = nparams
        self.ntimesteps = ntimesteps
        self.ncells = ncells
        self.batch_size = int(batch_size)
        self.block_cells = max(1, int(block_cells))
        #: global bound on adopted-but-unfolded buffers (memory control)
        self.max_staged = int(max_staged) if max_staged is not None else 4 * self.batch_size
        m = nparams + 2
        self._m = m
        self._counts = np.zeros(ntimesteps, dtype=np.int64)
        self._mean = np.zeros((ntimesteps, m, ncells))
        self._m2 = np.zeros((ntimesteps, m, ncells))
        self._cxy = np.zeros((ntimesteps, 2, nparams, ncells))
        self._staged: List[List[np.ndarray]] = [[] for _ in range(ntimesteps)]
        self._staged_total = 0
        # lazy max-heap of (-len(staged), t): overflow eviction pops the
        # fullest timestep in O(log) instead of scanning all T timesteps
        self._staged_heap: List[Tuple[int, int]] = []
        blk = min(self.block_cells, ncells)
        #: requested backend spec (None -> REPRO_KERNEL env -> "auto")
        self.kernel_spec = kernel
        self._kernel = make_kernel(kernel, nparams, self.batch_size, blk)
        #: requested thread spec (explicit > $REPRO_FOLD_THREADS > "auto")
        self.fold_threads_spec = fold_threads
        self._threads = _parallel.resolve_threads(fold_threads)
        self._local_ranks = max(1, int(local_ranks))
        self._folder: Optional[_parallel.ParallelFolder] = None
        # preallocated rank-1 correction scratch (sequential path)
        self._r1 = np.empty((2, nparams, blk))

    @property
    def kernel_name(self) -> str:
        """Concrete backend in use (``auto`` until its first tuned fold)."""
        if self._folder is not None:
            return self._folder.backend
        chosen = getattr(self._kernel, "chosen", None)
        return chosen if chosen is not None else self._kernel.name

    @property
    def active_fold_threads(self) -> int:
        """Threads the sharded fold currently uses (1 until resolved)."""
        return self._folder.nthreads if self._folder is not None else 1

    @property
    def fold_plan(self) -> Optional[Tuple[str, int, int]]:
        """The active ``(backend, nthreads, block_cells)`` execution
        plan, or None while folds still run on the sequential path."""
        return self._folder.plan if self._folder is not None else None

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update_group_buffer(self, timestep: int, buf: np.ndarray) -> None:
        """Adopt one group's ``(p+2, ncells)`` outputs for ``timestep``.

        Rows are ``[Y^A, Y^B, Y^{C^1} .. Y^{C^p}]`` — exactly the member
        order of the server staging buffer, which is handed over here
        without a copy.  The caller must not mutate the array afterwards;
        it is read once when the staged batch folds.
        """
        if not 0 <= timestep < self.ntimesteps:
            raise IndexError(f"timestep {timestep} out of range")
        # C-contiguity is part of the staging contract: the compiled
        # kernel backends index raw slab pointers (no-op for the server's
        # own staging buffers)
        buf = np.ascontiguousarray(buf, dtype=np.float64)
        if buf.shape != (self._m, self.ncells):
            raise ValueError(
                f"buffer shape {buf.shape} != ({self._m}, {self.ncells})"
            )
        staged = self._staged[timestep]
        staged.append(buf)
        self._staged_total += 1
        if len(staged) >= self.batch_size:
            self._fold(timestep)
        else:
            heapq.heappush(self._staged_heap, (-len(staged), timestep))
            if len(self._staged_heap) > 4 * max(self.max_staged, self.ntimesteps):
                # stale entries are popped lazily only on overflow; bound
                # the heap by rebuilding it from the live counts once it
                # outgrows the working set (amortized O(1) per adoption)
                self._staged_heap = [
                    (-len(s), t) for t, s in enumerate(self._staged) if s
                ]
                heapq.heapify(self._staged_heap)
            if self._staged_total > self.max_staged:
                self._fold(self._fullest_staged())

    def _fullest_staged(self) -> int:
        """The timestep with the most staged buffers, via the lazy heap.

        Entries go stale when a timestep folds (its count drops to zero)
        or when a later adoption pushed a larger count; both are detected
        by comparing against the live count and popped on sight.
        Amortized O(log) per adoption — each pushed entry is popped at
        most once — versus the old O(ntimesteps) scan per overflow.
        """
        while self._staged_heap:
            neg, t = self._staged_heap[0]
            if -neg == len(self._staged[t]):
                return t
            heapq.heappop(self._staged_heap)
        # unreachable while staged_total > 0 (every adoption pushes), but
        # degrade gracefully rather than crash on a corrupt heap
        return int(
            max(range(self.ntimesteps), key=lambda t: len(self._staged[t]))
        )

    def update_group_timestep(
        self,
        timestep: int,
        y_a: np.ndarray,
        y_b: np.ndarray,
        y_c: Sequence[np.ndarray],
    ) -> None:
        """Fold one group's outputs for one timestep (copying wrapper)."""
        if len(y_c) != self.nparams:
            raise ValueError(
                f"expected {self.nparams} C-member outputs, got {len(y_c)}"
            )
        buf = np.empty((self._m, self.ncells))
        buf[0] = y_a
        buf[1] = y_b
        for k, yc in enumerate(y_c):
            buf[2 + k] = yc
        self.update_group_buffer(timestep, buf)

    # ------------------------------------------------------------------ #
    # the fold: batch contraction + exact pairwise merge
    # ------------------------------------------------------------------ #
    def _fold(self, t: int) -> None:
        if _telemetry.REGISTRY.enabled:
            # per-backend fold timing: folds are batched (one per
            # batch_size groups), so labelling by the live kernel name
            # here is off the per-message hot path
            t0 = _time.perf_counter()
            self._fold_impl(t)
            _telemetry.REGISTRY.histogram(
                "repro_kernel_fold_seconds",
                "co-moment batch fold seconds per kernel backend",
            ).observe(_time.perf_counter() - t0, backend=self.kernel_name)
        else:
            self._fold_impl(t)

    def _fold_impl(self, t: int) -> None:
        slabs = self._staged[t]
        nb = len(slabs)
        if nb == 0:
            return
        na = int(self._counts[t])
        mean = self._mean[t]
        m2 = self._m2[t]
        cxy = self._cxy[t]
        folder = self._resolve_folder(slabs)
        if folder is not None:
            # sharded multicore fold: disjoint block-aligned cell windows
            # onto per-thread kernels — bit-exact vs the sequential path
            folder.fold(slabs, self.ncells, mean, m2, cxy, na)
        else:
            _parallel.fold_window(
                self._kernel, slabs, 0, self.ncells,
                mean, m2, cxy, na, self._r1,
            )
        self._counts[t] = na + nb
        self._staged_total -= nb
        slabs.clear()

    def _resolve_folder(self, slabs) -> Optional[_parallel.ParallelFolder]:
        """The sharded fold engine, built once its plan is known.

        Returns None while folds must stay sequential: ``fold_threads=1``
        (permanently), or ``auto`` still waiting for a concrete backend
        (the kernel autotuner decides inside a sequential fold) or for a
        measurable batch.  The threads dimension autotunes jointly with
        ``block_cells`` on the first real fold and caches its winner per
        shape key — in-process and via ``$REPRO_FOLD_AUTOTUNE`` — so
        respawned ranks skip the probe (see :mod:`repro.kernels.parallel`).
        """
        if self._folder is not None or self._threads == 1:
            return self._folder
        blk = min(self.block_cells, self.ncells)
        if self._threads != "auto":
            backend = self.kernel_name
            if backend == "auto":
                return None  # backend autotune pending: fold sequentially
            self._folder = _parallel.ParallelFolder(
                backend, self.nparams, self.batch_size, blk,
                int(self._threads),
            )
            return self._folder
        key = _parallel.plan_key(
            self.nparams, self.batch_size, blk,
            str(self.kernel_spec or "auto").lower(),
        )
        plan = _parallel.cached_plan(key)
        if plan is None:
            backend = self.kernel_name
            if backend == "auto" or len(slabs) < _parallel._TUNE_MIN_BATCH:
                return None
            candidates = _parallel.auto_thread_candidates(
                local_ranks=self._local_ranks
            )
            plan = _parallel.tune_plan(
                backend, self.nparams, self.batch_size, blk,
                slabs, self.ncells, candidates,
            )
            _parallel.record_plan(key, plan)
        self._folder = _parallel.ParallelFolder(
            plan[0], self.nparams, self.batch_size, plan[2], plan[1]
        )
        return self._folder

    def flush(self, timestep: Optional[int] = None) -> None:
        """Fold staged buffers (one timestep, or all when ``None``)."""
        if timestep is not None:
            self._fold(timestep)
        else:
            for t in range(self.ntimesteps):
                self._fold(t)

    @property
    def staged_groups(self) -> int:
        """Adopted buffers not yet folded (transient memory accounting)."""
        return self._staged_total

    # ------------------------------------------------------------------ #
    # merge (exact pairwise combination of two disjoint streams)
    # ------------------------------------------------------------------ #
    def merge(self, other: "UbiquitousSobolField") -> None:
        """Absorb an estimator fed a disjoint set of groups."""
        if (
            other.nparams != self.nparams
            or other.ntimesteps != self.ntimesteps
            or other.ncells != self.ncells
        ):
            raise ValueError("incompatible field merge")
        self.flush()
        other.flush()
        na = self._counts.astype(np.float64)
        nb = other._counts.astype(np.float64)
        n = na + nb
        nsafe = np.where(n > 0, n, 1.0)
        f = (na * nb / nsafe)[:, None, None]
        wb = (nb / nsafe)[:, None, None]
        d = other._mean - self._mean
        dx = d[:, :2]
        dc = d[:, 2:]
        self._m2 += other._m2 + f * d * d
        self._cxy += other._cxy + self._kernel.merge_cross(dx, dc, f[..., None])
        self._mean += d * wb
        self._counts += other._counts

    # ------------------------------------------------------------------ #
    # derived maps
    # ------------------------------------------------------------------ #
    def _correlation(self, timestep: int, row: int, k: int) -> np.ndarray:
        """Pearson correlation of stream pair (row in {0:A,1:B}, C^k)."""
        self.flush(timestep)
        if self._counts[timestep] < 2:
            return np.full(self.ncells, np.nan)
        m2 = self._m2[timestep]
        maps = self._kernel.correlation_maps(
            self._cxy[timestep, row, k][None, None, :],
            m2[row][None, :],
            m2[2 + k][None, :],
        )
        return maps[0, 0]

    def first_order_map(self, k: int, timestep: int) -> np.ndarray:
        return self._correlation(timestep, 1, k)

    def total_order_map(self, k: int, timestep: int) -> np.ndarray:
        return 1.0 - self._correlation(timestep, 0, k)

    def _all_correlations(self, timestep: int, row: int) -> np.ndarray:
        self.flush(timestep)
        if self._counts[timestep] < 2:
            return np.full((self.nparams, self.ncells), np.nan)
        m2 = self._m2[timestep]
        maps = self._kernel.correlation_maps(
            self._cxy[timestep, row][None, :, :],
            m2[row][None, :],
            m2[2:],
        )
        return maps[0]

    def _both_correlations(self, timestep: int) -> np.ndarray:
        """Both correlation rows from ONE extraction pass.

        Returns ``(2, p, ncells)``: row 0 is ``corr(Y^A, Y^Ck)`` (the
        total-index correlation), row 1 ``corr(Y^B, Y^Ck)`` (first
        order).  The C-stream standard deviations — the expensive shared
        factor of both denominators — are computed once, instead of once
        per row as the separate ``first_order_all`` / ``total_order_all``
        calls used to do.
        """
        self.flush(timestep)
        if self._counts[timestep] < 2:
            return np.full((2, self.nparams, self.ncells), np.nan)
        m2 = self._m2[timestep]
        return self._kernel.correlation_maps(
            self._cxy[timestep], m2[:2], m2[2:]
        )

    def first_order_all(self, timestep: int) -> np.ndarray:
        """Stacked ``(p, ncells)`` first-order map at one timestep."""
        return self._all_correlations(timestep, 1)

    def total_order_all(self, timestep: int) -> np.ndarray:
        return 1.0 - self._all_correlations(timestep, 0)

    def index_maps_at(self, timestep: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(first_order, total_order)`` ``(p, ncells)`` slabs at one
        timestep from a single correlation-extraction pass — the batched
        building block of results assembly."""
        corr = self._both_correlations(timestep)
        return corr[1], 1.0 - corr[0]

    def variance_map(self, timestep: int) -> np.ndarray:
        """Unbiased Var(Y^A) per cell (the Fig. 8 co-visualization map)."""
        self.flush(timestep)
        if self._counts[timestep] < 2:
            return np.full(self.ncells, np.nan)
        return self._m2[timestep, 0] / (self._counts[timestep] - 1)

    def mean_map(self, timestep: int) -> np.ndarray:
        self.flush(timestep)
        return self._mean[timestep, 0]

    @property
    def estimators(self) -> List[_TimestepEstimator]:
        """Per-timestep facades (compatibility with the old forest API)."""
        return [_TimestepEstimator(self, t) for t in range(self.ntimesteps)]

    # ------------------------------------------------------------------ #
    # convergence scalar
    # ------------------------------------------------------------------ #
    def _timestep_interval_width(self, t: int, z: float = 1.96) -> float:
        self.flush(t)
        if self._counts[t] <= 3:
            return float("inf")
        ngroups = int(self._counts[t])
        # one correlation-extraction pass feeds BOTH CI widths (the
        # separate first_order_all / total_order_all calls each rebuilt
        # the same denominators)
        first, total = self.index_maps_at(t)
        widths: List[float] = []
        lo, hi = first_order_confidence_interval(first, ngroups, z)
        w = hi - lo
        finite = w[np.isfinite(w)]
        if finite.size:
            widths.append(float(finite.max()))
        lo, hi = total_order_confidence_interval(total, ngroups, z)
        w = hi - lo
        finite = w[np.isfinite(w)]
        if finite.size:
            widths.append(float(finite.max()))
        return max(widths) if widths else float("nan")

    def max_interval_width(self, z: float = 1.96) -> float:
        """Largest CI width over all timesteps (convergence scalar).

        Timesteps with no meaningful cells (NaN) are skipped; ``inf`` when
        nothing meaningful exists anywhere yet.
        """
        widths = [self._timestep_interval_width(t, z) for t in range(self.ntimesteps)]
        finite_or_inf = [w for w in widths if not np.isnan(w)]
        return max(finite_or_inf) if finite_or_inf else float("nan")

    # ------------------------------------------------------------------ #
    @property
    def memory_floats(self) -> int:
        """Number of float64 state entries — O(fields), not O(groups).

        Per timestep: (p+2) mean rows + (p+2) second-moment rows + 2p
        co-moment rows, each of ``ncells`` floats — (4p+4) x ncells, less
        than half the old object forest's (10p+2).  Used by the
        memory-accounting benchmark (paper: 491 GB server memory for 10M
        cells x 100 steps).  Staged-but-unfolded buffers are transient
        and bounded by ``max_staged`` x (p+2) x ncells on top.
        """
        per_timestep = (4 * self.nparams + 4) * self.ncells
        return per_timestep * self.ntimesteps

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        self.flush()
        return {
            "format": 2,
            "nparams": self.nparams,
            "ntimesteps": self.ntimesteps,
            "ncells": self.ncells,
            "counts": self._counts,
            "mean": self._mean,
            "m2": self._m2,
            "cxy": self._cxy,
        }

    @classmethod
    def from_state_dict(
        cls, state: dict, kernel: Optional[str] = None,
        fold_threads=None, local_ranks: int = 1,
    ) -> "UbiquitousSobolField":
        """Restore state; ``kernel`` / ``fold_threads`` pick the backend
        and thread policy for the new field (checkpoints are execution-
        policy-agnostic — the state is pure statistics, so a study may
        restore onto any host's fastest kernel at any thread count)."""
        if "estimators" in state:  # legacy per-timestep object forest
            return cls._from_legacy_state(state, kernel=kernel)
        obj = cls(
            nparams=int(state["nparams"]),
            ntimesteps=int(state["ntimesteps"]),
            ncells=int(state["ncells"]),
            kernel=kernel,
            fold_threads=fold_threads,
            local_ranks=local_ranks,
        )
        obj._counts = np.asarray(state["counts"], dtype=np.int64).copy()
        obj._mean = np.asarray(state["mean"], dtype=np.float64).copy()
        obj._m2 = np.asarray(state["m2"], dtype=np.float64).copy()
        obj._cxy = np.asarray(state["cxy"], dtype=np.float64).copy()
        return obj

    @classmethod
    def _from_legacy_state(
        cls, state: dict, kernel: Optional[str] = None
    ) -> "UbiquitousSobolField":
        """Migrate a format-1 checkpoint (list of estimator state dicts).

        The old layout stored, per timestep and parameter k, the
        ``corr(Y^B, Y^Ck)`` covariance under ``first`` and
        ``corr(Y^A, Y^Ck)`` under ``total``; the A/B stream moments are
        the (shared) x-sides of those objects.
        """
        obj = cls(
            nparams=int(state["nparams"]),
            ntimesteps=int(state["ntimesteps"]),
            ncells=int(state["ncells"]),
            kernel=kernel,
        )
        for t, est in enumerate(state["estimators"]):
            first = est["first"]
            total = est["total"]
            obj._counts[t] = int(est["ngroups"])
            obj._mean[t, 0] = np.asarray(total[0]["mean_x"], dtype=np.float64)
            obj._mean[t, 1] = np.asarray(first[0]["mean_x"], dtype=np.float64)
            obj._m2[t, 0] = np.asarray(total[0]["m2_x"], dtype=np.float64)
            obj._m2[t, 1] = np.asarray(first[0]["m2_x"], dtype=np.float64)
            for k in range(obj.nparams):
                obj._mean[t, 2 + k] = np.asarray(first[k]["mean_y"], dtype=np.float64)
                obj._m2[t, 2 + k] = np.asarray(first[k]["m2_y"], dtype=np.float64)
                obj._cxy[t, 0, k] = np.asarray(total[k]["cxy"], dtype=np.float64)
                obj._cxy[t, 1, k] = np.asarray(first[k]["cxy"], dtype=np.float64)
        return obj
