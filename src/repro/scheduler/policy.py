"""Elastic, straggler-aware scheduling policy (the coordinator's brain).

The paper's launcher gets elasticity for free from the batch scheduler:
every group is an independent job, so the machine grows and shrinks the
study with cluster load (Sec. 4.1.4, the Fig. 6 elastic ramp).  Our live
coordinator hands whole groups to long-lived ``repro work`` processes
instead, which re-introduces the classic straggler problem — one slow or
dying worker drags the study's tail while the rest of the pool idles.

This module is the pure decision half of the fix, mirroring the shape of
:class:`~repro.core.launcher.RankRespawnPolicy` (observations in,
decisions out; no sockets, no processes, injected clocks):

* :class:`SchedulingConfig` — the knobs (``StudyConfig(scheduling=...)``
  accepts an instance or a compact spec string via
  :func:`parse_scheduling`);
* :class:`SchedulingPolicy` — EWMA per-worker throughput tracking fed by
  group-completion reports, speculative re-execution verdicts (re-issue
  a group to a second worker once its running time exceeds a multiple of
  the fleet-median group duration; first completion wins and the
  duplicate is discarded exactly by the same replay protection that
  absorbs rank-respawn re-runs), and work stealing (a demonstrably slow
  worker is refused the last queued groups so fast workers drain the
  tail);
* :class:`ElasticPoolPolicy` — watermark bookkeeping for elastic pool
  resize; the :class:`~repro.net.supervisor.PoolSupervisor` executes its
  spawn/retire verdicts against real worker processes.

Exactness: a speculative duplicate streams byte-identical field data (a
group's simulations are deterministic functions of the shared design),
and every (group, timestep) is integrated exactly once per rank —
whichever copy completes its staging first wins, the other's messages
are discard-on-replay no-ops.  Speculation therefore requires
``discard_on_replay`` and never perturbs any exact-merge statistic.
"""

from __future__ import annotations

import statistics as _statistics
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "SchedulingConfig",
    "SchedulingPolicy",
    "ElasticPoolPolicy",
    "parse_scheduling",
]


@dataclass(frozen=True)
class SchedulingConfig:
    """Knobs for the coordinator's scheduling policy layer.

    All features default off: a default study schedules exactly like the
    pre-policy coordinator (plain FIFO).  ``StudyConfig(scheduling=...)``
    accepts an instance or a :func:`parse_scheduling` spec string.
    """

    # --- speculative re-execution ------------------------------------
    speculate: bool = False
    #: re-issue a group once its running time exceeds this multiple of
    #: the fleet-median group duration
    multiple: float = 3.0
    #: completions needed before the fleet median is trusted (also the
    #: per-worker sample floor for work-stealing verdicts)
    min_done: int = 3
    #: per-study budget of speculative re-issues
    speculation_budget: int = 32
    #: EWMA smoothing for per-worker seconds-per-group
    alpha: float = 0.3

    # --- work stealing ------------------------------------------------
    steal: bool = False
    #: a worker whose EWMA duration exceeds ``steal_ratio`` x the fleet
    #: median is held back from the queue tail
    steal_ratio: float = 2.0

    # --- elastic pool resize -------------------------------------------
    elastic: bool = False
    #: spawn an extra worker while queue depth exceeds this
    high_water: int = 4
    #: retire an elastic worker while queue depth is below this
    low_water: int = 1
    #: most extra workers alive at once
    max_extra: int = 4
    #: per-study spawn budget (mirrors ``max_rank_respawns``)
    spawn_budget: int = 8
    #: never retire below this many live workers
    min_workers: int = 1
    #: seconds between resize actions (gradual ramp, no thrash)
    cooldown: float = 1.0

    def __post_init__(self):
        if self.multiple <= 1.0:
            raise ValueError("speculation multiple must be > 1")
        if self.min_done < 1:
            raise ValueError("min_done must be >= 1")
        if self.speculation_budget < 0:
            raise ValueError("speculation_budget must be >= 0")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.steal_ratio <= 1.0:
            raise ValueError("steal_ratio must be > 1")
        if self.low_water < 0:
            raise ValueError("low_water must be >= 0")
        if self.high_water <= self.low_water:
            raise ValueError("high_water must exceed low_water")
        if self.max_extra < 1:
            raise ValueError("max_extra must be >= 1")
        if self.spawn_budget < 0:
            raise ValueError("spawn_budget must be >= 0")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be > 0")

    @property
    def enabled(self) -> bool:
        """Does any feature deviate from plain FIFO?"""
        return self.speculate or self.steal or self.elastic


_CLAUSE_PARAMS = {
    "speculate": {
        "multiple": float, "min_done": int, "budget": int, "alpha": float,
    },
    "steal": {"ratio": float},
    "elastic": {
        "high": int, "low": int, "max": int, "budget": int,
        "min": int, "cooldown": float,
    },
}

_PARAM_FIELDS = {
    ("speculate", "budget"): "speculation_budget",
    ("steal", "ratio"): "steal_ratio",
    ("elastic", "high"): "high_water",
    ("elastic", "low"): "low_water",
    ("elastic", "max"): "max_extra",
    ("elastic", "budget"): "spawn_budget",
    ("elastic", "min"): "min_workers",
}


def parse_scheduling(spec: str) -> SchedulingConfig:
    """Scheduling config from a compact spec string.

    Grammar mirrors the fault specs: ``;``-separated feature clauses,
    each ``kind[:key=value[,key=value...]]``::

        speculate                      speculate:multiple=2.5,min_done=1
        speculate;steal                elastic:high=6,low=1,max=4
        fifo                           (everything off, the default)

    Clauses: ``speculate`` (keys ``multiple``, ``min_done``, ``budget``,
    ``alpha``), ``steal`` (key ``ratio``), ``elastic`` (keys ``high``,
    ``low``, ``max``, ``budget``, ``min``, ``cooldown``), ``fifo`` (no
    keys; explicit no-op so scripts can spell the default).
    """
    overrides: Dict[str, object] = {}
    for clause in filter(None, (c.strip() for c in spec.split(";"))):
        kind, _, rest = clause.partition(":")
        kind = kind.strip()
        if kind == "fifo":
            if rest:
                raise ValueError(f"'fifo' takes no parameters: {clause!r}")
            continue
        if kind not in _CLAUSE_PARAMS:
            raise ValueError(
                f"unknown scheduling clause {kind!r} "
                "(use speculate | steal | elastic | fifo)"
            )
        overrides[kind] = True
        allowed = _CLAUSE_PARAMS[kind]
        for item in filter(None, rest.split(",")):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq:
                raise ValueError(
                    f"malformed scheduling parameter {item!r} in {clause!r}"
                )
            if key not in allowed:
                raise ValueError(
                    f"unknown {kind} parameter {key!r} "
                    f"(allowed: {sorted(allowed)})"
                )
            field = _PARAM_FIELDS.get((kind, key), key)
            overrides[field] = allowed[key](value.strip())
    return SchedulingConfig(**overrides)


class SchedulingPolicy:
    """EWMA throughput tracking + speculation/steal verdicts.

    Pure bookkeeping over what the coordinator observes (assignments,
    completions, worker departures); the coordinator holds its own lock
    while calling in, so no locking lives here.  All clocks are injected
    ``now`` values (``time.monotonic`` in production, plain floats in
    tests).
    """

    def __init__(self, config: SchedulingConfig):
        self.config = config
        #: smoothed seconds-per-group per live worker
        self.ewma: Dict[int, float] = {}
        self.completions: Dict[int, int] = {}
        self._started: Dict[Tuple[int, int], float] = {}
        self._durations: Deque[float] = deque(maxlen=65)
        #: group ids re-issued speculatively (may repeat across respawns)
        self.speculated: List[int] = []
        self.speculation_wins = 0
        self.duplicates_discarded = 0
        self.holds = 0

    # ---------------------------------------------------------------- #
    # observations
    # ---------------------------------------------------------------- #
    def worker_left(self, wid: int) -> None:
        """A worker disconnected: its speed no longer describes the fleet."""
        self.ewma.pop(wid, None)
        self.completions.pop(wid, None)
        for key in [k for k in self._started if k[0] == wid]:
            del self._started[key]

    def assigned(self, wid: int, gid: int, now: float) -> None:
        self._started[(wid, gid)] = now

    def completed(self, wid: int, gid: int, now: float) -> Optional[float]:
        """A group-completion report: feed the worker's EWMA."""
        start = self._started.pop((wid, gid), None)
        if start is None:
            return None
        duration = max(now - start, 0.0)
        prev = self.ewma.get(wid)
        alpha = self.config.alpha
        self.ewma[wid] = (
            duration if prev is None else alpha * duration + (1 - alpha) * prev
        )
        self.completions[wid] = self.completions.get(wid, 0) + 1
        self._durations.append(duration)
        return duration

    def discarded(self, wid: int, gid: int) -> None:
        """An attempt settled by someone else (speculation loser, stale
        respawn attempt): stop timing it without feeding the EWMA."""
        if self._started.pop((wid, gid), None) is not None:
            self.duplicates_discarded += 1

    # ---------------------------------------------------------------- #
    # verdicts
    # ---------------------------------------------------------------- #
    def median_duration(self) -> Optional[float]:
        """Fleet-median group duration, once enough groups completed."""
        if len(self._durations) < self.config.min_done:
            return None
        return float(_statistics.median(self._durations))

    def speculation_candidate(
        self, wid: int, assigned: Mapping[int, int], now: float
    ) -> Optional[int]:
        """Straggling group worth re-issuing to idle worker ``wid``.

        Only called when the queue is empty.  A group qualifies when it
        has exactly one running copy, held by a *different* worker, and
        has been running longer than ``multiple`` x the fleet median.
        Returns the longest-overdue group id, or None.
        """
        cfg = self.config
        if not cfg.speculate or len(self.speculated) >= cfg.speculation_budget:
            return None
        median = self.median_duration()
        if median is None or median <= 0.0:
            return None
        threshold = cfg.multiple * median
        copies = Counter(assigned.values())
        best: Optional[Tuple[float, int]] = None
        for (holder, gid), start in self._started.items():
            if holder == wid or copies.get(gid, 0) != 1:
                continue
            running = now - start
            if running <= threshold:
                continue
            if best is None or running > best[0]:
                best = (running, gid)
        return None if best is None else best[1]

    def record_speculation(self, gid: int) -> None:
        self.speculated.append(gid)

    def record_win(self, gid: int) -> None:
        """A speculative copy finished before the original."""
        self.speculation_wins += 1

    def should_hold_back(self, wid: int, queue_depth: int) -> bool:
        """Work stealing: refuse the queue tail to a demonstrably slow
        worker while enough faster workers are alive to drain it.

        Holding back is only ever a deferral — if every faster worker
        disconnects, the slow worker's next request is served normally,
        so the queue cannot deadlock on a vanished fleet.
        """
        cfg = self.config
        if not cfg.steal or queue_depth <= 0:
            return False
        if self.completions.get(wid, 0) < cfg.min_done:
            return False
        median = self.median_duration()
        if median is None or median <= 0.0:
            return False
        mine = self.ewma.get(wid)
        if mine is None or mine <= cfg.steal_ratio * median:
            return False
        faster = sum(
            1
            for other, speed in self.ewma.items()
            if other != wid
            and speed <= median
            and self.completions.get(other, 0) >= cfg.min_done
        )
        if faster == 0 or queue_depth > faster:
            return False
        self.holds += 1
        return True

    # ---------------------------------------------------------------- #
    def summary(self) -> dict:
        return {
            "speculated_groups": list(self.speculated),
            "speculation_wins": self.speculation_wins,
            "duplicates_discarded": self.duplicates_discarded,
            "steal_holds": self.holds,
            "worker_ewma_seconds": dict(self.ewma),
        }


class ElasticPoolPolicy:
    """Watermark bookkeeping for elastic worker-pool resize.

    The decision half of the paper's Fig. 6 elastic ramp against a live
    pool: spawn while the queue is deep, retire while it is drained,
    never thrash (cooldown) and never spend past the budget.  The
    :class:`~repro.net.supervisor.PoolSupervisor` executes the verdicts.
    """

    def __init__(self, config: SchedulingConfig):
        self.config = config
        self.spawned = 0
        self.retired = 0
        self._live_extra = 0
        self._last_action: Optional[float] = None

    def _cooling(self, now: float) -> bool:
        return (
            self._last_action is not None
            and now - self._last_action < self.config.cooldown
        )

    def want_spawn(self, queue_depth: int, active_workers: int, now: float) -> bool:
        cfg = self.config
        return (
            cfg.elastic
            and queue_depth > cfg.high_water
            and active_workers >= 1  # the pool exists (rendezvous is up)
            and self.spawned < cfg.spawn_budget
            and self._live_extra < cfg.max_extra
            and not self._cooling(now)
        )

    def record_spawn(self, now: float) -> None:
        self.spawned += 1
        self._live_extra += 1
        self._last_action = now

    def want_retire(self, queue_depth: int, active_workers: int, now: float) -> bool:
        cfg = self.config
        return (
            cfg.elastic
            and queue_depth < cfg.low_water
            and active_workers > cfg.min_workers
            and self._live_extra > 0
            and not self._cooling(now)
        )

    def record_retire(self, now: float) -> None:
        self.retired += 1
        self._live_extra = max(0, self._live_extra - 1)
        self._last_action = now

    def extra_lost(self, now: float) -> None:
        """An elastic worker died un-retired: its slot frees up (the
        spend stays counted against the budget, the cooldown is not
        reset — a death is not a resize action)."""
        self._live_extra = max(0, self._live_extra - 1)
