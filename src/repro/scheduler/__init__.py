"""Batch-scheduler substrate (SLURM-like, discrete-event).

The paper's launcher submits Melissa Server and every simulation group as
*independent batch jobs* (Sec. 4.1.4) — that independence is what makes
the framework elastic (the machine's scheduler grows/shrinks the study
with cluster load) and fault-tolerant (killing and resubmitting a group is
an ordinary scheduler operation).  This package models exactly that
surface:

* a node pool with FIFO + optional backfill allocation;
* job lifecycle PENDING -> RUNNING -> {COMPLETED, FAILED, CANCELLED,
  TIMEOUT}, with walltime enforcement;
* a submission-rate cap (the paper was limited to 500 simultaneous
  submissions on Curie);
* virtual time throughout — the driver (sequential runtime or perf model)
  ticks the clock, so tests are deterministic and fast.

:mod:`repro.scheduler.policy` is the *live* counterpart: the
coordinator-side scheduling policy layer (EWMA straggler detection,
speculative re-execution, work stealing, elastic pool resize) that gives
the socket deployment the elasticity the batch substrate models in
virtual time.
"""

from repro.scheduler.job import Job, JobState
from repro.scheduler.batch import BatchScheduler, SchedulerError
from repro.scheduler.policy import (
    ElasticPoolPolicy,
    SchedulingConfig,
    SchedulingPolicy,
    parse_scheduling,
)

__all__ = [
    "Job",
    "JobState",
    "BatchScheduler",
    "SchedulerError",
    "ElasticPoolPolicy",
    "SchedulingConfig",
    "SchedulingPolicy",
    "parse_scheduling",
]
