"""Job objects and lifecycle states."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class JobState(enum.Enum):
    """SLURM-like lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"  # killed by the scheduler at walltime

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
        )


_job_ids = itertools.count(1)


@dataclass
class Job:
    """One batch job: resource request + bookkeeping.

    Attributes
    ----------
    nodes:
        Node count requested (a simulation group = sims_per_group x
        nodes_per_sim in the paper's campaign; the server is its own job).
    walltime:
        Maximum allowed run time (virtual seconds); exceeded -> TIMEOUT.
    payload:
        Opaque owner data (e.g. the group id the launcher attached).
    """

    nodes: int
    walltime: float
    name: str = ""
    payload: Any = None
    job_id: int = field(default_factory=lambda: next(_job_ids))
    state: JobState = JobState.PENDING
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("job must request at least one node")
        if self.walltime <= 0:
            raise ValueError("walltime must be positive")

    @property
    def queue_wait(self) -> Optional[float]:
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time
