"""FIFO + backfill batch scheduler over a fixed node pool, in virtual time.

The driver owns the clock: it calls :meth:`BatchScheduler.tick` with the
current virtual time whenever it wants allocation/walltime decisions made.
Job *completion* is reported by the code that executes the job (the
runtime or the performance model) via :meth:`complete` / :meth:`fail` —
the scheduler only decides who runs where and kills walltime offenders,
exactly the division of labour of a real cluster.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.scheduler.job import Job, JobState


class SchedulerError(RuntimeError):
    """Invalid scheduler operation (unknown job, bad state transition...)."""


class BatchScheduler:
    """Node-pool allocator with FIFO queueing and optional backfill.

    Parameters
    ----------
    total_nodes:
        Machine size in nodes.
    max_pending:
        Submission cap: ``submit`` raises once this many jobs are pending
        (the paper's 500-simultaneous-submissions limit on Curie); the
        launcher paces itself around it.
    backfill:
        If True, a job further down the queue may start when the head job
        does not fit but the smaller one does (conservative backfill
        without reservations — enough to reproduce the elastic ramp-up of
        Fig. 6, where small groups fill in around the server job).
    """

    def __init__(
        self,
        total_nodes: int,
        max_pending: Optional[int] = None,
        backfill: bool = True,
    ):
        if total_nodes < 1:
            raise ValueError("total_nodes must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive or None")
        self.total_nodes = total_nodes
        self.max_pending = max_pending
        self.backfill = backfill
        self.jobs: Dict[int, Job] = {}
        self._queue: List[int] = []  # pending job ids, submit order
        self._running: Dict[int, Job] = {}
        self.nodes_in_use = 0
        # history of (time, event, job_id) for reporting
        self.log: List[tuple] = []

    # ------------------------------------------------------------------ #
    @property
    def free_nodes(self) -> int:
        return self.total_nodes - self.nodes_in_use

    @property
    def pending_jobs(self) -> List[Job]:
        return [self.jobs[j] for j in self._queue]

    @property
    def running_jobs(self) -> List[Job]:
        return list(self._running.values())

    def job(self, job_id: int) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError as exc:
            raise SchedulerError(f"unknown job {job_id}") from exc

    # ------------------------------------------------------------------ #
    def submit(self, job: Job, now: float) -> int:
        """Queue a job; returns its id.  Raises when the queue is full."""
        if job.nodes > self.total_nodes:
            raise SchedulerError(
                f"job {job.name or job.job_id} requests {job.nodes} nodes, "
                f"machine has {self.total_nodes}"
            )
        if self.max_pending is not None and len(self._queue) >= self.max_pending:
            raise SchedulerError("submission limit reached")
        if job.job_id in self.jobs:
            raise SchedulerError(f"job {job.job_id} already submitted")
        job.state = JobState.PENDING
        job.submit_time = now
        self.jobs[job.job_id] = job
        self._queue.append(job.job_id)
        self.log.append((now, "submit", job.job_id))
        return job.job_id

    def can_submit(self) -> bool:
        return self.max_pending is None or len(self._queue) < self.max_pending

    # ------------------------------------------------------------------ #
    def tick(self, now: float) -> List[Job]:
        """Kill walltime offenders, then start whatever fits.  Returns
        the list of jobs started this tick (in start order)."""
        self._enforce_walltime(now)
        started: List[Job] = []
        if not self._queue:
            return started
        remaining: List[int] = []
        blocked_head = False
        for job_id in self._queue:
            job = self.jobs[job_id]
            fits = job.nodes <= self.free_nodes
            if fits and (not blocked_head or self.backfill):
                self._start(job, now)
                started.append(job)
            else:
                blocked_head = True
                remaining.append(job_id)
        self._queue = remaining
        return started

    def _start(self, job: Job, now: float) -> None:
        job.state = JobState.RUNNING
        job.start_time = now
        self.nodes_in_use += job.nodes
        self._running[job.job_id] = job
        self.log.append((now, "start", job.job_id))

    def _enforce_walltime(self, now: float) -> None:
        for job in list(self._running.values()):
            if now - job.start_time >= job.walltime:
                self._finish(job, JobState.TIMEOUT, now)

    # ------------------------------------------------------------------ #
    def complete(self, job_id: int, now: float) -> None:
        """Owner reports successful completion."""
        self._finish(self._require_running(job_id), JobState.COMPLETED, now)

    def fail(self, job_id: int, now: float) -> None:
        """Owner reports job failure (crash, bad parameters...)."""
        self._finish(self._require_running(job_id), JobState.FAILED, now)

    def cancel(self, job_id: int, now: float) -> None:
        """Kill a pending or running job (launcher fault handling)."""
        job = self.job(job_id)
        if job.state == JobState.PENDING:
            self._queue.remove(job_id)
            job.state = JobState.CANCELLED
            job.end_time = now
            self.log.append((now, "cancel", job_id))
        elif job.state == JobState.RUNNING:
            self._finish(job, JobState.CANCELLED, now)
        elif job.state.terminal:
            raise SchedulerError(f"job {job_id} already terminal ({job.state})")

    def _require_running(self, job_id: int) -> Job:
        job = self.job(job_id)
        if job.state != JobState.RUNNING:
            raise SchedulerError(f"job {job_id} is not running ({job.state})")
        return job

    def _finish(self, job: Job, state: JobState, now: float) -> None:
        job.state = state
        job.end_time = now
        self.nodes_in_use -= job.nodes
        del self._running[job.job_id]
        self.log.append((now, state.value, job.job_id))

    # ------------------------------------------------------------------ #
    def utilization(self) -> float:
        """Instantaneous fraction of nodes busy."""
        return self.nodes_in_use / self.total_nodes

    def counts(self) -> Dict[str, int]:
        out = {state.value: 0 for state in JobState}
        for job in self.jobs.values():
            out[job.state.value] += 1
        return out
