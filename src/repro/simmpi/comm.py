"""Thread-backed communicator with mpi4py-like point-to-point and collectives.

Each rank is one Python thread; point-to-point messages travel through
per-(source, dest, tag) queues, and collectives are built from a shared
reusable barrier plus a scratch exchange slot.  NumPy payloads move by
reference — the GIL makes the data plane serialization-free.

This is deliberately a *small* MPI: blocking calls only, COMM_WORLD only,
deterministic tag matching.  It exists to execute the paper's in-group
gather and server-side SPMD logic on a laptop, not to benchmark networks
(wall-clock performance claims come from :mod:`repro.perfmodel` instead).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

ANY_TAG = -1
_DEFAULT_TIMEOUT = 60.0


class MPIError(RuntimeError):
    """Raised on communicator misuse or on timeout (deadlock guard)."""


class _World:
    """Shared state of one communicator group."""

    def __init__(self, size: int):
        self.size = size
        self.queues: Dict[Tuple[int, int], "queue.Queue[Tuple[int, Any]]"] = {
            (src, dst): queue.Queue()
            for src in range(size)
            for dst in range(size)
        }
        self.barrier = threading.Barrier(size)
        # collective scratch: one slot per rank, reused between barriers
        self.slots: List[Any] = [None] * size
        self.failures: List[BaseException] = []
        self.failure_lock = threading.Lock()


class Communicator:
    """Per-rank handle onto a :class:`_World` (mpi4py-flavoured API)."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self._rank = rank

    # ------------------------------------------------------------------ #
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        self._world.queues[(self._rank, dest)].put((tag, obj))

    def recv(self, source: int, tag: int = ANY_TAG, timeout: float = _DEFAULT_TIMEOUT) -> Any:
        """Blocking receive from ``source``; tag must match unless ANY_TAG.

        Messages from one source are delivered in send order; a tag
        mismatch at the queue head is an error (deterministic matching
        keeps tests honest about protocol ordering).
        """
        self._check_rank(source)
        try:
            got_tag, obj = self._world.queues[(source, self._rank)].get(
                timeout=timeout
            )
        except queue.Empty as exc:
            raise MPIError(
                f"rank {self._rank}: recv from {source} timed out"
            ) from exc
        if tag != ANY_TAG and got_tag != tag:
            raise MPIError(
                f"rank {self._rank}: expected tag {tag} from {source}, got {got_tag}"
            )
        return obj

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def barrier(self, timeout: float = _DEFAULT_TIMEOUT) -> None:
        try:
            self._world.barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as exc:
            raise MPIError(f"rank {self._rank}: barrier broken/timeout") from exc

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root)
        if self._rank == root:
            self._world.slots[root] = obj
        self.barrier()
        result = self._world.slots[root]
        self.barrier()  # nobody reuses the slot before all have read
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        self._check_rank(root)
        self._world.slots[self._rank] = obj
        self.barrier()
        result = list(self._world.slots) if self._rank == root else None
        self.barrier()
        return result

    def allgather(self, obj: Any) -> List[Any]:
        self._world.slots[self._rank] = obj
        self.barrier()
        result = list(self._world.slots)
        self.barrier()
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        self._check_rank(root)
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError("scatter requires one object per rank at root")
            self._world.slots[:] = list(objs)
        self.barrier()
        result = self._world.slots[self._rank]
        self.barrier()
        return result

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        gathered = self.gather(obj, root=root)
        if self._rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        gathered = self.allgather(obj)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    # ------------------------------------------------------------------ #
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._world.size:
            raise MPIError(f"rank {rank} out of range [0, {self._world.size})")


def run_mpi(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = _DEFAULT_TIMEOUT,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` thread-ranks; return results.

    The moral equivalent of ``mpiexec -n nranks``.  If any rank raises,
    the first exception is re-raised in the caller after all threads are
    joined (remaining ranks may observe broken barriers — that is the
    realistic failure mode).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    world = _World(nranks)
    results: List[Any] = [None] * nranks

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with world.failure_lock:
                world.failures.append(exc)
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.barrier.abort()
            raise MPIError("run_mpi: rank thread did not finish (deadlock?)")
    if world.failures:
        raise world.failures[0]
    return results
