"""In-process MPI subset (thread-backed) standing in for real MPI.

The paper's server is MPI-parallel and each simulation group is an MPMD
MPI run whose members gather per-timestep data onto a designated *main*
simulation via ``MPI_Gather`` (Sec. 4.1.2).  mpi4py is not available in
this environment, so this package provides the small subset those code
paths need, with mpi4py-compatible semantics and naming:

* :func:`run_mpi` launches N ranks as threads over a shared
  :class:`Communicator` (the moral equivalent of ``mpiexec -n N``);
* lowercase methods (``send``/``recv``/``bcast``/``gather``) move generic
  Python objects; uppercase-style buffer variants are unnecessary here
  because NumPy arrays are passed by reference within a process — zero
  copies, which is *faster* than real MPI, not slower;
* collectives: ``barrier``, ``bcast``, ``gather``, ``scatter``,
  ``allgather``, ``reduce``, ``allreduce``.

The data-path logic in :mod:`repro.core` is written against this API, so
porting it onto real mpi4py is a rename.
"""

from repro.simmpi.comm import Communicator, MPIError, run_mpi

__all__ = ["Communicator", "MPIError", "run_mpi"]
