"""High-level study facade: one object from configuration to results.

Wraps the full stack (design -> launcher -> scheduler -> groups -> server)
behind two constructors:

* :meth:`SensitivityStudy.for_function` — any callable model with a
  :class:`~repro.sampling.ParameterSpace` (scalar output, 1 'cell');
* :meth:`SensitivityStudy.for_tube_bundle` — the paper's CFD use case.

``run()`` executes on the deterministic sequential runtime by default;
pass ``runtime="threaded"`` for the thread-concurrent driver,
``runtime="process"`` for the multi-core share-nothing driver, or
``runtime="distributed"`` for the socket-transport driver (loopback
rank/worker processes here; the same processes span hosts via the CLI).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.config import StudyConfig
from repro.core.group import FunctionSimulation, SimulationFactory
from repro.core.results import StudyResults
from repro.faults import FaultPlan
from repro.sampling import ParameterSpace
from repro.stats import StatisticsConfig


class SensitivityStudy:
    """One in-transit global sensitivity analysis, end to end."""

    def __init__(self, config: StudyConfig, factory: SimulationFactory):
        self.config = config
        self.factory = factory
        self.results: Optional[StudyResults] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def for_function(
        cls,
        fn,
        ngroups: int,
        space: Optional[ParameterSpace] = None,
        ntimesteps: int = 1,
        seed: int = 0,
        server_ranks: int = 1,
        **config_overrides,
    ) -> "SensitivityStudy":
        """Study of a plain Python model ``fn(x) -> scalar``.

        ``fn`` may carry its own ``space()`` method (the analytic test
        functions do); otherwise pass ``space`` explicitly.
        """
        if space is None:
            if not hasattr(fn, "space"):
                raise ValueError("pass a ParameterSpace or a model with .space()")
            space = fn.space()
        config = StudyConfig(
            space=space,
            ngroups=ngroups,
            ntimesteps=ntimesteps,
            ncells=1,
            seed=seed,
            server_ranks=server_ranks,
            client_ranks=1,
            **config_overrides,
        )

        def factory(params: np.ndarray, sim_id: int) -> FunctionSimulation:
            return FunctionSimulation(fn, params, ntimesteps=ntimesteps,
                                      simulation_id=sim_id)

        return cls(config, factory)

    @classmethod
    def for_tube_bundle(
        cls,
        case=None,
        ngroups: int = 50,
        seed: int = 0,
        server_ranks: int = 4,
        client_ranks: int = 2,
        **config_overrides,
    ) -> "SensitivityStudy":
        """The paper's use case on a :class:`~repro.solver.TubeBundleCase`."""
        from repro.solver import TubeBundleCase

        if case is None:
            case = TubeBundleCase()
        config = StudyConfig(
            space=case.parameter_space(),
            ngroups=ngroups,
            ntimesteps=case.ntimesteps,
            ncells=case.ncells,
            seed=seed,
            server_ranks=server_ranks,
            client_ranks=client_ranks,
            **config_overrides,
        )

        def factory(params: np.ndarray, sim_id: int):
            return case.simulation(params, simulation_id=sim_id)

        study = cls(config, factory)
        study.case = case
        return study

    # ------------------------------------------------------------------ #
    def run(
        self,
        runtime: str = "sequential",
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_dir=None,
        max_time: float = 1e7,
        **runtime_kwargs,
    ) -> StudyResults:
        """Execute the study and cache/return its results."""
        if runtime == "sequential":
            from repro.runtime import SequentialRuntime

            if fault_plan is not None and (
                fault_plan.has_server_rank_faults or fault_plan.has_worker_faults
            ):
                raise ValueError(
                    "server-rank and group-worker faults target real "
                    "serve/work processes; run them with "
                    "runtime='distributed'"
                )
            driver = SequentialRuntime(
                self.config,
                self.factory,
                checkpoint_dir=checkpoint_dir,
                fault_plan=fault_plan,
                **runtime_kwargs,
            )
            self.results = driver.run(max_time=max_time)
            self.driver = driver
        elif runtime == "threaded":
            from repro.runtime import ThreadedRuntime

            _reject_fault_plan("threaded", fault_plan)
            driver = ThreadedRuntime(self.config, self.factory, **runtime_kwargs)
            self.results = driver.run()
            self.driver = driver
        elif runtime == "process":
            from repro.runtime import ProcessRuntime

            _reject_fault_plan("process", fault_plan)
            driver = ProcessRuntime(self.config, self.factory, **runtime_kwargs)
            self.results = driver.run()
            self.driver = driver
        elif runtime == "distributed":
            from repro.runtime import DistributedRuntime

            if fault_plan is not None and not fault_plan.socket_only:
                raise ValueError(
                    "the distributed runtime injects faults into its real "
                    "socket processes (server ranks and group workers) "
                    "only; group faults and virtual-time ServerCrash specs "
                    "require the sequential runtime"
                )
            run_kwargs = {}
            if "timeout" in runtime_kwargs:
                run_kwargs["timeout"] = runtime_kwargs.pop("timeout")
            driver = DistributedRuntime(
                self.config,
                self.factory,
                checkpoint_dir=checkpoint_dir,
                fault_plan=None if fault_plan is None or fault_plan.empty
                else fault_plan,
                **runtime_kwargs,
            )
            self.results = driver.run(**run_kwargs)
            self.driver = driver
        else:
            raise ValueError(f"unknown runtime {runtime!r}")
        return self.results


def _reject_fault_plan(runtime: str, fault_plan: Optional[FaultPlan]) -> None:
    """The threaded/process runtimes inject nothing; point at the right
    driver per fault kind instead of always naming the sequential one."""
    if fault_plan is None or fault_plan.empty:
        return
    target = (
        "distributed"
        if fault_plan.has_server_rank_faults or fault_plan.has_worker_faults
        else "sequential"
    )
    raise ValueError(
        f"the {runtime} runtime cannot inject faults; this plan needs "
        f"runtime={target!r}"
    )
