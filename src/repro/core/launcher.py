"""Melissa Launcher: front-node supervision of the whole study (Sec. 4.1.4).

Responsibilities, mirroring the paper:

* draw the pick-freeze design and define every simulation-group job;
* submit the server job, wait for it, then pace group submissions under
  the batch scheduler's submission cap (Curie limited the authors to 500);
* track heartbeats from the server and kill/restart it from its last
  checkpoint on timeout (Sec. 4.2.3);
* act on the server's unresponsive-group notifications: kill the job if
  it is still running and resubmit a fresh instance of the *same* group
  (discard-on-replay makes the replays harmless, Sec. 4.2.2);
* detect zombie groups itself (job running per the scheduler, yet the
  server never heard from it within the startup timeout);
* count retries per group and give up past the budget (a persistently
  failing group usually means invalid parameters; replacing it would bias
  the statistics, so giving up is the paper's default).

The launcher is intentionally pure bookkeeping over the scheduler — the
runtime delivers it the observations (server reports, heartbeats, job
states) and executes the restart actions it returns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.config import StudyConfig
from repro.sampling.pickfreeze import PickFreezeDesign, draw_design
from repro.scheduler import BatchScheduler, Job, JobState, SchedulerError


class LauncherEvent(enum.Enum):
    SERVER_SUBMITTED = "server_submitted"
    GROUP_SUBMITTED = "group_submitted"
    GROUP_RESTARTED = "group_restarted"
    GROUP_ABANDONED = "group_abandoned"
    SERVER_RESTARTED = "server_restarted"
    RANK_RESPAWNED = "rank_respawned"
    STUDY_CONVERGED = "study_converged"


class RespawnBudgetExceeded(RuntimeError):
    """A server rank kept dying past its respawn budget (Sec. 4.2.3)."""


class RankRespawnPolicy:
    """Launcher-protocol bookkeeping for live server ranks (Sec. 4.2.3).

    The virtual-time :class:`MelissaLauncher` restarts the *whole* server
    job; the distributed deployment checkpoints per rank, so its
    supervisor restarts individual ``repro serve`` processes.  This class
    is the pure decision half of that protocol — heartbeat recency,
    staleness detection, and the per-rank respawn budget — with the same
    observation-in / decision-out shape as the launcher: the supervisor
    feeds it heartbeats and asks it what died and whether a respawn is
    still allowed; killing and spawning processes stays outside.
    """

    def __init__(self, nranks: int, timeout: float, max_respawns: int = 3):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self.nranks = nranks
        self.timeout = timeout
        self.max_respawns = max_respawns
        self.respawns: Dict[int, int] = {r: 0 for r in range(nranks)}
        self.last_heartbeat: Dict[int, float] = {}
        self.events: List[tuple] = []  # (time, LauncherEvent, rank)

    def record_heartbeat(self, rank: int, now: float) -> None:
        self.last_heartbeat[rank] = now

    def forget(self, rank: int) -> None:
        """Stop liveness tracking for a rank (it is dead/being respawned);
        tracking resumes at the respawned instance's first heartbeat."""
        self.last_heartbeat.pop(rank, None)

    def stale_ranks(self, now: float) -> List[int]:
        """Ranks whose heartbeat went silent past ``timeout`` — the
        detection case a closed connection never reports (zombies)."""
        return sorted(
            rank
            for rank, last in self.last_heartbeat.items()
            if now - last > self.timeout
        )

    def may_respawn(self, rank: int) -> bool:
        return self.respawns.get(rank, 0) < self.max_respawns

    def record_respawn(self, rank: int, now: float) -> None:
        """Account one kill-and-respawn; raises past the budget."""
        count = self.respawns.get(rank, 0) + 1
        if count > self.max_respawns:
            raise RespawnBudgetExceeded(
                f"server rank {rank} died {count} time(s); respawn budget "
                f"is {self.max_respawns}"
            )
        self.respawns[rank] = count
        self.forget(rank)
        self.events.append((now, LauncherEvent.RANK_RESPAWNED, rank))

    @property
    def total_respawns(self) -> int:
        return sum(self.respawns.values())


@dataclass
class _GroupRecord:
    group_id: int
    job_id: Optional[int] = None
    retries: int = 0
    abandoned: bool = False  # retry budget exhausted (Sec. 4.2.2)
    cancelled: bool = False  # convergence reached; work no longer needed
    finished: bool = False

    @property
    def resolved(self) -> bool:
        return self.finished or self.abandoned or self.cancelled


class MelissaLauncher:
    """Bookkeeping brain of the study."""

    def __init__(self, config: StudyConfig, scheduler: BatchScheduler):
        self.config = config
        self.scheduler = scheduler
        self.design: PickFreezeDesign = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
        self.records: Dict[int, _GroupRecord] = {
            g: _GroupRecord(group_id=g) for g in range(config.ngroups)
        }
        self._to_submit: List[int] = list(range(config.ngroups))
        self.server_job: Optional[Job] = None
        self.last_server_heartbeat: Optional[float] = None
        self.server_restarts = 0
        self.events: List[tuple] = []  # (time, LauncherEvent, detail)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit_server(self, now: float) -> Job:
        """First job of the study: Melissa Server itself."""
        job = Job(
            nodes=self.config.server_nodes,
            walltime=self.config.server_walltime,
            name="melissa-server",
            payload={"kind": "server"},
        )
        self.scheduler.submit(job, now)
        self.server_job = job
        self.last_server_heartbeat = now
        self.events.append((now, LauncherEvent.SERVER_SUBMITTED, job.job_id))
        return job

    @property
    def server_running(self) -> bool:
        return self.server_job is not None and self.server_job.state == JobState.RUNNING

    def pump_submissions(self, now: float) -> List[int]:
        """Submit queued group jobs while under the submission cap.

        Groups are only submitted once the server job is running (the
        launcher must first retrieve the server address, Sec. 4.1.4).
        """
        if not self.server_running:
            return []
        submitted: List[int] = []
        while self._to_submit and self.scheduler.can_submit():
            group_id = self._to_submit.pop(0)
            record = self.records[group_id]
            if record.resolved:
                continue
            job = Job(
                nodes=self.config.nodes_per_group,
                walltime=self.config.group_walltime,
                name=f"group-{group_id}",
                payload={"kind": "group", "group_id": group_id,
                         "attempt": record.retries},
            )
            self.scheduler.submit(job, now)
            record.job_id = job.job_id
            submitted.append(group_id)
            self.events.append((now, LauncherEvent.GROUP_SUBMITTED, group_id))
        return submitted

    # ------------------------------------------------------------------ #
    # observations from the server
    # ------------------------------------------------------------------ #
    def record_heartbeat(self, now: float) -> None:
        self.last_server_heartbeat = now

    def server_timed_out(self, now: float) -> bool:
        if self.last_server_heartbeat is None:
            return False
        return now - self.last_server_heartbeat > self.config.server_timeout

    def mark_finished(self, group_ids: Set[int]) -> None:
        """Server reported these groups fully integrated."""
        for g in group_ids:
            self.records[g].finished = True

    # ------------------------------------------------------------------ #
    # fault handling (Sec. 4.2.2)
    # ------------------------------------------------------------------ #
    def restart_group(self, group_id: int, now: float) -> Optional[Job]:
        """Kill (if needed) and resubmit one failing group.

        Returns the new job, or None when the retry budget is exhausted
        and the group is abandoned.
        """
        record = self.records[group_id]
        if record.resolved:
            return None
        if record.job_id is not None:
            job = self.scheduler.jobs.get(record.job_id)
            if job is not None and not job.state.terminal:
                self.scheduler.cancel(record.job_id, now)
        if record.retries >= self.config.max_group_retries:
            record.abandoned = True
            self.events.append((now, LauncherEvent.GROUP_ABANDONED, group_id))
            return None
        record.retries += 1
        new_job = Job(
            nodes=self.config.nodes_per_group,
            walltime=self.config.group_walltime,
            name=f"group-{group_id}-retry{record.retries}",
            payload={"kind": "group", "group_id": group_id,
                     "attempt": record.retries},
        )
        self.scheduler.submit(new_job, now)
        record.job_id = new_job.job_id
        self.events.append((now, LauncherEvent.GROUP_RESTARTED, group_id))
        return new_job

    def detect_zombies(self, started_groups: Set[int], now: float) -> List[int]:
        """Groups the server never heard from despite their job having
        started longer than the zombie timeout ago (Sec. 4.2.2).

        Covers both cases the paper lists: a job still *running* silently,
        and a job the scheduler already considers *finished* (completed,
        failed, or walltime-killed) while the server received nothing —
        e.g. a simulation that crashed before its first send.  Jobs the
        launcher cancelled itself are excluded (that is our own restart
        machinery at work, not a fault to detect).
        """
        zombies: List[int] = []
        observable = (
            JobState.RUNNING,
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.TIMEOUT,
        )
        for record in self.records.values():
            if record.resolved or record.job_id is None:
                continue
            if record.group_id in started_groups:
                continue
            job = self.scheduler.jobs.get(record.job_id)
            if job is None or job.state not in observable or job.start_time is None:
                continue
            if now - job.start_time > self.config.zombie_timeout:
                zombies.append(record.group_id)
        return zombies

    def restart_server(self, finished_per_server: Set[int], now: float) -> Job:
        """Server fault protocol (Sec. 4.2.3): kill everything, resubmit
        the server, and requeue every group not finished at checkpoint
        time (replays are deduplicated by discard-on-replay)."""
        if self.server_job is not None and not self.server_job.state.terminal:
            self.scheduler.cancel(self.server_job.job_id, now)
        # kill all running/pending group jobs
        for record in self.records.values():
            if record.job_id is None:
                continue
            job = self.scheduler.jobs.get(record.job_id)
            if job is not None and not job.state.terminal:
                self.scheduler.cancel(record.job_id, now)
            record.job_id = None
        self.server_restarts += 1
        new_server = Job(
            nodes=self.config.server_nodes,
            walltime=self.config.server_walltime,
            name=f"melissa-server-restart{self.server_restarts}",
            payload={"kind": "server"},
        )
        self.scheduler.submit(new_server, now)
        self.server_job = new_server
        self.last_server_heartbeat = now
        # Roll the launcher's completion view back to the checkpoint's:
        # groups that finished AFTER the last backup are gone from the
        # restored statistics and must run again ("the launcher restarts
        # ... the groups considered as finished by the launcher but not
        # the server", Sec. 4.2.3).  Discard-on-replay dedups the rest.
        for record in self.records.values():
            record.finished = record.group_id in finished_per_server
        self._to_submit = [
            record.group_id
            for record in self.records.values()
            if not record.resolved
        ]
        self.events.append((now, LauncherEvent.SERVER_RESTARTED, new_server.job_id))
        return new_server

    # ------------------------------------------------------------------ #
    # convergence-driven extension (Sec. 3.4 / 4.1.5)
    # ------------------------------------------------------------------ #
    def extend_study(self, extra_groups: int, now: float) -> List[int]:
        """Draw fresh independent A/B rows and queue the new groups.

        Statistically valid because all pick-freeze row couples are
        i.i.d. (Sec. 3.2): when the confidence intervals are still too
        wide after the planned groups, the launcher can keep growing the
        study on-the-fly.  Returns the new group ids.
        """
        if extra_groups <= 0:
            raise ValueError("extra_groups must be positive")
        first_new = self.design.ngroups
        rng = np.random.default_rng(
            (self.config.seed, first_new)  # fresh, reproducible stream
        )
        self.design.extend(rng, extra_groups)
        new_ids = list(range(first_new, first_new + extra_groups))
        for g in new_ids:
            self.records[g] = _GroupRecord(group_id=g)
        self._to_submit.extend(new_ids)
        return new_ids

    @property
    def total_groups(self) -> int:
        """Initial groups plus any convergence-driven extensions."""
        return len(self.records)

    # ------------------------------------------------------------------ #
    @property
    def abandoned_groups(self) -> List[int]:
        return sorted(r.group_id for r in self.records.values() if r.abandoned)

    def cancel_outstanding(self) -> List[int]:
        """Convergence stop: mark every unresolved group as cancelled."""
        cancelled = []
        for record in self.records.values():
            if not record.resolved:
                record.cancelled = True
                cancelled.append(record.group_id)
        return sorted(cancelled)

    @property
    def cancelled_groups(self) -> List[int]:
        return sorted(r.group_id for r in self.records.values() if r.cancelled)

    @property
    def outstanding_groups(self) -> List[int]:
        """Groups not yet finished, abandoned, or cancelled."""
        return sorted(
            r.group_id for r in self.records.values() if not r.resolved
        )

    def study_complete(self) -> bool:
        return not self.outstanding_groups

    def group_for_job(self, job_id: int) -> Optional[int]:
        job = self.scheduler.jobs.get(job_id)
        if job is None or not isinstance(job.payload, dict):
            return None
        if job.payload.get("kind") != "group":
            return None
        return int(job.payload["group_id"])
