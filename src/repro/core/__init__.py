"""Melissa core: the three-tier in-transit sensitivity-analysis framework.

* :class:`MelissaServer` — the parallel in-transit server.  Each rank owns
  a spatial partition of the statistics fields, drains its inbound
  channel, stages partial (group, timestep) data until complete, updates
  the iterative Sobol' estimators, and discards the data (Sec. 4.1.1).
  It implements the paper's full fault-tolerance accounting: per-group
  last-integrated timestep, discard-on-replay, timeout detection,
  checkpoint/restart (Sec. 4.2).
* :class:`SimulationGroup` / :class:`GroupExecutor` — the clients: p+2
  synchronized ensemble members with the 3-call integration API
  (Initialize / Process / Finalize) and the two-stage data transfer.
* :class:`MelissaLauncher` — the front-node supervisor: parameter-set
  generation, batch submission, heartbeats, kill-and-restart of failed
  groups and of the server, retry budgets, zombie detection (Sec. 4.1.4,
  4.2).
* :class:`StudyConfig` — one declarative description of a study.
* :mod:`repro.core.convergence` — CI-threshold loopback control
  (Sec. 4.1.5).
"""

from repro.core.config import StudyConfig
from repro.core.server import MelissaServer, ServerRank
from repro.core.group import GroupExecutor, SimulationGroup
from repro.core.launcher import LauncherEvent, MelissaLauncher
from repro.core.convergence import ConvergenceController
from repro.core.results import StudyResults

__all__ = [
    "StudyConfig",
    "MelissaServer",
    "ServerRank",
    "SimulationGroup",
    "GroupExecutor",
    "MelissaLauncher",
    "LauncherEvent",
    "ConvergenceController",
    "StudyResults",
]
