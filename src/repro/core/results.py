"""Study results: assembled ubiquitous maps, intervals, and provenance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.server import MelissaServer
from repro.sobol.confidence import (
    first_order_confidence_interval,
    total_order_confidence_interval,
)


@dataclass
class StudyResults:
    """Everything a user takes away from a finished study.

    Maps are (nparams, ntimesteps, ncells) arrays — the paper's ubiquitous
    Sobol' indices S_k(x, t) and ST_k(x, t) — plus variance/mean maps, the
    number of integrated groups, and the fault/provenance report.
    """

    parameter_names: tuple
    ntimesteps: int
    ncells: int
    groups_integrated: int
    first_order: np.ndarray  # (p, T, ncells)
    total_order: np.ndarray  # (p, T, ncells)
    variance: np.ndarray  # (T, ncells)
    mean: np.ndarray  # (T, ncells)
    provenance: Dict[str, int] = field(default_factory=dict)
    abandoned_groups: List[int] = field(default_factory=list)
    max_interval_width: float = float("nan")
    #: catalog statistics: result name -> (T, *extra, ncells) array (field
    #: axis last), as produced by the configured ``statistics=[...]`` specs
    statistics: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_server(
        cls,
        server: MelissaServer,
        parameter_names: Optional[tuple] = None,
        abandoned_groups: Optional[List[int]] = None,
        rank_maps: Optional[List[dict]] = None,
        max_interval_width: Optional[float] = None,
    ) -> "StudyResults":
        """Assemble results from a finished server.

        Map extraction is batched: one whole-slab correlation pass per
        (rank, timestep) instead of the former ``p x T`` loop of per-map
        calls.  The process runtime passes ``rank_maps`` (per-rank maps
        computed inside the rank workers) and ``max_interval_width`` (the
        convergence scalar max-reduced from per-worker values), so the
        parent does no statistics math at all — only concatenation.
        """
        cfg = server.config
        names = parameter_names or tuple(cfg.space.names)
        t, n = cfg.ntimesteps, cfg.ncells
        maps = server.assemble_maps(rank_maps)
        if max_interval_width is None:
            max_interval_width = server.max_interval_width()
        return cls(
            parameter_names=names,
            ntimesteps=t,
            ncells=n,
            groups_integrated=server.groups_integrated(),
            first_order=maps["first"],
            total_order=maps["total"],
            variance=maps["variance"],
            mean=maps["mean"],
            provenance=server.provenance_report(),
            abandoned_groups=list(abandoned_groups or []),
            max_interval_width=max_interval_width,
            statistics=maps.get("stats", {}),
        )

    # ------------------------------------------------------------------ #
    @property
    def nparams(self) -> int:
        return len(self.parameter_names)

    def first_order_map(self, k: int, timestep: int) -> np.ndarray:
        return self.first_order[k, timestep]

    def total_order_map(self, k: int, timestep: int) -> np.ndarray:
        return self.total_order[k, timestep]

    @property
    def statistic_names(self) -> tuple:
        """Names of every catalog-statistic result field present."""
        return tuple(self.statistics)

    def statistic_map(self, name: str, timestep: int) -> np.ndarray:
        """One catalog-statistic field at one timestep (field axes last)."""
        try:
            stacked = self.statistics[name]
        except KeyError:
            known = ", ".join(self.statistic_names) or "none"
            raise KeyError(
                f"no statistic result '{name}' (available: {known})"
            ) from None
        return stacked[timestep]

    def interaction_residual_map(self, timestep: int) -> np.ndarray:
        """1 - sum_k S_k at one timestep (Sec. 5.5 interaction check)."""
        return 1.0 - np.nansum(self.first_order[:, timestep, :], axis=0)

    def first_order_interval(self, k: int, timestep: int, z: float = 1.96):
        return first_order_confidence_interval(
            self.first_order[k, timestep], self.groups_integrated, z
        )

    def total_order_interval(self, k: int, timestep: int, z: float = 1.96):
        return total_order_confidence_interval(
            self.total_order[k, timestep], self.groups_integrated, z
        )

    # ------------------------------------------------------------------ #
    def spatial_average_indices(self, timestep: int, variance_floor: float = 0.0):
        """Variance-weighted spatial averages of S_k and ST_k at a timestep.

        Cells with variance below ``variance_floor`` are excluded — the
        paper's recommendation (Sec. 5.5): where Var(Y) ~ 0 the indices
        are numerically meaningless.
        """
        var = self.variance[timestep]
        weight = np.where(var > variance_floor, var, 0.0)
        wsum = weight.sum()
        if wsum == 0:
            return (
                np.full(self.nparams, np.nan),
                np.full(self.nparams, np.nan),
            )
        s_avg = np.empty(self.nparams)
        st_avg = np.empty(self.nparams)
        for k in range(self.nparams):
            s = np.nan_to_num(self.first_order[k, timestep])
            st = np.nan_to_num(self.total_order[k, timestep])
            s_avg[k] = (s * weight).sum() / wsum
            st_avg[k] = (st * weight).sum() / wsum
        return s_avg, st_avg

    def summary(self) -> str:
        """Human-readable study recap."""
        lines = [
            f"Study: {self.nparams} parameters, {self.ntimesteps} timesteps, "
            f"{self.ncells} cells",
            f"Groups integrated: {self.groups_integrated}",
            f"Max CI width: {self.max_interval_width:.4f}",
        ]
        if self.statistics:
            lines.append(f"Statistics: {', '.join(self.statistic_names)}")
        if self.abandoned_groups:
            lines.append(f"Abandoned groups: {self.abandoned_groups}")
        for key, value in sorted(self.provenance.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
