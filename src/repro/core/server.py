"""Melissa Server: parallel in-transit statistics aggregation.

Each :class:`ServerRank` owns a contiguous cell partition and processes
whatever messages arrive, in any order across groups (Sec. 4.1.1: "The
data sent by the clients can be processed in any order"; updating is a
purely local operation, no inter-rank communication).

Message handling pipeline per rank:

1. **discard-on-replay** — a message whose timestep is <= the last
   timestep already *integrated* for its group is dropped (Sec. 4.2.1);
2. **staging** — member slices accumulate in a per-(group, timestep)
   buffer until every member has covered every local cell (a group's
   members run synchronously, but slices may arrive from several client
   ranks and interleave with other groups);
3. **integration** — the complete (p+2)-member local fields update the
   iterative Sobol' estimators (and optionally the general statistics on
   the A and B members), then the buffer is discarded.  This is the
   "update and discard" that makes server memory O(one simulation),
   independent of the ensemble size;
4. **accounting** — last-integrated timestep and last-reception time per
   group feed the fault-tolerance protocol (timeout detection, restart
   bookkeeping, final data-provenance report).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro import telemetry as _telemetry
from repro.core.config import StudyConfig
from repro.mesh.partition import BlockPartition
from repro.sobol.martinez import UbiquitousSobolField
from repro.stats.pipeline import StatisticsPipeline
from repro.stats.protocol import StatContext
from repro.transport.message import FieldMessage, GroupFieldMessage, split_by_partition


@dataclass
class _Staging:
    """Partial (group, timestep) data for one rank's cell range."""

    data: np.ndarray  # (nmembers, ncells_local)
    received: np.ndarray  # bool, same shape

    @classmethod
    def empty(cls, nmembers: int, ncells: int) -> "_Staging":
        return cls(
            data=np.zeros((nmembers, ncells)),
            received=np.zeros((nmembers, ncells), dtype=bool),
        )

    @property
    def complete(self) -> bool:
        return bool(self.received.all())


class ServerRank:
    """One MPI-rank's worth of Melissa Server state and logic."""

    def __init__(
        self,
        rank: int,
        config: StudyConfig,
        partition: BlockPartition,
        local_ranks: int = 1,
    ):
        self.rank = rank
        self.config = config
        self.partition = partition
        self.cell_lo, self.cell_hi = partition.range_of(rank)
        self.ncells_local = self.cell_hi - self.cell_lo
        nmembers = config.group_size
        self.nmembers = nmembers
        #: server ranks co-located on this host — the auto fold-thread
        #: ladder is clamped by cpus // local_ranks to avoid oversubscribing
        self.local_ranks = max(1, int(local_ranks))
        self.sobol = UbiquitousSobolField(
            nparams=config.nparams,
            ntimesteps=config.ntimesteps,
            ncells=self.ncells_local,
            kernel=config.kernel,
            fold_threads=config.fold_threads,
            local_ranks=self.local_ranks,
        )
        # the configured statistics catalog: one FieldStatistic instance
        # per (spec, timestep), driven generically.  Member statistics see
        # only the A and B members (the only independent inputs within a
        # group, Sec. 4.1); group statistics consume the whole buffer.
        from repro.kernels import parallel as _parallel

        self.stats = StatisticsPipeline(
            config.statistics,
            StatContext(
                shape=(self.ncells_local,),
                nparams=config.nparams,
                parameter_names=tuple(config.space.names),
            ),
            config.ntimesteps,
            fold_threads=_parallel.eager_threads(
                config.fold_threads, local_ranks=self.local_ranks
            ),
        )
        # fault-tolerance accounting (Sec. 4.2.1)
        self.last_integrated: Dict[int, int] = {}
        self.last_message_time: Dict[int, float] = {}
        self.finished_groups: Set[int] = set()
        self._staging: Dict[Tuple[int, int], _Staging] = {}
        # counters for the final provenance report
        self.messages_processed = 0
        self.messages_discarded = 0
        self.groups_seen: Set[int] = set()
        # telemetry (ISSUE 8): label-bound handles are resolved once here;
        # every hot-path touch is guarded by the registry's enabled flag
        # so a telemetry-off study pays one branch per message
        reg = _telemetry.REGISTRY
        self._telemetry = reg
        rank_label = str(rank)
        self._m_messages = reg.counter(
            "repro_rank_messages_received",
            "data-plane messages handled per server rank",
        ).labels(rank=rank_label)
        self._m_bytes = reg.counter(
            "repro_rank_bytes_received",
            "field payload bytes handled per server rank",
        ).labels(rank=rank_label)
        self._m_discarded = reg.counter(
            "repro_rank_messages_discarded",
            "replay-discarded messages per server rank",
        ).labels(rank=rank_label)
        self._m_fold = reg.histogram(
            "repro_rank_fold_seconds",
            "seconds folding one complete (group, timestep) buffer into "
            "the co-moment engine",
        ).labels(rank=rank_label)
        stat_fold = reg.histogram(
            "repro_stat_fold_seconds",
            "per-statistic fold seconds (catalog rows, per rank)",
        )
        self._m_stat_folds = [
            stat_fold.labels(rank=rank_label, statistic=spec)
            for spec in self.stats.specs
        ]

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def handle(self, msg, now: float) -> bool:
        """Process one inbound message; returns False if discarded."""
        if isinstance(msg, GroupFieldMessage):
            return self._handle_slices(
                msg.group_id, msg.timestep, msg.cell_lo, msg.cell_hi,
                range(msg.nmembers), msg.data, now,
            )
        if isinstance(msg, FieldMessage):
            return self._handle_slices(
                msg.group_id, msg.timestep, msg.cell_lo, msg.cell_hi,
                [msg.member], msg.data[np.newaxis, :], now,
            )
        raise TypeError(f"server cannot handle message type {type(msg)!r}")

    def _handle_slices(
        self,
        group_id: int,
        timestep: int,
        cell_lo: int,
        cell_hi: int,
        members: Sequence[int],
        data: np.ndarray,
        now: float,
    ) -> bool:
        if not (self.cell_lo <= cell_lo < cell_hi <= self.cell_hi):
            raise ValueError(
                f"rank {self.rank} received cells [{cell_lo}, {cell_hi}) "
                f"outside its partition [{self.cell_lo}, {self.cell_hi})"
            )
        if timestep >= self.config.ntimesteps:
            raise ValueError(f"timestep {timestep} beyond study length")
        self.groups_seen.add(group_id)
        self.last_message_time[group_id] = now
        # discard on replay (Sec. 4.2.1): never integrate a timestep twice
        if self.config.discard_on_replay and timestep <= self.last_integrated.get(
            group_id, -1
        ):
            self.messages_discarded += 1
            if self._telemetry.enabled:
                self._m_discarded.inc()
            return False
        key = (group_id, timestep)
        staging = self._staging.get(key)
        if staging is None:
            staging = _Staging.empty(self.nmembers, self.ncells_local)
            self._staging[key] = staging
        lo = cell_lo - self.cell_lo
        hi = cell_hi - self.cell_lo
        for row, member in enumerate(members):
            if not 0 <= member < self.nmembers:
                raise ValueError(f"invalid member index {member}")
            staging.data[member, lo:hi] = data[row]
            staging.received[member, lo:hi] = True
        self.messages_processed += 1
        if self._telemetry.enabled:
            self._m_messages.inc()
            self._m_bytes.inc(data.nbytes)
        if staging.complete:
            self._integrate(group_id, timestep, staging)
            del self._staging[key]
        return True

    def _integrate(self, group_id: int, timestep: int, staging: _Staging) -> None:
        """Fold a complete (group, timestep) into every statistic, then drop."""
        # the staging buffer is already the (p+2, ncells) member stack the
        # batched engine consumes; hand it over by reference (it is about
        # to be discarded) instead of re-slicing it into per-member views
        if self._telemetry.enabled:
            t0 = _time.perf_counter()
            self.sobol.update_group_buffer(timestep, staging.data)
            self._m_fold.observe(_time.perf_counter() - t0)
            if self.stats:
                self.stats.update_timed(
                    timestep, staging.data, self._m_stat_folds
                )
        else:
            self.sobol.update_group_buffer(timestep, staging.data)
            if self.stats:
                self.stats.update(timestep, staging.data)
        prev = self.last_integrated.get(group_id, -1)
        if timestep > prev:
            self.last_integrated[group_id] = timestep
        if timestep == self.config.ntimesteps - 1:
            self.finished_groups.add(group_id)

    # ------------------------------------------------------------------ #
    # fault-tolerance accounting
    # ------------------------------------------------------------------ #
    def running_groups(self) -> Set[int]:
        """Groups started (>= 1 message) but not finished on this rank."""
        return self.groups_seen - self.finished_groups

    def check_timeouts(self, now: float, timeout: float) -> List[int]:
        """Groups whose inter-message gap exceeded ``timeout`` (Sec. 4.2.2)."""
        stale = []
        for group_id in self.running_groups():
            last = self.last_message_time.get(group_id)
            if last is not None and now - last > timeout:
                stale.append(group_id)
        return sorted(stale)

    def forget_group(self, group_id: int) -> None:
        """Drop staging and liveness for a group being restarted.

        The integrated statistics and ``last_integrated`` are kept — that
        is the whole point of discard-on-replay: the restarted instance's
        already-seen timesteps will be dropped.
        """
        self._staging = {
            key: value for key, value in self._staging.items() if key[0] != group_id
        }
        self.last_message_time.pop(group_id, None)

    # ------------------------------------------------------------------ #
    # checkpoint / restart (Sec. 4.2.3)
    # ------------------------------------------------------------------ #
    def checkpoint_state(self) -> dict:
        """Statistics + group accounting.  Staged partials are *not* saved:
        restarted groups will resend them and replay protection keeps the
        integrated state exact."""
        state = {
            "rank": self.rank,
            "cell_lo": self.cell_lo,
            "cell_hi": self.cell_hi,
            "sobol": self.sobol.state_dict(),
            "last_integrated": dict(self.last_integrated),
            "finished_groups": sorted(self.finished_groups),
            "groups_seen": sorted(self.groups_seen),
            "messages_processed": self.messages_processed,
            "messages_discarded": self.messages_discarded,
            "stats": self.stats.state_dict(),
        }
        return state

    def restore_state(self, state: dict) -> None:
        if state["rank"] != self.rank:
            raise ValueError("checkpoint belongs to a different rank")
        if (state["cell_lo"], state["cell_hi"]) != (self.cell_lo, self.cell_hi):
            raise ValueError("checkpoint partition mismatch")
        self.sobol = UbiquitousSobolField.from_state_dict(
            state["sobol"],
            kernel=self.config.kernel,
            fold_threads=self.config.fold_threads,
            local_ranks=self.local_ranks,
        )
        self.last_integrated = {int(k): int(v) for k, v in state["last_integrated"].items()}
        self.finished_groups = set(state["finished_groups"])
        self.groups_seen = set(state["groups_seen"])
        self.messages_processed = int(state["messages_processed"])
        self.messages_discarded = int(state["messages_discarded"])
        stats_state = state.get("stats")
        if stats_state is None:
            if self.stats:
                # restoring a stats-enabled config from a stats-free
                # checkpoint used to silently zero the general statistics;
                # fail loudly instead (the checkpoint fingerprint rejects
                # this earlier with more context)
                raise ValueError(
                    "checkpoint contains no statistics state but this "
                    f"study configures statistics={list(self.stats.specs)}"
                )
        else:
            self.stats.load_state(stats_state)
        self._staging.clear()
        self.last_message_time.clear()

    # ------------------------------------------------------------------ #
    # batched local results (the per-rank half of parallel assembly)
    # ------------------------------------------------------------------ #
    def index_maps(self) -> Dict[str, np.ndarray]:
        """Every derived map of this rank's partition, batched per timestep.

        One ``(p, ncells_local)`` correlation-extraction pass per timestep
        produces both index families; with the process runtime this runs
        INSIDE the rank worker, so assembly parallelizes across ranks and
        the parent only concatenates.
        """
        t_total = self.config.ntimesteps
        p = self.config.nparams
        w = self.ncells_local
        first = np.empty((t_total, p, w))
        total = np.empty((t_total, p, w))
        variance = np.empty((t_total, w))
        mean = np.empty((t_total, w))
        for t in range(t_total):
            first[t], total[t] = self.sobol.index_maps_at(t)
            variance[t] = self.sobol.variance_map(t)
            mean[t] = self.sobol.mean_map(t)
        return {
            "first": first,
            "total": total,
            "variance": variance,
            "mean": mean,
            # catalog statistics: name -> (T, *extra, ncells_local), field
            # axis last so the parent concatenates partitions on axis=-1
            "stats": self.stats.results(),
        }

    @property
    def staged_entries(self) -> int:
        return len(self._staging)


class MelissaServer:
    """The full parallel server: all ranks plus cross-rank reductions.

    In-process, "parallel" means rank objects driven by whichever runtime
    owns the study; each rank's :meth:`ServerRank.handle` is pure local
    work, exactly as in the paper, so driving them sequentially or from
    threads yields identical statistics.
    """

    def __init__(self, config: StudyConfig):
        self.config = config
        self.partition = BlockPartition(config.ncells, config.server_ranks)
        self.ranks = [
            ServerRank(r, config, self.partition) for r in range(config.server_ranks)
        ]

    # ------------------------------------------------------------------ #
    def rank_for_cell(self, cell: int) -> ServerRank:
        return self.ranks[self.partition.owner_of(cell)]

    def handle(self, msg, now: float) -> bool:
        """Route one message to its owning rank(s) (driver convenience).

        Messages straddling a partition boundary are split along the
        fenceposts; returns True only if every chunk was integrated
        (a chunk discarded by replay protection returns False).
        """
        return all(
            [
                self.ranks[rank].handle(chunk, now)
                for rank, chunk in split_by_partition(msg, self.partition)
            ]
        )

    # ------------------------------------------------------------------ #
    # cross-rank views
    # ------------------------------------------------------------------ #
    def finished_groups(self) -> Set[int]:
        """Groups finished on *every* rank (a group is done only when all
        partitions have integrated its final timestep)."""
        finished = self.ranks[0].finished_groups.copy()
        for rank in self.ranks[1:]:
            finished &= rank.finished_groups
        return finished

    def started_groups(self) -> Set[int]:
        started = set()
        for rank in self.ranks:
            started |= rank.groups_seen
        return started

    def running_groups(self) -> Set[int]:
        return self.started_groups() - self.finished_groups()

    def check_timeouts(self, now: float, timeout: float) -> List[int]:
        """Union of per-rank timeout detections (any rank may notice)."""
        stale: Set[int] = set()
        for rank in self.ranks:
            stale.update(rank.check_timeouts(now, timeout))
        return sorted(stale)

    def forget_group(self, group_id: int) -> None:
        for rank in self.ranks:
            rank.forget_group(group_id)

    # ------------------------------------------------------------------ #
    # results assembly
    # ------------------------------------------------------------------ #
    def first_order_map(self, k: int, timestep: int) -> np.ndarray:
        """Global S_k(x) at one timestep, concatenated across ranks."""
        return np.concatenate(
            [r.sobol.first_order_map(k, timestep) for r in self.ranks]
        )

    def total_order_map(self, k: int, timestep: int) -> np.ndarray:
        return np.concatenate(
            [r.sobol.total_order_map(k, timestep) for r in self.ranks]
        )

    def variance_map(self, timestep: int) -> np.ndarray:
        return np.concatenate([r.sobol.variance_map(timestep) for r in self.ranks])

    def mean_map(self, timestep: int) -> np.ndarray:
        return np.concatenate([r.sobol.mean_map(timestep) for r in self.ranks])

    def first_order_all(self, timestep: int) -> np.ndarray:
        """Global ``(p, ncells)`` first-order slab at one timestep."""
        return np.concatenate(
            [r.sobol.first_order_all(timestep) for r in self.ranks], axis=1
        )

    def total_order_all(self, timestep: int) -> np.ndarray:
        return np.concatenate(
            [r.sobol.total_order_all(timestep) for r in self.ranks], axis=1
        )

    def assemble_maps(self, rank_maps=None) -> Dict[str, np.ndarray]:
        """All ubiquitous maps in results layout, assembled per timestep.

        ``rank_maps`` may carry per-rank :meth:`ServerRank.index_maps`
        payloads computed elsewhere (the process runtime ships them from
        the rank workers); otherwise each rank computes its own here.
        Either way the heavy correlation math happens once per (rank,
        timestep) on whole slabs — not once per (parameter, timestep).
        """
        cfg = self.config
        p, t_total, n = cfg.nparams, cfg.ntimesteps, cfg.ncells
        first = np.empty((p, t_total, n))
        total = np.empty((p, t_total, n))
        variance = np.empty((t_total, n))
        mean = np.empty((t_total, n))
        if rank_maps is None:
            rank_maps = [rank.index_maps() for rank in self.ranks]
        for rank, maps in zip(self.ranks, rank_maps):
            lo, hi = rank.cell_lo, rank.cell_hi
            first[:, :, lo:hi] = maps["first"].transpose(1, 0, 2)
            total[:, :, lo:hi] = maps["total"].transpose(1, 0, 2)
            variance[:, lo:hi] = maps["variance"]
            mean[:, lo:hi] = maps["mean"]
        # catalog statistics: the per-rank payloads already carry field
        # axes last, so partitions concatenate along axis=-1 in rank
        # order (the BlockPartition assigns contiguous ascending ranges)
        stats: Dict[str, np.ndarray] = {}
        for name in self.ranks[0].stats.result_names:
            stats[name] = np.concatenate(
                [maps["stats"][name] for maps in rank_maps], axis=-1
            )
        return {
            "first": first,
            "total": total,
            "variance": variance,
            "mean": mean,
            "stats": stats,
        }

    def max_interval_width(self, z: float = 1.96) -> float:
        """Convergence scalar: the largest CI width anywhere (Sec. 4.1.5).

        Ranks whose partition carries no meaningful cells yet are skipped
        (their estimators report NaN); ``inf`` while no rank has data.
        """
        widths = [r.sobol.max_interval_width(z) for r in self.ranks]
        valid = [w for w in widths if not np.isnan(w)]
        return max(valid) if valid else float("inf")

    def groups_integrated(self) -> int:
        """Number of groups whose final timestep is integrated everywhere."""
        return len(self.finished_groups())

    # ------------------------------------------------------------------ #
    def provenance_report(self) -> dict:
        """The "clear vision of the actual data" report (Sec. 4.2.2 end)."""
        return {
            "groups_started": len(self.started_groups()),
            "groups_finished": len(self.finished_groups()),
            "messages_processed": sum(r.messages_processed for r in self.ranks),
            "messages_discarded": sum(r.messages_discarded for r in self.ranks),
            "staged_entries": sum(r.staged_entries for r in self.ranks),
        }

    def memory_floats(self) -> int:
        """Total statistics state across ranks (the 491 GB accounting)."""
        return sum(r.sobol.memory_floats for r in self.ranks)
