"""Convergence control / loopback (Sec. 3.4 and 4.1.5).

The server computes Fisher-z confidence intervals at every Sobol' update;
the controller reduces them to the single scalar the paper keeps ("the
largest value over all the mesh and all the timesteps") and decides:

* **stop early** — every interval is narrower than the target: remaining
  pending jobs can be cancelled;
* **keep going** — intervals still too wide;
* **extend** — the study ran out of groups and is still too wide: draw
  fresh independent rows for A and B and submit new groups (statistically
  valid per Sec. 3.2's closing remark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class ConvergenceDecision(enum.Enum):
    CONTINUE = "continue"
    STOP = "stop"
    EXTEND = "extend"


@dataclass
class ConvergenceController:
    """Threshold policy over the server's max-CI-width scalar.

    Parameters
    ----------
    threshold:
        Target maximum CI width; ``None`` disables early stopping.
    min_groups:
        Never stop before this many groups are integrated (the Fisher
        interval is asymptotic; tiny samples can look deceptively tight).
    extend_batch:
        How many new groups to draw when the study ends unconverged.
    """

    threshold: Optional[float] = None
    min_groups: int = 10
    extend_batch: int = 0
    history: List[tuple] = field(default_factory=list)  # (ngroups, width)

    def assess(
        self, max_interval_width: float, groups_integrated: int,
        groups_outstanding: int,
    ) -> ConvergenceDecision:
        """One control decision from the current server state."""
        self.history.append((groups_integrated, max_interval_width))
        if self.threshold is None:
            return ConvergenceDecision.CONTINUE
        if (
            groups_integrated >= self.min_groups
            and max_interval_width <= self.threshold
        ):
            return ConvergenceDecision.STOP
        if groups_outstanding == 0 and self.extend_batch > 0:
            return ConvergenceDecision.EXTEND
        return ConvergenceDecision.CONTINUE

    @property
    def converged(self) -> bool:
        if self.threshold is None or not self.history:
            return False
        groups, width = self.history[-1]
        return groups >= self.min_groups and width <= self.threshold
