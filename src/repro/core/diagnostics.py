"""Shared study-level diagnostics (one wording for every runtime)."""

from __future__ import annotations

from typing import Iterable


def unfinished_study_message(
    label: str,
    timeout: float,
    ngroups: int,
    done: Iterable[int],
    abandoned: Iterable[int],
    server_ranks: int,
    reported_ranks: Iterable[int],
) -> str:
    """Deadline-breach report naming the unfinished groups and the server
    ranks that never shipped their state — used verbatim by the process
    and distributed runtimes so the diagnostics cannot drift apart."""
    unfinished = sorted(set(range(ngroups)) - set(done) - set(abandoned))
    silent = sorted(set(range(server_ranks)) - set(reported_ranks))
    shown = ", ".join(map(str, unfinished[:12]))
    if len(unfinished) > 12:
        shown += f", ... ({len(unfinished)} total)"
    return (
        f"{label} study did not finish within {timeout:.1f}s: "
        f"{len(unfinished)} group(s) unfinished [{shown}]; "
        f"server rank(s) not reported: {silent}"
    )
