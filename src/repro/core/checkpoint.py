"""Server checkpoint / restart to per-rank files (Sec. 4.2.3, 5.4).

Each server rank independently writes one checkpoint file — exactly the
paper's scheme (512 files of 959 MB each on Lustre in their campaign).
Files are written atomically (temp + rename) so a crash mid-checkpoint
leaves the previous valid generation in place, and each file carries the
study fingerprint so a restart against a different configuration fails
loudly instead of corrupting statistics.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import List, Optional

from repro.core.config import StudyConfig
from repro.core.server import MelissaServer

_FORMAT_VERSION = 2


def _fingerprint(config: StudyConfig) -> dict:
    """The configuration facts a checkpoint must agree on to be loadable.

    ``compute_general_stats`` is part of the fingerprint (format 2):
    restoring a stats-enabled study from a stats-disabled checkpoint used
    to silently zero the A/B-member general statistics because
    ``restore_state`` only loads what is present.
    """
    return {
        "version": _FORMAT_VERSION,
        "ncells": config.ncells,
        "ntimesteps": config.ntimesteps,
        "nparams": config.nparams,
        "server_ranks": config.server_ranks,
        "compute_general_stats": bool(config.compute_general_stats),
    }


def downgrade_payload(payload: dict) -> dict:
    """Rewrite a current-format rank payload as a format-1 file.

    The exact inverse of :func:`migrate_payload`'s fingerprint upgrade
    (v1 had no ``compute_general_stats`` and inferred it on migration
    from the state's ``general`` key), kept HERE so the v1 wire format is
    defined in one place — the migration round-trip tests and any future
    down-level export path share it.  The rank state itself is untouched:
    the stacked Sobol' engine reads both its own layout and the legacy
    per-timestep estimator forest.
    """
    fp = dict(payload["fingerprint"])
    if fp.get("version", 1) != 1:
        fp.pop("compute_general_stats", None)
        fp["version"] = 1
    return {**payload, "fingerprint": fp}


def migrate_payload(payload: dict) -> dict:
    """Upgrade a rank checkpoint payload written by an older format.

    Format 1 -> 2: the fingerprint gains ``compute_general_stats``,
    inferred from whether the rank state carries general statistics (the
    only way a v1 file could have them).  The per-rank Sobol' state keeps
    its legacy per-timestep estimator list; the stacked engine migrates
    it transparently in
    :meth:`repro.sobol.martinez.UbiquitousSobolField.from_state_dict`.
    """
    fp = dict(payload["fingerprint"])
    if fp.get("version", 1) == 1:
        fp["version"] = 2
        fp["compute_general_stats"] = "general" in payload["state"]
        payload = {**payload, "fingerprint": fp}
    return payload


class CheckpointManager:
    """Writes/reads one file per server rank under a checkpoint directory."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoints_written = 0

    def rank_path(self, rank: int) -> Path:
        return self.directory / f"server_rank{rank:04d}.ckpt"

    # ------------------------------------------------------------------ #
    def save_rank(self, rank, config: StudyConfig) -> Path:
        """Atomically checkpoint ONE rank, independent of every other.

        This is the write path a distributed ``repro serve`` process uses:
        each rank checkpoints on its own cadence and can restore across a
        reconnect without any cross-rank coordination — exactly the
        paper's independent per-rank files (Sec. 4.2.3).
        """
        payload = {"fingerprint": _fingerprint(config), "state": rank.checkpoint_state()}
        path = self.rank_path(rank.rank)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic on POSIX
        return path

    def save(self, server: MelissaServer) -> List[Path]:
        """Checkpoint every rank; returns the file paths."""
        paths = [self.save_rank(rank, server.config) for rank in server.ranks]
        self.checkpoints_written += 1
        return paths

    def exists(self) -> bool:
        return any(self.directory.glob("server_rank*.ckpt"))

    def load_rank_state(self, rank_idx: int, config: StudyConfig) -> Optional[dict]:
        """Validated state payload for one rank, or None if no file exists."""
        path = self.rank_path(rank_idx)
        if not path.exists():
            return None
        expected = _fingerprint(config)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload = migrate_payload(payload)
        found = payload["fingerprint"]
        if found != expected:
            differing = sorted(
                key
                for key in set(found) | set(expected)
                if found.get(key) != expected.get(key)
            )
            raise ValueError(
                f"checkpoint {path} was written by an incompatible study "
                f"(mismatched: {', '.join(differing)}): {found} != {expected}"
            )
        return payload["state"]

    def restore_rank(self, rank, config: StudyConfig) -> bool:
        """Load one rank's last checkpoint into ``rank`` if one exists.

        Returns True when a checkpoint was restored — the read half of
        the per-rank reconnect path.
        """
        state = self.load_rank_state(rank.rank, config)
        if state is None:
            return False
        rank.restore_state(state)
        return True

    def restore(self, config: StudyConfig) -> MelissaServer:
        """Build a fresh server and load every rank's last checkpoint."""
        server = MelissaServer(config)
        for rank in server.ranks:
            if not self.restore_rank(rank, config):
                raise FileNotFoundError(f"missing checkpoint for rank {rank.rank}")
        return server

    def bytes_on_disk(self) -> int:
        return sum(p.stat().st_size for p in self.directory.glob("server_rank*.ckpt"))
