"""Server checkpoint / restart to per-rank files (Sec. 4.2.3, 5.4).

Each server rank independently writes one checkpoint file — exactly the
paper's scheme (512 files of 959 MB each on Lustre in their campaign).
Files are written atomically (temp + rename) so a crash mid-checkpoint
leaves the previous valid generation in place, and each file carries the
study fingerprint so a restart against a different configuration fails
loudly instead of corrupting statistics.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import List, Optional

from repro.core.config import StudyConfig
from repro.core.server import MelissaServer

_FORMAT_VERSION = 3


def _fingerprint(config: StudyConfig) -> dict:
    """The configuration facts a checkpoint must agree on to be loadable.

    Format 3 replaces format 2's ``compute_general_stats`` boolean with
    the full canonical ``statistics`` spec list: restoring a study whose
    statistics catalog differs from the checkpoint's would silently drop
    or zero per-plugin state, so the mismatch must fail loudly with the
    differing specs named.
    """
    return {
        "version": _FORMAT_VERSION,
        "ncells": config.ncells,
        "ntimesteps": config.ntimesteps,
        "nparams": config.nparams,
        "server_ranks": config.server_ranks,
        "statistics": list(config.statistics),
    }


def _legacy_general_to_stats(general) -> tuple:
    """Convert a v2 ``general`` state list to (specs, pipeline state).

    A v2 rank state stored one ``FieldStatistics`` payload per timestep,
    each embedding its own config.  The arrays pass through untouched so
    migration is bit-exact; spec strings come from the same
    :func:`repro.stats.legacy_statistics_specs` mapping the ``StudyConfig``
    deprecation shim uses, so a migrated file fingerprints identically to
    a legacy-configured study.
    """
    from repro.stats import legacy_statistics_specs

    if not general:
        return [], {"specs": [], "states": []}
    cfg = general[0]["config"]
    moment_order = int(cfg["moment_order"])
    track_extrema = bool(cfg["track_extrema"])
    thresholds = tuple(float(t) for t in cfg["thresholds"])
    specs = list(legacy_statistics_specs(moment_order, track_extrema, thresholds))
    states = [[fs["moments"] for fs in general]]
    if track_extrema:
        states.append([fs["extrema"] for fs in general])
    if thresholds:
        states.append([{"counters": fs["exceedances"]} for fs in general])
    return specs, {"specs": specs, "states": states}


def _stats_to_legacy_general(stats_state: dict):
    """Convert a v3 pipeline state back to a v2 ``general`` list.

    Only the legacy-expressible subset (one ``moments`` spec, optionally
    ``extrema`` and one ``exceedance``) can round-trip; anything else
    raises, because a v2 reader would silently lose those statistics.
    Returns ``None`` for an empty pipeline (v2 wrote no ``general`` key).
    """
    from repro.stats import legacy_statistics_specs
    from repro.stats.protocol import parse_spec

    specs = list(stats_state["specs"])
    if not specs:
        return None
    moment_order, track_extrema, thresholds = None, False, ()
    rows = {}
    for spec, row in zip(specs, stats_state["states"]):
        name, params = parse_spec(spec)
        rows[name] = row
        if name == "moments":
            moment_order = int(params["order"])
        elif name == "extrema":
            track_extrema = True
        elif name == "exceedance":
            thresholds = tuple(
                float(t) for t in params["thresholds"].split("+")
            )
        else:
            raise ValueError(
                f"statistic '{spec}' is not expressible in checkpoint "
                "format 2; cannot downgrade"
            )
    if moment_order is None or list(
        legacy_statistics_specs(moment_order, track_extrema, thresholds)
    ) != specs:
        raise ValueError(
            f"statistics {specs} do not match the legacy layout "
            "(moments [+ extrema] [+ exceedance]); cannot downgrade"
        )
    ntimesteps = len(rows["moments"])
    general = []
    for t in range(ntimesteps):
        fs = {
            "config": {
                "moment_order": moment_order,
                "track_extrema": track_extrema,
                "thresholds": list(thresholds),
            },
            "moments": rows["moments"][t],
        }
        if track_extrema:
            fs["extrema"] = rows["extrema"][t]
        fs["exceedances"] = (
            list(rows["exceedance"][t]["counters"]) if thresholds else []
        )
        general.append(fs)
    return general


def downgrade_payload(payload: dict) -> dict:
    """Rewrite a current-format rank payload as a format-1 file.

    The exact inverse of :func:`migrate_payload`, kept HERE so the old
    wire formats are defined in one place — the migration round-trip
    tests and any future down-level export path share it.  v3 -> v2
    rewrites the statistics pipeline state back into the per-timestep
    ``general`` list (legacy-expressible catalogs only); v2 -> v1 drops
    ``compute_general_stats`` from the fingerprint.  The Sobol' state is
    untouched: the stacked engine reads both its own layout and the
    legacy per-timestep estimator forest.
    """
    fp = dict(payload["fingerprint"])
    state = dict(payload["state"])
    version = fp.get("version", 1)
    if version >= 3:
        stats_state = state.pop("stats", {"specs": [], "states": []})
        general = _stats_to_legacy_general(stats_state)
        fp.pop("statistics", None)
        fp["compute_general_stats"] = general is not None
        if general is not None:
            state["general"] = general
        fp["version"] = version = 2
    if version == 2:
        fp.pop("compute_general_stats", None)
        fp["version"] = 1
    return {**payload, "fingerprint": fp, "state": state}


def migrate_payload(payload: dict) -> dict:
    """Upgrade a rank checkpoint payload written by an older format.

    Format 1 -> 2: the fingerprint gains ``compute_general_stats``,
    inferred from whether the rank state carries general statistics (the
    only way a v1 file could have them).  Format 2 -> 3: the fingerprint
    gains the canonical ``statistics`` spec list (derived from the config
    embedded in the ``general`` state) and the per-timestep ``general``
    payloads are re-laid out as the statistics pipeline state — arrays
    pass through untouched, so migration is bit-exact.  The per-rank
    Sobol' state keeps whatever layout it has; the stacked engine
    migrates legacy estimator forests transparently in
    :meth:`repro.sobol.martinez.UbiquitousSobolField.from_state_dict`.
    """
    fp = dict(payload["fingerprint"])
    state = dict(payload["state"])
    version = fp.get("version", 1)
    if version == 1:
        fp["compute_general_stats"] = "general" in state
        fp["version"] = version = 2
    if version == 2:
        general = state.pop("general", None)
        specs, stats_state = _legacy_general_to_stats(general)
        state["stats"] = stats_state
        fp.pop("compute_general_stats", None)
        fp["statistics"] = specs
        fp["version"] = 3
    return {**payload, "fingerprint": fp, "state": state}


class CheckpointManager:
    """Writes/reads one file per server rank under a checkpoint directory."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoints_written = 0

    def rank_path(self, rank: int) -> Path:
        return self.directory / f"server_rank{rank:04d}.ckpt"

    # ------------------------------------------------------------------ #
    def save_rank(self, rank, config: StudyConfig) -> Path:
        """Atomically checkpoint ONE rank, independent of every other.

        This is the write path a distributed ``repro serve`` process uses:
        each rank checkpoints on its own cadence and can restore across a
        reconnect without any cross-rank coordination — exactly the
        paper's independent per-rank files (Sec. 4.2.3).
        """
        payload = {"fingerprint": _fingerprint(config), "state": rank.checkpoint_state()}
        path = self.rank_path(rank.rank)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic on POSIX
        return path

    def save(self, server: MelissaServer) -> List[Path]:
        """Checkpoint every rank; returns the file paths."""
        paths = [self.save_rank(rank, server.config) for rank in server.ranks]
        self.checkpoints_written += 1
        return paths

    def exists(self) -> bool:
        return any(self.directory.glob("server_rank*.ckpt"))

    def load_rank_state(self, rank_idx: int, config: StudyConfig) -> Optional[dict]:
        """Validated state payload for one rank, or None if no file exists."""
        path = self.rank_path(rank_idx)
        if not path.exists():
            return None
        expected = _fingerprint(config)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload = migrate_payload(payload)
        found = payload["fingerprint"]
        if found != expected:
            differing = sorted(
                key
                for key in set(found) | set(expected)
                if found.get(key) != expected.get(key)
            )
            raise ValueError(
                f"checkpoint {path} was written by an incompatible study "
                f"(mismatched: {', '.join(differing)}): {found} != {expected}"
            )
        return payload["state"]

    def restore_rank(self, rank, config: StudyConfig) -> bool:
        """Load one rank's last checkpoint into ``rank`` if one exists.

        Returns True when a checkpoint was restored — the read half of
        the per-rank reconnect path.
        """
        state = self.load_rank_state(rank.rank, config)
        if state is None:
            return False
        rank.restore_state(state)
        return True

    def restore(self, config: StudyConfig) -> MelissaServer:
        """Build a fresh server and load every rank's last checkpoint."""
        server = MelissaServer(config)
        for rank in server.ranks:
            if not self.restore_rank(rank, config):
                raise FileNotFoundError(f"missing checkpoint for rank {rank.rank}")
        return server

    def bytes_on_disk(self) -> int:
        return sum(p.stat().st_size for p in self.directory.glob("server_rank*.ckpt"))
