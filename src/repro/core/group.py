"""Simulation groups: p+2 synchronized ensemble members and their client API.

A :class:`SimulationGroup` is the *description* (which pick-freeze row,
which parameter vectors); a :class:`GroupExecutor` is the *running
instance*: it owns the p+2 member simulations, the Melissa 3-call client
API (Initialize / Process / Finalize, Sec. 4.1.3), the two-stage data
transfer (Sec. 4.1.2), and the back-pressure behaviour (a group whose
messages cannot be delivered because the server buffers are full is
*suspended* — it stops advancing until its outbox drains, the Fig. 6a/b
mechanism).

Fault injection hooks (crash at a timestep, zombie, straggler) implement
the failure modes of Sec. 4.2.2 for the fault-tolerance tests.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Protocol, Sequence

import numpy as np

from repro.core.config import StudyConfig
from repro.mesh.partition import BlockPartition
from repro.sampling.pickfreeze import PickFreezeDesign
from repro.transport.base import TransportClient
from repro.transport.message import ConnectionRequest, FieldMessage, GroupFieldMessage
from repro.transport.router import redistribution_plan


class MemberSimulation(Protocol):
    """What a group member must look like (ScalarSimulation satisfies it)."""

    ntimesteps: int

    @property
    def ncells(self) -> int: ...

    @property
    def finished(self) -> bool: ...

    def advance(self) -> tuple: ...


#: factory(parameter_vector, simulation_id) -> MemberSimulation
SimulationFactory = Callable[[np.ndarray, int], MemberSimulation]


class FunctionSimulation:
    """Adapter running a plain function as a 1-cell, configurable-step member.

    Lets analytic models (Ishigami & co) flow through the full framework —
    the quickstart example and many integration tests use it.  With
    ``ntimesteps > 1`` the same scalar is re-emitted each step (a steady
    'field'), which is exactly what order-independence tests want.
    """

    def __init__(self, fn: Callable[[np.ndarray], float], params: np.ndarray,
                 ntimesteps: int = 1, simulation_id: int = 0):
        self.ntimesteps = int(ntimesteps)
        self._value = float(np.asarray(fn(np.atleast_2d(params))).ravel()[0])
        self._next = 0
        self.simulation_id = simulation_id

    @property
    def ncells(self) -> int:
        return 1

    @property
    def finished(self) -> bool:
        return self._next >= self.ntimesteps

    def advance(self):
        if self.finished:
            raise RuntimeError("simulation already finished")
        step = self._next
        self._next += 1
        return step, np.array([self._value])

    def __iter__(self):
        while not self.finished:
            yield self.advance()


class VectorFieldSimulation(FunctionSimulation):
    """A scalar model spread over ``ncells`` cells via a deterministic
    ramp: ``f(x) * (1 + ramp) + 0.05 * step * ramp``.

    The cheap multi-cell member behind the CLI's ``--study vector`` spec
    and the multi-rank integration tests — enough spatial and temporal
    structure to exercise partitioning, splitting, and back-pressure
    without a CFD solver's cost.
    """

    def __init__(self, fn: Callable[[np.ndarray], float], params: np.ndarray,
                 ncells: int, ntimesteps: int = 1, simulation_id: int = 0):
        super().__init__(fn, params, ntimesteps=ntimesteps,
                         simulation_id=simulation_id)
        self._ncells = int(ncells)

    @property
    def ncells(self) -> int:
        return self._ncells

    def advance(self):
        step, field = super().advance()
        ramp = np.linspace(0.0, 1.0, self._ncells)
        return step, float(field[0]) * (1.0 + ramp) + 0.05 * step * ramp


@dataclass(frozen=True)
class SimulationGroup:
    """Static description of pick-freeze group i (the p+2 member runs)."""

    group_id: int
    member_parameters: np.ndarray  # (p+2, p)

    def __post_init__(self):
        params = np.asarray(self.member_parameters, dtype=np.float64)
        object.__setattr__(self, "member_parameters", params)
        if params.ndim != 2 or params.shape[0] != params.shape[1] + 2:
            raise ValueError("member_parameters must be (p+2, p)")
        if self.group_id < 0:
            raise ValueError("group_id must be non-negative")

    @property
    def nparams(self) -> int:
        return self.member_parameters.shape[1]

    @property
    def size(self) -> int:
        return self.member_parameters.shape[0]

    @classmethod
    def from_design(cls, design: PickFreezeDesign, group_id: int) -> "SimulationGroup":
        return cls(group_id=group_id, member_parameters=design.group_parameters(group_id))


class GroupState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    BLOCKED = "blocked"  # suspended on full server buffers
    FINISHED = "finished"
    CRASHED = "crashed"


class GroupCrashed(RuntimeError):
    """Raised by a fault-injected member at its scheduled crash timestep."""


class GroupExecutor:
    """Running instance of one simulation group.

    Parameters
    ----------
    group:
        The pick-freeze row to run.
    factory:
        Builds one member simulation from (parameter vector, global sim id).
    config:
        Study configuration (client ranks, transfer mode...).
    router:
        The transport fabric to the server — any
        :class:`~repro.transport.base.TransportClient` (in-memory router,
        multiprocessing queues, or TCP sockets).
    fail_at_timestep:
        Fault injection — every member "crashes" when the group reaches
        this timestep (the whole group is one failure unit, Sec. 4.2).
    zombie:
        Fault injection — the group runs but never sends anything
        (the "zombie group" of Sec. 4.2.2).
    straggler_factor:
        Fault injection — the group advances only every n-th step call.
    """

    def __init__(
        self,
        group: SimulationGroup,
        factory: SimulationFactory,
        config: StudyConfig,
        router: TransportClient,
        fail_at_timestep: Optional[int] = None,
        zombie: bool = False,
        straggler_factor: int = 1,
    ):
        if straggler_factor < 1:
            raise ValueError("straggler_factor must be >= 1")
        self.group = group
        self.config = config
        self.router = router
        self.fail_at_timestep = fail_at_timestep
        self.zombie = zombie
        self.straggler_factor = straggler_factor
        self._step_calls = 0
        self._advanced_steps = 0
        self.state = GroupState.CREATED
        self.members: List[MemberSimulation] = []
        self._factory = factory
        self._outbox: Deque = deque()
        self.client_partition = BlockPartition(config.ncells, config.client_ranks)
        self.timesteps_sent = 0
        self.messages_emitted = 0

    # ------------------------------------------------------------------ #
    # the Melissa 3-call API (Sec. 4.1.3)
    # ------------------------------------------------------------------ #
    def initialize(self) -> None:
        """Build members and dynamically connect to the server."""
        if self.state != GroupState.CREATED:
            raise RuntimeError("initialize called twice")
        base_id = self.group.group_id * self.group.size
        self.members = [
            self._factory(self.group.member_parameters[m], base_id + m)
            for m in range(self.group.size)
        ]
        ncells = self.members[0].ncells
        if ncells != self.config.ncells:
            raise ValueError(
                f"member produces {ncells} cells, study configured {self.config.ncells}"
            )
        self.router.connect(
            ConnectionRequest(
                group_id=self.group.group_id,
                ncells=self.config.ncells,
                nranks_client=self.config.client_ranks,
            )
        )
        self.state = GroupState.RUNNING

    def process_step(self) -> GroupState:
        """Advance one synchronized timestep and push it to the server.

        Blocked semantics: if the previous step's messages are still
        undeliverable (full buffers), the group does NOT advance — it
        retries its outbox and stays suspended, extending its wall-clock
        footprint exactly as the paper's first experiment shows.
        """
        if self.state in (GroupState.FINISHED, GroupState.CRASHED):
            raise RuntimeError(f"group is {self.state.value}")
        if self.state == GroupState.CREATED:
            raise RuntimeError("initialize must be called first")
        # retry pending sends before doing any new work
        self._flush()
        if self._outbox:
            self.state = GroupState.BLOCKED
            return self.state
        if self.finished_computing:
            self.finalize()
            return self.state
        self._step_calls += 1
        if self._step_calls % self.straggler_factor != 0:
            self.state = GroupState.RUNNING  # computing slowly, not blocked
            return self.state
        timestep = self._advanced_steps
        if self.fail_at_timestep is not None and timestep >= self.fail_at_timestep:
            self.state = GroupState.CRASHED
            raise GroupCrashed(
                f"group {self.group.group_id} crashed at timestep {timestep}"
            )
        fields = np.empty((self.group.size, self.config.ncells))
        step_ids = set()
        for m, sim in enumerate(self.members):
            step, field_values = sim.advance()
            step_ids.add(step)
            fields[m] = field_values
        if len(step_ids) != 1:
            raise RuntimeError("group members desynchronized")
        step = step_ids.pop()
        self._advanced_steps += 1
        if not self.zombie:
            self._emit(step, fields)
            self._flush()
        self.timesteps_sent += 1
        if self._outbox:
            self.state = GroupState.BLOCKED
        elif self.finished_computing:
            self.finalize()
        else:
            self.state = GroupState.RUNNING
        return self.state

    def finalize(self) -> None:
        """Disconnect from the server and release members."""
        if self._outbox:
            raise RuntimeError("cannot finalize with undelivered messages")
        self.router.disconnect(self.group.group_id)
        self.state = GroupState.FINISHED

    # ------------------------------------------------------------------ #
    @property
    def finished_computing(self) -> bool:
        return bool(self.members) and all(s.finished for s in self.members)

    @property
    def is_blocked(self) -> bool:
        return self.state == GroupState.BLOCKED

    @property
    def outbox_size(self) -> int:
        return len(self._outbox)

    # ------------------------------------------------------------------ #
    # two-stage transfer (Sec. 4.1.2)
    # ------------------------------------------------------------------ #
    def _emit(self, timestep: int, fields: np.ndarray) -> None:
        """Stage 1: per client rank, gather every member's slice.
        Stage 2: split along the server partition and enqueue."""
        plan = redistribution_plan(self.client_partition, self.router.server_partition)
        if self.config.two_stage_transfer:
            for entries in plan:
                for server_rank, lo, hi in entries:
                    self._outbox.append(
                        GroupFieldMessage(
                            group_id=self.group.group_id,
                            timestep=timestep,
                            cell_lo=lo,
                            cell_hi=hi,
                            data=fields[:, lo:hi],
                        )
                    )
        else:
            # ablation: every member pushes its own slices (p+2 x messages)
            for entries in plan:
                for server_rank, lo, hi in entries:
                    for member in range(self.group.size):
                        self._outbox.append(
                            FieldMessage(
                                group_id=self.group.group_id,
                                member=member,
                                timestep=timestep,
                                cell_lo=lo,
                                cell_hi=hi,
                                data=fields[member, lo:hi],
                            )
                        )

    def _flush(self) -> None:
        """Deliver as much of the outbox as buffer space allows."""
        while self._outbox:
            if not self.router.deliver(self._outbox[0], blocking=False):
                return
            self._outbox.popleft()
            self.messages_emitted += 1
