"""Declarative study configuration shared by launcher, server, and runtimes."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.sampling import ParameterSpace
from repro.stats import StatisticsConfig

#: default statistics when neither ``statistics`` nor the deprecated
#: knobs are given — matches the historical ``compute_general_stats=True``
#: with a default :class:`StatisticsConfig` (order-2 moments).
DEFAULT_STATISTICS: Tuple[str, ...] = ("moments:order=2",)

# the deprecation shim warns once per process, not once per StudyConfig
_LEGACY_STATS_WARNED = False


@dataclass
class StudyConfig:
    """Everything needed to run one in-transit sensitivity study.

    Attributes mirror the knobs the paper's ``options.py`` exposes
    (Appendix A.6): server size, group count, message-buffer budget,
    which statistics to compute, timeouts and checkpoint cadence.
    """

    # --- the study itself ------------------------------------------------
    space: ParameterSpace
    ngroups: int
    ntimesteps: int
    ncells: int
    seed: int = 0
    sampling_method: str = "random"

    # --- server shape ----------------------------------------------------
    server_ranks: int = 2
    #: statistic spec strings from the ``repro.stats`` catalog (e.g.
    #: ``["moments:order=4", "quantiles:qs=0.5:lo=-5:hi=5", "sobol2"]``).
    #: ``None`` selects :data:`DEFAULT_STATISTICS`; an empty list disables
    #: general statistics (the Sobol' engine always runs).  Stored
    #: canonicalized, so equivalent spellings fingerprint identically.
    statistics: Optional[Sequence[str]] = None
    #: DEPRECATED (use ``statistics``): the pre-catalog on/off switch.
    compute_general_stats: Optional[bool] = None
    #: DEPRECATED (use ``statistics``): the pre-catalog statistics knobs.
    stats_config: Optional[StatisticsConfig] = None
    #: co-moment kernel backend for the fold hot path: "auto" (autotune),
    #: "einsum", "blas", "cext", "numba"; None defers to the REPRO_KERNEL
    #: environment variable and then "auto"
    kernel: Optional[str] = None
    #: fold-thread budget per server rank: "auto" (probe 1/2/half/all
    #: cores on the first real fold, clamped by ``cpus // local_ranks``
    #: so co-located ranks don't oversubscribe), an int >= 1 to pin the
    #: pool size, or None to defer to $REPRO_FOLD_THREADS and then
    #: "auto".  Pure execution policy — it cannot change any statistic
    #: bit (shards are block-aligned disjoint cell windows) — so it is
    #: deliberately NOT part of the study fingerprint or checkpoints.
    fold_threads: Optional[object] = None

    # --- client shape ----------------------------------------------------
    client_ranks: int = 2  # ranks per simulation (the in-group partition)

    # --- transport -------------------------------------------------------
    channel_capacity_bytes: Optional[int] = None  # None = unbounded buffers
    two_stage_transfer: bool = True
    #: data-plane fabric for the distributed runtime: "auto" negotiates a
    #: shared-memory ring per channel when worker and rank share a host
    #: (proved by actually attaching the segment) and falls back to TCP
    #: framing otherwise; "tcp"/"shm" pin the fabric.  A per-process
    #: deployment knob like ``scheduling`` — each side may be launched
    #: with its own setting and negotiation reconciles them — so it is
    #: deliberately NOT part of the study fingerprint.
    transport: str = "auto"

    # --- batch resources (virtual nodes, for the scheduler) --------------
    nodes_per_group: int = 4
    server_nodes: int = 2
    total_nodes: int = 64
    group_walltime: float = 1e9
    server_walltime: float = 1e9
    max_pending_jobs: int = 500  # Curie's submission limit (Sec. 4.1.4)

    # --- fault tolerance (virtual seconds) --------------------------------
    group_timeout: float = 300.0  # paper's unresponsive-group timeout
    zombie_timeout: float = 300.0  # never-sent-a-message timeout
    server_timeout: float = 300.0  # launcher heartbeat timeout
    checkpoint_interval: float = 600.0  # paper's checkpoint period
    max_group_retries: int = 3
    #: how many times the supervisor may respawn one dead ``repro serve``
    #: rank from its checkpoint before aborting the study (Sec. 4.2.3)
    max_rank_respawns: int = 3
    discard_on_replay: bool = True
    #: wall-clock heartbeat cadence for the process/distributed runtimes
    #: (server ranks and workers beacon liveness at this period)
    heartbeat_interval: float = 0.5

    # --- scheduling (coordinator-side policy layer) -----------------------
    #: straggler-aware scheduling for the distributed coordinator: a
    #: :class:`repro.scheduler.policy.SchedulingConfig`, a spec string for
    #: :func:`repro.scheduler.policy.parse_scheduling` (e.g.
    #: ``"speculate;elastic:high=6"``), or None = plain FIFO.  Coordinator
    #: policy only — serve/work processes ignore it, so it is deliberately
    #: NOT part of the study fingerprint or checkpoint fingerprint.
    scheduling: Optional[object] = None

    # --- convergence control ----------------------------------------------
    convergence_threshold: Optional[float] = None  # max CI width to stop at
    convergence_check_interval: float = 60.0

    def __post_init__(self):
        if self.ngroups < 1:
            raise ValueError("ngroups must be >= 1")
        if self.ntimesteps < 1:
            raise ValueError("ntimesteps must be >= 1")
        if self.ncells < 1:
            raise ValueError("ncells must be >= 1")
        if self.server_ranks < 1:
            raise ValueError("server_ranks must be >= 1")
        if self.client_ranks < 1:
            raise ValueError("client_ranks must be >= 1")
        if self.server_ranks > self.ncells:
            raise ValueError("cannot split cells over more server ranks than cells")
        if self.client_ranks > self.ncells:
            raise ValueError("cannot split cells over more client ranks than cells")
        if self.max_group_retries < 0:
            raise ValueError("max_group_retries must be >= 0")
        if self.max_rank_respawns < 0:
            raise ValueError("max_rank_respawns must be >= 0")
        if self.transport not in ("auto", "tcp", "shm"):
            raise ValueError(
                f"transport must be 'auto', 'tcp', or 'shm' — got "
                f"{self.transport!r}"
            )
        from repro.kernels import resolve_spec
        from repro.kernels.parallel import validate_threads_spec

        resolve_spec(self.kernel)  # fail fast on unknown backend names
        self.fold_threads = validate_threads_spec(self.fold_threads)
        self._resolve_statistics()  # fail fast on unknown statistic specs
        self._resolve_scheduling()  # fail fast on malformed scheduling specs

    def _resolve_scheduling(self) -> None:
        """Canonicalize ``scheduling`` to a SchedulingConfig (or None)."""
        if self.scheduling is None:
            return
        from repro.scheduler.policy import SchedulingConfig, parse_scheduling

        if isinstance(self.scheduling, str):
            self.scheduling = parse_scheduling(self.scheduling)
        elif not isinstance(self.scheduling, SchedulingConfig):
            raise TypeError(
                "scheduling must be a SchedulingConfig, a spec string "
                f"(e.g. 'speculate;elastic'), or None — got {self.scheduling!r}"
            )
        if self.scheduling.speculate and not self.discard_on_replay:
            raise ValueError(
                "scheduling with speculation requires discard_on_replay=True"
            )

    def _resolve_statistics(self) -> None:
        """Canonicalize ``statistics``, mapping the deprecated knobs onto it.

        After this runs, ``self.statistics`` is a canonical spec tuple (the
        value checkpoint fingerprints and the distributed coordinator
        compare) and ``self.compute_general_stats`` is re-derived for any
        legacy reader as ``bool(self.statistics)``.
        """
        from repro.stats import canonicalize_specs, legacy_statistics_specs

        global _LEGACY_STATS_WARNED
        legacy_used = (
            self.compute_general_stats is not None or self.stats_config is not None
        )
        if self.statistics is not None and legacy_used:
            raise ValueError(
                "pass either statistics=[...] or the deprecated "
                "compute_general_stats/stats_config knobs, not both"
            )
        if self.statistics is not None:
            specs = self.statistics
        elif legacy_used:
            if not _LEGACY_STATS_WARNED:
                warnings.warn(
                    "StudyConfig(compute_general_stats=..., stats_config=...) "
                    "is deprecated; pass statistics=[...] spec strings instead "
                    "(see `repro stats --list`)",
                    DeprecationWarning,
                    stacklevel=3,
                )
                _LEGACY_STATS_WARNED = True
            enabled = (
                True if self.compute_general_stats is None
                else bool(self.compute_general_stats)
            )
            cfg = self.stats_config or StatisticsConfig()
            specs = (
                legacy_statistics_specs(
                    cfg.moment_order, cfg.track_extrema, cfg.thresholds
                )
                if enabled
                else ()
            )
        else:
            specs = DEFAULT_STATISTICS
        self.statistics = canonicalize_specs(specs)
        self.compute_general_stats = bool(self.statistics)

    # ------------------------------------------------------------------ #
    @property
    def nparams(self) -> int:
        return self.space.nparams

    @property
    def group_size(self) -> int:
        """Simulations per group: p + 2."""
        return self.nparams + 2

    @property
    def nsimulations(self) -> int:
        return self.ngroups * self.group_size

    def ensemble_bytes(self) -> int:
        """Bytes the classical approach would write: the 48 TB quantity."""
        return self.nsimulations * self.ntimesteps * self.ncells * 8
