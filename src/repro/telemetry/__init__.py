"""Study telemetry: metrics registry, trace spans, live dashboards.

The observability layer (ISSUE 8) in four pieces:

* :mod:`repro.telemetry.registry` — thread-safe Counter / Gauge /
  Histogram registry with label support, snapshot / delta / merge
  algebra, and Prometheus text rendering.  Near-zero overhead while
  disabled (the default).
* :mod:`repro.telemetry.tracer` — span/event tracer exporting Chrome
  trace-event JSON (``repro launch --trace FILE`` → Perfetto).
* :mod:`repro.telemetry.aggregate` — ``StudyTelemetry``: the
  coordinator-side merge of metric deltas that ranks and workers
  piggyback on heartbeat frames.
* surfaces — :mod:`repro.telemetry.top` (``repro top``),
  :mod:`repro.telemetry.exporters` (``--metrics-file`` JSONL,
  ``--metrics-port`` Prometheus HTTP), :mod:`repro.telemetry.logs`
  (structured ``--log-level`` / ``--log-json`` logging).

One process-global registry (:data:`REGISTRY`) serves every component;
``REPRO_TELEMETRY=1`` in the environment enables it at import, and the
coordinator's registration acks flip it on in serve/work processes at
runtime (capability negotiation — see :mod:`repro.net.framing`).
"""

from __future__ import annotations

import os

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta,
    merge,
    render_prometheus,
)
from repro.telemetry.tracer import Tracer, instant_record, span_record

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "delta",
    "disable",
    "enable",
    "enabled",
    "instant_record",
    "merge",
    "render_prometheus",
    "span_record",
]

#: The process-global registry every instrumented module records into.
REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_TELEMETRY", "") not in ("", "0", "false")
)


def enable() -> MetricsRegistry:
    """Turn on metric recording in this process."""
    return REGISTRY.enable()


def disable() -> MetricsRegistry:
    """Turn off metric recording (instrumentation becomes no-ops)."""
    return REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled
