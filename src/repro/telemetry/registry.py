"""Thread-safe metrics registry: counters, gauges, histograms with labels.

The registry is the accounting layer of the study telemetry stack
(ISSUE 8): every process — coordinator, server rank, group worker —
instruments its hot paths against one process-global registry, and the
distributed runtime ships compact *snapshot deltas* over the existing
heartbeat frames so the coordinator can aggregate a live study view
without new connections.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Every mutator checks a single
   ``enabled`` flag before touching any lock or dict; the disabled path
   is one attribute load and one branch.  Hot loops that want to avoid
   even argument construction can guard on ``registry.enabled``
   themselves.
2. **Mergeable.**  Counter and histogram series are sums, so snapshots
   merge commutatively and deltas are exact: ``merge(a, delta(a, b)) ==
   b``.  Gauges are last-write-wins per series; distinct senders keep
   distinct label sets (``worker="w0"`` …) so nothing collides.
3. **JSON-friendly.**  Snapshots are plain dict/list/float structures
   that survive ``json.dumps`` unchanged — the same object feeds the
   heartbeat payload (pickled), the ``--metrics-file`` JSONL export, and
   the ``/metrics.json`` endpoint.

Label values are stringified; a series key is the sorted tuple of
``(label, value)`` pairs.  ``metric.labels(**kv)`` returns a bound child
with the key pre-resolved for per-call-site speed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "delta",
    "merge",
    "render_prometheus",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured: the bulk of
#: observed series are fold/checkpoint/group durations).  +inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common shape: named, typed, lock-guarded series map."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self._registry = registry
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, object] = {}

    # -- introspection -------------------------------------------------- #
    def series_keys(self) -> List[LabelKey]:
        with self._lock:
            return list(self._series)

    def _describe(self) -> dict:
        return {"type": self.kind, "help": self.help}


class Counter(_Metric):
    """Monotonically non-decreasing sum (events, bytes, retries)."""

    kind = "counter"

    def labels(self, **labels) -> "_BoundCounter":
        return _BoundCounter(self, _label_key(labels))

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        self._inc_key(_label_key(labels), amount)

    def _inc_key(self, key: LabelKey, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def snapshot_series(self) -> list:
        with self._lock:
            return [
                {"labels": dict(key), "value": float(v)}
                for key, v in self._series.items()
            ]


class Gauge(_Metric):
    """Point-in-time value (queue depth, staleness, in-flight)."""

    kind = "gauge"

    def labels(self, **labels) -> "_BoundGauge":
        return _BoundGauge(self, _label_key(labels))

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._set_key(_label_key(labels), value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def _set_key(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def snapshot_series(self) -> list:
        with self._lock:
            return [
                {"labels": dict(key), "value": float(v)}
                for key, v in self._series.items()
            ]


class Histogram(_Metric):
    """Bucketed distribution (durations); exact sum/count ride along."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(registry, name, help)
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")

    def labels(self, **labels) -> "_BoundHistogram":
        return _BoundHistogram(self, _label_key(labels))

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._observe_key(_label_key(labels), value)

    def _observe_key(self, key: LabelKey, value: float) -> None:
        value = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = [[0] * (len(self.bounds) + 1), 0.0, 0]
                self._series[key] = state
            counts, _, _ = state
            idx = len(self.bounds)  # +inf bucket
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            counts[idx] += 1
            state[1] += value
            state[2] += 1

    def stats(self, **labels) -> Tuple[float, int]:
        """(sum, count) for one series — cheap mean lookups."""
        with self._lock:
            state = self._series.get(_label_key(labels))
            if state is None:
                return 0.0, 0
            return float(state[1]), int(state[2])

    def snapshot_series(self) -> list:
        with self._lock:
            return [
                {
                    "labels": dict(key),
                    "counts": list(state[0]),
                    "sum": float(state[1]),
                    "count": int(state[2]),
                }
                for key, state in self._series.items()
            ]


class _BoundCounter:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: LabelKey):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if not self._metric._registry.enabled:
            return
        self._metric._inc_key(self._key, amount)


class _BoundGauge:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: LabelKey):
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        if not self._metric._registry.enabled:
            return
        self._metric._set_key(self._key, value)


class _BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: LabelKey):
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        if not self._metric._registry.enabled:
            return
        self._metric._observe_key(self._key, value)


class MetricsRegistry:
    """Named metric collection with get-or-create semantics.

    ``enabled`` gates every mutation; reading (snapshots) always works so
    a just-disabled registry can still be exported.  Creating metric
    objects is allowed while disabled — instrumented modules register
    their metrics at import/init time unconditionally and pay only the
    flag check per call afterwards.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- lifecycle ------------------------------------------------------ #
    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop all recorded series (metric objects stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            with metric._lock:
                metric._series.clear()

    # -- get-or-create -------------------------------------------------- #
    def _get(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, help=help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- export --------------------------------------------------------- #
    def snapshot(self) -> dict:
        """JSON-friendly point-in-time copy of every non-empty metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        out: dict = {}
        for name, metric in sorted(metrics):
            series = metric.snapshot_series()
            if not series:
                continue
            entry = metric._describe()
            entry["series"] = series
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            out[name] = entry
        return out


# --------------------------------------------------------------------- #
# snapshot algebra (module functions: snapshots are plain dicts so they
# survive pickling over heartbeats and JSONL round-trips unchanged)
# --------------------------------------------------------------------- #
def _series_map(entry: dict) -> Dict[LabelKey, dict]:
    return {_label_key(s.get("labels", {})): s for s in entry.get("series", [])}


def delta(prev: Optional[dict], cur: dict) -> dict:
    """Per-series difference ``cur - prev`` for counters/histograms;
    gauges pass through at their current value.

    ``prev=None`` (first ship) yields ``cur`` itself.  Series that did
    not change are dropped, so an idle process ships empty deltas.
    Satisfies ``merge(prev, delta(prev, cur)) == cur`` for summable
    types (the hypothesis suite asserts this).
    """
    if prev is None:
        return {k: v for k, v in cur.items() if v.get("series")}
    out: dict = {}
    for name, entry in cur.items():
        kind = entry.get("type")
        prev_entry = prev.get(name)
        if kind == "gauge":
            # gauges are last-write-wins: always ship the current value
            if entry.get("series"):
                out[name] = entry
            continue
        prev_series = _series_map(prev_entry) if prev_entry else {}
        changed = []
        for series in entry.get("series", []):
            key = _label_key(series.get("labels", {}))
            old = prev_series.get(key)
            if kind == "counter":
                # a series new in ``cur`` ships even at value 0.0 — its
                # label set is state the receiver must reproduce
                base = old["value"] if old else 0.0
                diff = series["value"] - base
                if diff != 0.0 or old is None:
                    changed.append({"labels": series["labels"], "value": diff})
            elif kind == "histogram":
                if old is None:
                    changed.append(series)
                    continue
                dcount = series["count"] - old["count"]
                if dcount == 0:
                    continue
                changed.append(
                    {
                        "labels": series["labels"],
                        "counts": [
                            c - p for c, p in zip(series["counts"], old["counts"])
                        ],
                        "sum": series["sum"] - old["sum"],
                        "count": dcount,
                    }
                )
            else:  # unknown kind: ship verbatim (forward compatibility)
                changed.append(series)
        if changed:
            out[name] = {**{k: v for k, v in entry.items() if k != "series"},
                         "series": changed}
    return out


def merge(into: Optional[dict], incoming: dict) -> dict:
    """Fold ``incoming`` (a delta or a full snapshot) into ``into``.

    Counters and histogram series add (commutative, associative);
    gauges take the incoming value.  Returns the merged dict (``into``
    is updated in place when given).
    """
    if into is None:
        into = {}
    for name, entry in incoming.items():
        kind = entry.get("type")
        target = into.get(name)
        if target is None:
            into[name] = {
                **{k: v for k, v in entry.items() if k != "series"},
                "series": [
                    {**s, "labels": dict(s.get("labels", {}))}
                    for s in entry.get("series", [])
                ],
            }
            continue
        tmap = _series_map(target)
        for series in entry.get("series", []):
            key = _label_key(series.get("labels", {}))
            old = tmap.get(key)
            if old is None:
                copied = {**series, "labels": dict(series.get("labels", {}))}
                target["series"].append(copied)
                tmap[key] = copied
            elif kind == "counter":
                old["value"] = old["value"] + series["value"]
            elif kind == "gauge":
                old["value"] = series["value"]
            elif kind == "histogram":
                old["counts"] = [
                    a + b for a, b in zip(old["counts"], series["counts"])
                ]
                old["sum"] = old["sum"] + series["sum"]
                old["count"] = old["count"] + series["count"]
            else:
                old.update(series)
    return into


# --------------------------------------------------------------------- #
# Prometheus text exposition (stdlib-only; the --metrics-port endpoint
# and any future REST layer serve this format)
# --------------------------------------------------------------------- #
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    f = float(value)
    return str(int(f)) if f == int(f) else repr(f)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "untyped")
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in entry.get("series", []):
            labels = series.get("labels", {})
            if kind == "histogram":
                bounds = list(entry.get("bounds", [])) + [float("inf")]
                cumulative = 0
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_label_str(labels, {'le': _fmt(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(f"{name}_sum{_label_str(labels)} {series['sum']!r}")
                lines.append(f"{name}_count{_label_str(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {_fmt(series['value'])}"
                )
    return "\n".join(lines) + "\n"
