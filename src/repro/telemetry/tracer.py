"""Span/event tracer exporting Chrome trace-event JSON (Perfetto-loadable).

The coordinator owns one :class:`Tracer` per study run.  It records its
own view of the group lifecycle (drawn → assigned → done) and folds in:

* compact span/instant records shipped by ranks and workers inside the
  heartbeat metric payloads (simulate / fold / checkpoint phases), and
* :class:`~repro.core.launcher.LauncherEvent` timelines from the rank
  supervisor (respawns) and pool supervisor (elastic resize).

Timestamps are wall-clock ``time.time()`` seconds everywhere — the only
clock every process shares — converted to microseconds relative to the
trace epoch at export.  ``repro launch --trace FILE`` writes the JSON;
open it at https://ui.perfetto.dev or chrome://tracing.

Wire shape of a shipped record (plain dicts; they ride inside the
pickled heartbeat payload and must stay JSON-friendly)::

    {"ph": "X", "name": "simulate group 3", "cat": "worker",
     "t0": <wall s>, "t1": <wall s>, "tid": "worker-0", "args": {...}}
    {"ph": "i", "name": "checkpoint", "cat": "rank",
     "t": <wall s>, "tid": "server-rank-1"}
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["Tracer", "span_record", "instant_record"]


def span_record(
    name: str, cat: str, t0: float, t1: float,
    tid: str = "", args: Optional[dict] = None,
) -> dict:
    """Compact complete-span record (wall-clock seconds), shippable."""
    rec = {"ph": "X", "name": name, "cat": cat, "t0": t0, "t1": t1, "tid": tid}
    if args:
        rec["args"] = args
    return rec


def instant_record(
    name: str, cat: str, t: Optional[float] = None,
    tid: str = "", args: Optional[dict] = None,
) -> dict:
    """Compact instant-event record (wall-clock seconds), shippable."""
    rec = {
        "ph": "i", "name": name, "cat": cat,
        "t": time.time() if t is None else t, "tid": tid,
    }
    if args:
        rec["args"] = args
    return rec


class Tracer:
    """Collects span/instant records and renders Chrome trace JSON.

    Thread-safe: the coordinator's accept threads, the wait loop, and
    supervisor callbacks all append concurrently.  When ``enabled`` is
    False every recording call is a cheap no-op (mirrors the registry's
    zero-overhead-when-disabled contract).
    """

    PID = 1  # single logical process: lanes are differentiated by tid

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._records: List[dict] = []
        self._epoch: Optional[float] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- recording ------------------------------------------------------ #
    def add(self, record: dict) -> None:
        """Append one compact record (see module docstring for shapes)."""
        if not self.enabled:
            return
        with self._lock:
            self._records.append(record)

    def extend(self, records) -> None:
        """Fold in records shipped by a remote process."""
        if not self.enabled or not records:
            return
        with self._lock:
            self._records.extend(records)

    def complete(
        self, name: str, cat: str, t0: float, t1: float,
        tid: str = "", args: Optional[dict] = None,
    ) -> None:
        self.add(span_record(name, cat, t0, t1, tid=tid, args=args))

    def instant(
        self, name: str, cat: str, t: Optional[float] = None,
        tid: str = "", args: Optional[dict] = None,
    ) -> None:
        self.add(instant_record(name, cat, t=t, tid=tid, args=args))

    @contextmanager
    def span(self, name: str, cat: str = "", tid: str = "",
             args: Optional[dict] = None):
        """Record the wrapped block as one complete span."""
        if not self.enabled:
            yield
            return
        t0 = time.time()
        try:
            yield
        finally:
            self.complete(name, cat, t0, time.time(), tid=tid, args=args)

    # -- export --------------------------------------------------------- #
    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (``{"traceEvents": [...]}``).

        Events are sorted by timestamp; each distinct ``tid`` string
        gets a stable integer lane plus a ``thread_name`` metadata
        record so Perfetto shows readable lane names.
        """
        with self._lock:
            records = list(self._records)
        if records:
            self._epoch = min(
                r["t0"] if r["ph"] == "X" else r["t"] for r in records
            )
        epoch = self._epoch if self._epoch is not None else 0.0

        tids: Dict[str, int] = {}

        def lane(tid: str) -> int:
            if tid not in tids:
                tids[tid] = len(tids) + 1
            return tids[tid]

        events: List[dict] = []
        for rec in records:
            base = {
                "name": rec.get("name", ""),
                "cat": rec.get("cat", "") or "repro",
                "pid": self.PID,
                "tid": lane(rec.get("tid", "") or "coordinator"),
            }
            if rec.get("args"):
                base["args"] = rec["args"]
            if rec["ph"] == "X":
                base["ph"] = "X"
                base["ts"] = round((rec["t0"] - epoch) * 1e6, 3)
                base["dur"] = max(round((rec["t1"] - rec["t0"]) * 1e6, 3), 0.0)
            else:
                base["ph"] = "i"
                base["ts"] = round((rec["t"] - epoch) * 1e6, 3)
                base["s"] = "t"  # thread-scoped instant
            events.append(base)
        events.sort(key=lambda e: e["ts"])
        meta = [
            {
                "ph": "M", "name": "thread_name", "pid": self.PID, "tid": num,
                "args": {"name": tid_name},
            }
            for tid_name, num in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        meta.insert(0, {
            "ph": "M", "name": "process_name", "pid": self.PID,
            "args": {"name": "repro study"},
        })
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)
            fh.write("\n")
