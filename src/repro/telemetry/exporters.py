"""Telemetry surfaces: periodic JSONL export and a stdlib HTTP endpoint.

Both consume the same :meth:`StudyTelemetry.view` frames:

* :class:`MetricsFileWriter` appends one JSON object per line to
  ``--metrics-file`` on a fixed cadence (plus a final frame at close),
  so a finished run leaves a replayable timeline and ``repro top
  --follow FILE`` can tail a live one.
* :class:`MetricsHTTPServer` serves ``/metrics`` (Prometheus text
  exposition) and ``/metrics.json`` (the full dashboard frame) from a
  daemon thread — the hook a future REST front-end mounts under its own
  router.  Stdlib ``http.server`` only; no new dependencies.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.telemetry.registry import render_prometheus

__all__ = ["MetricsFileWriter", "MetricsHTTPServer"]


class MetricsFileWriter:
    """Append dashboard frames to a JSONL file on a timer thread.

    ``frame_fn`` is called on each tick (and once at :meth:`close`) and
    must return a JSON-serializable dict — normally
    ``StudyTelemetry.view`` partially applied with live study state.
    """

    def __init__(self, path, frame_fn: Callable[[], dict],
                 interval: float = 1.0):
        self.path = str(path)
        self._frame_fn = frame_fn
        self.interval = max(float(interval), 0.05)
        self._stop = threading.Event()
        self._write_lock = threading.Lock()
        # truncate up front so a crashed run leaves an empty file, not a
        # stale timeline from the previous study
        with open(self.path, "w", encoding="utf-8"):
            pass
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-file", daemon=True
        )

    def start(self) -> "MetricsFileWriter":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.write_frame()

    def write_frame(self) -> None:
        try:
            frame = self._frame_fn()
        except Exception:
            return  # never let a telemetry bug take down the study
        line = json.dumps(frame, default=_json_default)
        with self._write_lock, open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def close(self) -> None:
        """Stop the timer and write one final frame."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
        self.write_frame()


def _json_default(obj):
    try:
        return float(obj)  # numpy scalars
    except (TypeError, ValueError):
        return repr(obj)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self):  # noqa: N802 (stdlib API name)
        frame_fn = self.server.frame_fn  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/metrics", "/"):
                frame = frame_fn()
                body = render_prometheus(frame.get("metrics", {})).encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/metrics.json":
                frame = frame_fn()
                body = json.dumps(frame, default=_json_default).encode()
                ctype = "application/json"
            elif path == "/healthz":
                body, ctype = b"ok\n", "text/plain"
            else:
                self.send_error(404, "unknown path (try /metrics)")
                return
        except Exception as exc:  # pragma: no cover - defensive
            self.send_error(500, f"telemetry error: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class MetricsHTTPServer:
    """Serve Prometheus text + JSON frames on ``--metrics-port``."""

    def __init__(self, frame_fn: Callable[[], dict],
                 host: str = "127.0.0.1", port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.frame_fn = frame_fn  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http", daemon=True,
        )

    @property
    def address(self) -> tuple:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)


_UNSET = object()
