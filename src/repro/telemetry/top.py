"""``repro top`` — live terminal dashboard for a running study.

Reads dashboard frames (the :meth:`StudyTelemetry.view` shape) from
either surface the launch process exposes:

* ``--metrics-port`` HTTP endpoint → polls ``/metrics.json``;
* ``--metrics-file`` JSONL export → tails the last complete line.

Rendering is a pure function of one frame (unit-testable, and ``--once``
prints a single frame for CI); the live loop just refreshes it.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

__all__ = ["fetch_frame", "render_frame", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def _normalize_source(source: str) -> str:
    """Map ``host:port`` / URL / file path onto a fetchable source."""
    if source.startswith(("http://", "https://")):
        return source
    host, sep, port = source.rpartition(":")
    if sep and port.isdigit() and "/" not in source:
        return f"http://{host or '127.0.0.1'}:{port}"
    return source  # a metrics JSONL file path


def fetch_frame(source: str, timeout: float = 2.0) -> Optional[dict]:
    """One dashboard frame from a URL or JSONL file; None when empty."""
    source = _normalize_source(source)
    if source.startswith(("http://", "https://")):
        url = source.rstrip("/")
        if not url.endswith("/metrics.json"):
            url += "/metrics.json"
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))
    last = None
    with open(source, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                last = line
    return json.loads(last) if last else None


def _mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:8.1f}"


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}" if whole > 0 else "    -"


def render_frame(frame: Optional[dict]) -> str:
    """One frame → the dashboard text block."""
    if not frame:
        return "repro top — no telemetry frames yet (study still starting?)"
    study = frame.get("study", {})
    elapsed = float(frame.get("elapsed", 0.0))
    lines = []
    fingerprint = study.get("fingerprint", "")
    title = "repro top"
    if fingerprint:
        title += f" — study {fingerprint[:12]}"
    lines.append(f"{title}   elapsed {elapsed:7.1f}s")
    done = study.get("groups_done")
    total = study.get("ngroups")
    progress = []
    if done is not None and total:
        bar_w = 30
        filled = int(bar_w * min(done / total, 1.0))
        progress.append(
            f"groups {done}/{total} [{'#' * filled}{'.' * (bar_w - filled)}]"
        )
    for key, label in (
        ("queue_depth", "queue"),
        ("in_flight", "in-flight"),
        ("workers_active", "workers"),
        ("speculated", "speculated"),
        ("resubmitted", "resubmitted"),
        ("rank_respawns", "respawns"),
    ):
        value = study.get(key)
        if value:
            progress.append(f"{label} {value}")
        elif value == 0 and key in ("queue_depth", "in_flight"):
            progress.append(f"{label} 0")
    convergence = frame.get("convergence")
    if convergence is not None:
        progress.append(f"max CI width {convergence:.4g}")
    if progress:
        lines.append("   ".join(progress))
    lines.append("")

    workers = frame.get("workers", {})
    if workers:
        ewma = study.get("ewma", {})
        lines.append(
            f"{'WORKER':<16}{'GROUPS':>7}{'EWMA s':>9}{'MEAN s':>9}"
            f"{'SENT MB':>9}{'SUSP s':>8}{'SUSP %':>7}"
        )
        for name in sorted(workers):
            row = workers[name]
            mean = row.get("mean_group_seconds", 0.0)
            blocked = row.get("blocked_seconds", 0.0)
            ew = ewma.get(name)
            lines.append(
                f"{name:<16}{row.get('groups', 0):>7}"
                f"{(f'{ew:9.3f}' if ew is not None else '        -')}"
                f"{mean:9.3f}"
                f"{_mb(row.get('bytes_sent', 0.0)):>9}"
                f"{blocked:8.2f}{_pct(blocked, elapsed):>7}"
            )
        lines.append("")

    ranks = frame.get("ranks", {})
    if ranks:
        lines.append(
            f"{'RANK':<8}{'FOLDS':>7}{'FOLD s':>9}{'RECV MB':>9}"
            f"{'MSGS':>9}{'SUSP s':>8}{'SUSP %':>7}"
        )
        for name in sorted(ranks, key=lambda r: (len(r), r)):
            row = ranks[name]
            blocked = row.get("blocked_seconds", 0.0)
            lines.append(
                f"{name:<8}{row.get('folds', 0):>7}"
                f"{row.get('fold_seconds', 0.0):9.2f}"
                f"{_mb(row.get('bytes_received', 0.0)):>9}"
                f"{int(row.get('messages_received', 0)):>9}"
                f"{blocked:8.2f}{_pct(blocked, elapsed):>7}"
            )
    return "\n".join(lines)


def run_top(
    source: str,
    interval: float = 1.0,
    once: bool = False,
    out=None,
    max_errors: int = 10,
) -> int:
    """Dashboard loop; returns a process exit code.

    ``once`` renders a single frame and exits (CI-friendly).  The live
    loop tolerates transient fetch errors (launch still starting, file
    mid-write) up to ``max_errors`` consecutive failures.
    """
    out = sys.stdout if out is None else out
    errors = 0
    while True:
        try:
            frame = fetch_frame(source)
            errors = 0
        except (OSError, urllib.error.URLError, json.JSONDecodeError) as exc:
            errors += 1
            if once or errors >= max_errors:
                print(f"repro top: cannot read {source}: {exc}", file=out)
                return 1
            frame = None
        text = render_frame(frame)
        if once:
            print(text, file=out)
            return 0
        print(f"{_CLEAR}{text}", file=out, flush=True)
        try:
            time.sleep(max(interval, 0.1))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
