"""Coordinator-side aggregation of shipped telemetry: ``StudyTelemetry``.

Ranks and workers piggyback payloads on their heartbeat frames (see
:mod:`repro.net.framing`)::

    {"metrics": <snapshot delta>, "spans": [<tracer records>]}

The coordinator hands each payload to :meth:`StudyTelemetry.ingest`,
which folds the metric delta into a per-sender accumulated snapshot and
routes span records to the study tracer.  :meth:`combined` merges the
coordinator's own registry with every sender's accumulation into one
study-wide snapshot — the object behind ``--metrics-file`` JSONL lines,
the ``/metrics`` endpoints, and ``repro top``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.telemetry.registry import MetricsRegistry, delta, merge
from repro.telemetry.tracer import Tracer

__all__ = ["StudyTelemetry", "series_value", "series_table"]


def series_value(snapshot: dict, metric: str, **labels) -> float:
    """One counter/gauge series value out of a snapshot (0.0 if absent)."""
    entry = snapshot.get(metric)
    if not entry:
        return 0.0
    want = {str(k): str(v) for k, v in labels.items()}
    for series in entry.get("series", []):
        if {str(k): str(v) for k, v in series.get("labels", {}).items()} == want:
            return float(series.get("value", 0.0))
    return 0.0


def series_table(snapshot: dict, metric: str, label: str) -> Dict[str, dict]:
    """Index a metric's series by one label's value.

    Counters/gauges map to ``{"value": v}``; histograms to
    ``{"sum": s, "count": n, "mean": s/n}``.  Series missing the label
    are skipped.
    """
    entry = snapshot.get(metric)
    if not entry:
        return {}
    out: Dict[str, dict] = {}
    for series in entry.get("series", []):
        labels = series.get("labels", {})
        if label not in labels:
            continue
        if "counts" in series:
            count = int(series.get("count", 0))
            total = float(series.get("sum", 0.0))
            out[str(labels[label])] = {
                "sum": total,
                "count": count,
                "mean": total / count if count else 0.0,
            }
        else:
            out[str(labels[label])] = {"value": float(series.get("value", 0.0))}
    return out


class StudyTelemetry:
    """Live study-wide telemetry view assembled from heartbeat payloads.

    Parameters
    ----------
    registry:
        The coordinator's local registry (its own queue/scheduler
        counters).  Merged into :meth:`combined` alongside remote data.
    tracer:
        Optional study tracer; shipped span records are folded into it.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if registry is None:
            from repro.telemetry import REGISTRY
            registry = REGISTRY
        self.registry = registry
        self.tracer = tracer
        self.started = time.time()
        self._lock = threading.Lock()
        self._remote: Dict[str, dict] = {}
        self._payloads = 0

    # -- ingest --------------------------------------------------------- #
    def ingest(self, sender: str, payload: Optional[dict]) -> None:
        """Fold one heartbeat payload from ``sender`` into the view."""
        if not payload:
            return
        metrics = payload.get("metrics")
        with self._lock:
            self._payloads += 1
            if metrics:
                self._remote[sender] = merge(self._remote.get(sender), metrics)
        spans = payload.get("spans")
        if spans and self.tracer is not None:
            self.tracer.extend(spans)

    @property
    def payloads_ingested(self) -> int:
        with self._lock:
            return self._payloads

    def senders(self):
        with self._lock:
            return sorted(self._remote)

    # -- export --------------------------------------------------------- #
    def combined(self) -> dict:
        """Study-wide snapshot: local registry + every sender, merged."""
        out = merge(None, self.registry.snapshot())
        with self._lock:
            remotes = list(self._remote.values())
        for remote in remotes:
            merge(out, remote)
        return out

    def view(self, study: Optional[dict] = None) -> dict:
        """One dashboard frame: study state + derived tables + snapshot.

        ``study`` carries coordinator facts the registry does not hold
        (progress counts, per-worker EWMA from the scheduling policy).
        The frame is JSON-ready — it is exactly one ``--metrics-file``
        JSONL line and the ``/metrics.json`` response body.
        """
        snapshot = self.combined()
        now = time.time()
        workers: Dict[str, dict] = {}
        for name, stats in series_table(
            snapshot, "repro_worker_group_seconds", "worker"
        ).items():
            workers[name] = {
                "groups": stats["count"],
                "mean_group_seconds": stats["mean"],
            }
        for metric, field in (
            ("repro_worker_bytes_sent", "bytes_sent"),
            ("repro_worker_blocked_seconds", "blocked_seconds"),
            ("repro_worker_send_blocks", "send_blocks"),
        ):
            for name, stats in series_table(snapshot, metric, "worker").items():
                workers.setdefault(name, {})[field] = stats["value"]
        ranks: Dict[str, dict] = {}
        for name, stats in series_table(
            snapshot, "repro_rank_fold_seconds", "rank"
        ).items():
            ranks[name] = {"folds": stats["count"], "fold_seconds": stats["sum"]}
        for metric, field in (
            ("repro_rank_bytes_received", "bytes_received"),
            ("repro_rank_messages_received", "messages_received"),
            ("repro_rank_recv_blocked_seconds", "blocked_seconds"),
            ("repro_rank_recv_blocks", "recv_blocks"),
            ("repro_rank_max_ci_width", "max_ci_width"),
        ):
            for name, stats in series_table(snapshot, metric, "rank").items():
                ranks.setdefault(name, {})[field] = stats["value"]
        widths = [
            r["max_ci_width"] for r in ranks.values()
            if "max_ci_width" in r and r["max_ci_width"] == r["max_ci_width"]
        ]
        frame = {
            "time": now,
            "elapsed": now - self.started,
            "study": dict(study or {}),
            "convergence": max(widths) if widths else None,
            "workers": workers,
            "ranks": ranks,
            "metrics": snapshot,
        }
        return frame


# re-exported for senders: build "what changed since my last heartbeat"
__all__.append("delta")
