"""Structured logging for the distributed processes.

Every serve / work / launch process logs through here with its identity
bound once (study fingerprint prefix, rank or worker name); per-event
ids (group, pid) ride on individual calls.  Two formats:

* text (default): ``HH:MM:SS.mmm LEVEL logger | key=value ... msg`` —
  compact and greppable per entity (``grep 'rank=0' serve.log``);
* JSON (``--log-json``): one object per line with ``ts``, ``level``,
  ``logger``, ``msg`` and every bound/per-call id as a top-level key —
  machine-parseable for multi-process log aggregation.

Uses stdlib :mod:`logging` only.  Library modules obtain loggers with
:func:`get_logger` and attach ids via ``extra=ids(...)``;
:func:`configure_logging` is called once per process from the CLI
(``--log-level`` / ``--log-json``) or test harness.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

__all__ = ["configure_logging", "get_logger", "ids"]

_ID_FIELDS = ("study", "rank", "worker", "group", "pid", "peer", "event")
_CONFIGURED = False


def ids(**kv) -> dict:
    """``extra=`` dict carrying entity ids on one log record."""
    return {"repro_ids": {k: v for k, v in kv.items() if v is not None}}


class _TextFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        t = time.localtime(record.created)
        stamp = time.strftime("%H:%M:%S", t) + f".{int(record.msecs):03d}"
        bound = getattr(record, "repro_ids", None) or {}
        pairs = " ".join(f"{k}={bound[k]}" for k in sorted(bound))
        prefix = f"{stamp} {record.levelname:<7} {record.name}"
        msg = record.getMessage()
        if record.exc_info:
            msg += " | " + self.formatException(record.exc_info).splitlines()[-1]
        return f"{prefix} | {pairs + ' | ' if pairs else ''}{msg}"


class _JSONFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        bound = getattr(record, "repro_ids", None) or {}
        for key, value in bound.items():
            out.setdefault(key, value)
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, default=str)


class _BoundAdapter(logging.LoggerAdapter):
    """Adapter merging bound ids with per-call ``extra=ids(...)``."""

    def process(self, msg, kwargs):
        bound = dict(self.extra.get("repro_ids", {}))
        call = kwargs.get("extra") or {}
        bound.update(call.get("repro_ids", {}))
        kwargs["extra"] = {"repro_ids": bound}
        return msg, kwargs


def configure_logging(
    level: str = "warning",
    json_mode: bool = False,
    stream=None,
) -> None:
    """Install the repro handler/formatter on the ``repro`` logger tree.

    Idempotent per process: reconfiguring replaces the handler (so tests
    and respawned processes can switch format/level freely).  Only the
    ``repro`` namespace is touched — user application logging is left
    alone.
    """
    global _CONFIGURED
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JSONFormatter() if json_mode else _TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, str(level).upper(), logging.WARNING))
    logger.propagate = False
    _CONFIGURED = True


def get_logger(name: str, **bound_ids) -> logging.LoggerAdapter:
    """Logger under the ``repro`` namespace with ids bound once.

    ``get_logger("serve", rank=0, study="ab12cd")`` stamps every record
    with ``rank=0 study=ab12cd``.  Safe before :func:`configure_logging`
    — records then flow to the root logger's last-resort handler at
    WARNING+, matching previous (print-free) behaviour.
    """
    base = logging.getLogger(
        name if name.startswith("repro") else f"repro.{name}"
    )
    return _BoundAdapter(base, ids(**bound_ids))
