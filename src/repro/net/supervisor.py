"""Server-rank supervision: the live half of the launcher protocol.

The paper's launcher kills an unresponsive server and restarts it from
its last checkpoint (Sec. 4.2.3).  :class:`~repro.core.launcher`
models those decisions as pure bookkeeping; this module executes them
against real ``repro serve`` processes:

* the :class:`~repro.net.coordinator.Coordinator` feeds rank heartbeats
  into a :class:`~repro.core.launcher.RankRespawnPolicy` and reports
  lost control connections;
* on a death verdict the :class:`RankSupervisor` SIGKILLs whatever is
  left of the old process (a zombie rank is alive-but-silent and must be
  removed before its successor binds a fresh data port) and invokes the
  ``spawner`` callback to start a replacement ``repro serve --rank K``;
* the replacement restores its per-rank checkpoint, re-registers with
  the rendezvous (publishing a NEW data address), and reports which
  groups its restored statistics already contain — the coordinator then
  requeues every group the restored state is missing, and
  discard-on-replay makes the overlap harmless (Sec. 4.2.2).

The supervisor can only signal processes on its own host; multi-host
deployments point ``spawner`` at their own process manager (or respawn
``repro serve`` externally — the re-registration protocol is the same).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.core.launcher import RankRespawnPolicy, RespawnBudgetExceeded

__all__ = ["PoolSupervisor", "RankSupervisor", "RespawnBudgetExceeded"]


class RankSupervisor:
    """Kill-and-respawn executor over a :class:`RankRespawnPolicy`.

    Parameters
    ----------
    spawner:
        ``spawner(rank)`` starts a replacement serve process for
        ``rank``; called with no locks held.  Loopback runtimes fork
        :func:`~repro.net.serve.run_server_rank`, the CLI launcher spawns
        a ``repro serve`` subprocess.
    policy:
        The respawn bookkeeping (heartbeat staleness + budget).
    kill:
        Signal delivery, overridable in tests; defaults to ``os.kill``.
    """

    def __init__(
        self,
        spawner: Callable[[int], None],
        policy: RankRespawnPolicy,
        kill: Callable[[int, int], None] = os.kill,
    ):
        self.spawner = spawner
        self.policy = policy
        self._kill = kill
        self._lock = threading.Lock()
        self._pids: Dict[int, Optional[int]] = {}
        self.killed_pids: List[int] = []

    # ------------------------------------------------------------------ #
    def watch(self, rank: int, pid: Optional[int]) -> None:
        """A (re-)registered rank told us its pid; remember it for kills."""
        with self._lock:
            self._pids[rank] = pid

    def beat(self, rank: int, now: float) -> None:
        self.policy.record_heartbeat(rank, now)

    def stale_ranks(self, now: float) -> List[int]:
        return self.policy.stale_ranks(now)

    # ------------------------------------------------------------------ #
    def respawn(self, rank: int) -> None:
        """Execute one kill-and-respawn for a dead/silent rank.

        The kill comes FIRST: even when the respawn budget is exhausted
        and the study is about to abort, a zombie must not leak as a
        live stuck process holding its data port.  Raises
        :class:`RespawnBudgetExceeded` when the rank has died more often
        than the budget allows — the study cannot make progress and
        should abort loudly rather than thrash.
        """
        with self._lock:
            pid = self._pids.pop(rank, None)
        if pid:
            try:
                self._kill(pid, signal.SIGKILL)
                self.killed_pids.append(pid)
            except (ProcessLookupError, PermissionError):
                pass  # already gone (a crash, not a zombie)
        self.policy.record_respawn(rank, time.monotonic())
        self.spawner(rank)
        # re-arm staleness from "replacement spawned": a replacement that
        # dies before it ever registers must be caught and retried within
        # the remaining budget, not stall the study
        self.policy.record_heartbeat(rank, time.monotonic())

    @property
    def total_respawns(self) -> int:
        return self.policy.total_respawns


class PoolSupervisor:
    """Elastic worker-pool executor over an
    :class:`~repro.scheduler.policy.ElasticPoolPolicy`.

    The decision/execution split mirrors :class:`RankSupervisor`: the
    policy is pure watermark bookkeeping (queue depth vs high/low water,
    spawn budget, cooldown), this class executes its verdicts against
    real ``repro work`` processes — the paper's Fig. 6 elastic ramp
    driven by the live queue instead of the batch scheduler.

    Parameters
    ----------
    spawner:
        ``spawner(index)`` starts one extra group-worker process; called
        with no locks held.  The loopback runtime forks
        :func:`~repro.net.worker.run_worker` with ``elastic=True``; the
        CLI launcher spawns a ``repro work --elastic`` subprocess.
    policy:
        The resize bookkeeping.
    """

    def __init__(self, spawner: Callable[[int], None], policy):
        self.spawner = spawner
        self.policy = policy
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def maybe_spawn(
        self, queue_depth: int, active_workers: int, now: Optional[float] = None
    ) -> bool:
        """Spawn one extra worker if the policy wants one right now.

        Called from the coordinator's wait loop with no coordinator lock
        held (the spawner forks/execs).  One worker per call: the
        cooldown paces the ramp, so a deep queue grows the pool
        gradually instead of all at once.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self.policy.want_spawn(queue_depth, active_workers, now):
                return False
            self.policy.record_spawn(now)
            index = self.policy.spawned - 1
        self.spawner(index)
        return True

    def offer_retire(
        self, queue_depth: int, active_workers: int, now: Optional[float] = None
    ) -> bool:
        """Should the elastic worker asking for work be retired instead?

        Pure bookkeeping (safe under the coordinator lock): on True the
        caller sends the worker a ``retire`` op and it exits cleanly.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self.policy.want_retire(queue_depth, active_workers, now):
                return False
            self.policy.record_retire(now)
            return True

    def worker_lost(self, now: Optional[float] = None) -> None:
        """An elastic worker died without being retired: free its slot so
        the budgeted remainder can still spawn replacements."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self.policy.extra_lost(now)

    @property
    def spawned_total(self) -> int:
        return self.policy.spawned

    @property
    def retired_total(self) -> int:
        return self.policy.retired
