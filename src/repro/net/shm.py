"""Shared-memory ring transport for same-host data channels.

``BENCH_transport.json`` put loopback TCP ~13x behind the in-memory
queue — a tax every same-host rank<->worker channel pays even though the
bytes never leave the machine.  This module closes that gap with a
single-producer single-consumer byte ring in one
:mod:`multiprocessing.shared_memory` segment per channel:

* the **producer** (:class:`ShmChannel`, the worker side) packs frames —
  the exact wire format of :mod:`repro.net.framing`, prefix + tag +
  header + payload — into the ring and publishes the tail cursor only
  after the frame is fully written, so every frame a consumer can see is
  complete even if the producer was SIGKILLed mid-write;
* the **consumer** (the rank's :class:`~repro.net.channel.DataListener`
  event loop) decodes frames in place, moves them into the rank's inbox,
  and advances the head cursor only *after* the inbox accepted the
  message — ring-empty therefore means "everything I sent is at least in
  the rank's inbox", which is exactly the guarantee
  :meth:`ShmChannel.flush` (and thus ``GROUP_DONE``) is built on.

The paper's dual high-water-mark suspension semantics (Sec. 4.1.3) carry
over unchanged: the sender's budget is ``send_hwm_bytes`` of in-flight
ring bytes (the analog of the TCP outbox + credit window), the
receiver's budget is the rank inbox — when the inbox fills, the event
loop stops draining, the ring fills, and ``try_send`` returns False:
the group suspends, Fig. 6a/b style.

The TCP control socket from channel negotiation stays open alongside the
ring: it detects peer death (EOF), carries the doorbell wakeups that let
the consumer's event loop sleep when every ring is idle, and is the
fallback fabric when the segment cannot be attached (cross-host).

Cursors are monotonically increasing u64s on separate cache lines,
written only by their owning side; 8-byte aligned loads/stores are
atomic on every platform CPython runs on.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.net.framing import (
    _FIELD_HEADER,
    _GROUP_HEADER,
    _PREFIX,
    ConnectionLost,
    Doorbell,
    ProtocolError,
    TAG_FIELD,
    TAG_GROUP_FIELD,
    check_body_len,
    decode_control_body,
    encode_frame,
    field_payload_cells,
    frame_nbytes,
    group_payload_shape,
    recv_frame,
    send_frame,
)
from repro.transport.channel import ChannelClosed, ChannelStats
from repro.transport.message import FieldMessage, GroupFieldMessage

_OFF_TAIL = 0  # producer cursor (u64, producer-written)
_OFF_HEAD = 64  # consumer cursor (u64, consumer-written)
_OFF_CAPACITY = 128  # data-region size (u64, creator-written, then constant)
_OFF_PRODUCER_CLOSED = 136
_OFF_CONSUMER_CLOSED = 137
_OFF_CONSUMER_WAITING = 138  # consumer is about to sleep: ring the doorbell
_DATA_OFFSET = 192

DEFAULT_RING_BYTES = 1 << 20
MIN_RING_BYTES = 1 << 16
MAX_RING_BYTES = 1 << 30


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


class ShmRing:
    """SPSC byte ring over one shared-memory segment (frame-agnostic).

    Positions are *logical* (monotonic); physical offsets are positions
    modulo capacity.  The producer publishes ``tail`` after writing, the
    consumer publishes ``head`` after consuming — no locks cross the
    process boundary.
    """

    def __init__(self, shm, owner: bool):
        self._shm = shm
        self._owner = owner
        self._mv = memoryview(shm.buf)
        self._tail = self._mv[_OFF_TAIL : _OFF_TAIL + 8].cast("Q")
        self._head = self._mv[_OFF_HEAD : _OFF_HEAD + 8].cast("Q")
        (self.capacity,) = struct.unpack_from("<Q", self._mv, _OFF_CAPACITY)
        # one uint8 view over the data region: numpy-to-numpy slice
        # copies release the GIL, letting producer, event loop, and the
        # rank's fold thread overlap instead of serializing on copies
        self._data = np.frombuffer(
            shm.buf, dtype=np.uint8, count=self.capacity, offset=_DATA_OFFSET
        )
        # flat byte view for the write path: memoryview slice assignment
        # is a straight C memcpy with no array-object churn per part
        self._dmv = self._mv[_DATA_OFFSET : _DATA_OFFSET + self.capacity]
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        shared_memory = _shared_memory()
        capacity = int(min(max(capacity, MIN_RING_BYTES), MAX_RING_BYTES))
        shm = shared_memory.SharedMemory(
            create=True, size=_DATA_OFFSET + capacity
        )
        struct.pack_into("<Q", shm.buf, _OFF_CAPACITY, capacity)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        shared_memory = _shared_memory()
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track flag
            shm = shared_memory.SharedMemory(name=name)
            try:
                from multiprocessing import resource_tracker

                # attaching must not register the segment a second time:
                # the creator's tracker owns cleanup, and a double
                # registration yields double-unlink warnings at exit
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------ #
    # cursors and flags
    # ------------------------------------------------------------------ #
    def used(self) -> int:
        return int(self._tail[0] - self._head[0])

    def free(self) -> int:
        return self.capacity - self.used()

    @property
    def producer_closed(self) -> bool:
        return bool(self._mv[_OFF_PRODUCER_CLOSED])

    @property
    def consumer_closed(self) -> bool:
        return bool(self._mv[_OFF_CONSUMER_CLOSED])

    def close_producer(self) -> None:
        self._mv[_OFF_PRODUCER_CLOSED] = 1

    def close_consumer(self) -> None:
        self._mv[_OFF_CONSUMER_CLOSED] = 1

    @property
    def consumer_waiting(self) -> bool:
        return bool(self._mv[_OFF_CONSUMER_WAITING])

    def set_consumer_waiting(self, value: bool) -> None:
        """Eventcount handshake closing the lost-doorbell race: the
        consumer raises this before sleeping (then re-checks ``used``),
        the producer rings and clears it whenever it publishes into a
        waiting ring — not just on the empty->nonempty transition."""
        self._mv[_OFF_CONSUMER_WAITING] = 1 if value else 0

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def write(self, parts: List[Any]) -> int:
        """Copy ``parts`` in at the tail and publish; caller checked space."""
        cap = self.capacity
        dmv = self._dmv
        pos = int(self._tail[0])
        total = 0
        for part in parts:
            src = part if isinstance(part, memoryview) else memoryview(part)
            n = src.nbytes
            off = pos % cap
            end = off + n
            if end <= cap:
                dmv[off:end] = src
            else:
                first = cap - off
                dmv[off:] = src[:first]
                dmv[: n - first] = src[first:]
            pos += n
            total += n
        self._tail[0] = pos  # publish only after the full frame is in
        return total

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def peek(self, offset: int, nbytes: int) -> bytes:
        """``nbytes`` starting ``offset`` bytes past the head (no consume)."""
        off = (int(self._head[0]) + offset) % self.capacity
        end = off + nbytes
        if end <= self.capacity:  # hot path: no wrap, one allocation
            return self._data[off:end].tobytes()
        first = self.capacity - off
        return (
            self._data[off:].tobytes() + self._data[: nbytes - first].tobytes()
        )

    def copy_out(self, offset: int, dst: np.ndarray) -> None:
        """Fill uint8 view ``dst`` from ``offset`` bytes past the head."""
        nbytes = len(dst)
        pos = int(self._head[0]) + offset
        off = pos % self.capacity
        first = min(nbytes, self.capacity - off)
        dst[:first] = self._data[off : off + first]
        if nbytes > first:
            dst[first:] = self._data[: nbytes - first]

    def advance(self, nbytes: int) -> None:
        self._head[0] = int(self._head[0]) + nbytes

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unmap this side's view of the segment (does not unlink)."""
        if self._closed:
            return
        self._closed = True
        # every exported view must be released before the mmap can close
        self._data = None
        self._dmv.release()
        self._tail.release()
        self._head.release()
        self._mv.release()
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Remove the segment name (mappings live on until unmapped).

        Safe to call from either side and more than once: whoever
        notices the channel ending first removes the name, so a SIGKILL
        of one end never leaks the segment past the surviving end.
        """
        # SharedMemory.unlink() unregisters from the resource tracker
        # exactly when the handle is tracked (py<3.13: always; py3.13+:
        # unless track=False).  Register first so that unregister always
        # finds an entry — whatever attach/create did to the (set-
        # semantics) tracker cache before us — and compensate when the
        # peer already removed the name and unlink never unregisters.
        tracked = getattr(self._shm, "_track", True)
        name = getattr(self._shm, "_name", None)
        resource_tracker = None
        if tracked and name is not None:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(name, "shared_memory")
            except Exception:
                resource_tracker = None
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):
            if resource_tracker is not None:
                try:
                    resource_tracker.unregister(name, "shared_memory")
                except Exception:
                    pass


def read_ring_frame(ring: ShmRing, offset: int = 0) -> Optional[Tuple[Any, int]]:
    """Decode the complete frame ``offset`` bytes past the head without
    consuming anything.

    Returns ``(message, total_frame_bytes)`` or None when the ring holds
    no complete frame there.  A non-zero ``offset`` lets the consumer
    decode a batch of frames and advance the head once for all of them;
    the head still only moves after the messages safely landed (inbox
    accepted them) — see module docstring.
    """
    used = ring.used() - offset
    head_len = _PREFIX.size + 1
    if used < head_len:
        return None
    # single probe: prefix + tag + the fixed data header in one peek.  A
    # data frame is only visible once fully published, so whenever the
    # tag turns out to be F/G the probe is guaranteed to have covered
    # the whole 45-byte head.
    probe = head_len + _FIELD_HEADER.size
    head = ring.peek(offset, probe if used >= probe else head_len)
    (body_len,) = _PREFIX.unpack_from(head)
    check_body_len(body_len)
    total = _PREFIX.size + body_len
    if used < total:
        # producers publish whole frames, so this only happens when the
        # producer died mid-write before publishing — never consume it
        return None
    tag = head[_PREFIX.size : head_len]
    if tag == TAG_FIELD:
        group, member, step, lo, hi = _FIELD_HEADER.unpack_from(head, head_len)
        ncells = field_payload_cells(body_len, lo, hi)
        data = np.empty(ncells, dtype=np.float64)
        ring.copy_out(
            offset + head_len + _FIELD_HEADER.size, data.view(np.uint8)
        )
        return FieldMessage(group, member, step, lo, hi, data), total
    if tag == TAG_GROUP_FIELD:
        group, step, lo, hi, nmembers = _GROUP_HEADER.unpack_from(head, head_len)
        shape = group_payload_shape(body_len, lo, hi, nmembers)
        data = np.empty(shape, dtype=np.float64)
        ring.copy_out(
            offset + head_len + _GROUP_HEADER.size,
            data.reshape(-1).view(np.uint8),
        )
        return GroupFieldMessage(group, step, lo, hi, data), total
    body = ring.peek(offset + head_len, body_len - 1)
    return decode_control_body(tag, body), total


def ring_bytes_for(
    send_hwm_bytes: Optional[int], max_frame_hint: int = 0
) -> int:
    """Segment size request for one channel.

    Large enough that (a) the logical send budget fits physically and
    (b) any single frame the study can produce fits even when the
    budget is smaller than one frame (BoundedChannel's oversized-message
    rule admits such a frame into an empty channel — the ring must be
    able to hold it).
    """
    return max(
        DEFAULT_RING_BYTES,
        2 * (send_hwm_bytes or 0),
        2 * max_frame_hint,
    )


class ShmChannel:
    """Producer end of one same-host (worker, server-rank) data channel.

    Satisfies the :class:`~repro.transport.base.Channel` protocol with
    the same suspension-stats accounting as the TCP
    :class:`~repro.net.channel.SocketChannel`: ``send_blocks`` counts
    would-blocks, ``blocked_seconds`` accumulates blocking-send waits,
    ``high_water_bytes`` tracks peak in-flight ring bytes.
    """

    def __init__(
        self,
        sock: socket.socket,
        ring: ShmRing,
        send_hwm_bytes: Optional[int] = None,
        name: str = "",
    ):
        self.name = name or f"shm://{ring.name}"
        self._sock = sock
        self._ring = ring
        self._hwm = send_hwm_bytes
        self.stats = ChannelStats()
        self._lock = threading.Lock()  # serializes producers + doorbell
        self._error: Optional[BaseException] = None
        self._closed = False
        # the negotiation socket doubles as the liveness probe: a killed
        # rank resets it, which is how a blocked sender learns to stop
        self._reader = threading.Thread(
            target=self._watch_peer, name=f"{self.name}-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------ #
    @property
    def broken(self) -> bool:
        return self._error is not None

    def _raise_pending(self) -> None:
        if self._error is not None:
            raise ChannelClosed(f"{self.name}: connection failed") from self._error
        if self._closed:
            raise ChannelClosed(f"{self.name}: channel closed")

    def _fits(self, nbytes: int) -> bool:
        used = self._ring.used()
        if used == 0:
            # BoundedChannel's oversized rule: an idle channel admits any
            # frame that physically fits, so it can ever be delivered
            return nbytes <= self._ring.capacity
        if self._hwm is not None and used + nbytes > self._hwm:
            return False
        return used + nbytes <= self._ring.capacity

    def can_accept(self, nbytes: int) -> bool:
        # raising (not False) on a dead channel mirrors SocketChannel:
        # a silent "would block" would suspend the group forever instead
        # of surfacing the rank death to the reconnect path
        self._raise_pending()
        return self._fits(int(nbytes))

    def try_send(self, msg: Any) -> bool:
        self._raise_pending()
        nbytes = frame_nbytes(msg)
        with self._lock:
            if not self._fits(nbytes):
                self.stats.send_blocks += 1
                return False
            self._publish(msg, nbytes)
        return True

    def send(self, msg: Any, timeout: Optional[float] = None) -> None:
        self._raise_pending()
        nbytes = frame_nbytes(msg)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if not self._fits(nbytes):
                self.stats.send_blocks += 1
                start = time.monotonic()
                spins = 0
                while not self._fits(nbytes):
                    self._raise_pending()
                    if deadline is not None and time.monotonic() >= deadline:
                        self.stats.blocked_seconds += time.monotonic() - start
                        raise TimeoutError(f"send on {self.name} timed out")
                    # the consumer may be another process, so there is
                    # no condition to wait on: yield briefly, then back
                    # off to micro-sleeps — long sleep(0) spinning would
                    # steal the GIL from a same-process consumer thread
                    spins += 1
                    time.sleep(0 if spins < 4 else 0.00002)
                self.stats.blocked_seconds += time.monotonic() - start
            self._publish(msg, nbytes)

    def _publish(self, msg: Any, nbytes: int) -> None:
        was_empty = self._ring.used() == 0
        self._ring.write(encode_frame(msg))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        used = self._ring.used()
        if used > self.stats.high_water_bytes:
            self.stats.high_water_bytes = used
        if was_empty or self._ring.consumer_waiting:
            # ding the consumer's event loop so it drains now instead of
            # on its next safety-timeout tick; clearing the waiting flag
            # first keeps a burst of publishes to one doorbell
            self._ring.set_consumer_waiting(False)
            try:
                send_frame(self._sock, Doorbell())
            except (OSError, ConnectionError):
                pass  # peer death surfaces via the watcher thread

    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until the consumer drained every frame into its inbox."""
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            self._raise_pending()
            if not self._ring.used():
                return
            if self._ring.consumer_closed:
                raise ChannelClosed(f"{self.name}: receiver closed")
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{self.name}: {self._ring.used()} ring byte(s) not yet "
                    f"drained by the receiver after {timeout}s"
                )
            spins += 1
            time.sleep(0 if spins < 4 else 0.00002)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._ring.close_producer()
        except (OSError, ValueError):
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._ring.close()

    # ------------------------------------------------------------------ #
    def _watch_peer(self) -> None:
        try:
            while True:
                recv_frame(self._sock)  # credits are not used on shm
        except (ConnectionLost, OSError, ValueError) as exc:
            if not self._closed and self._error is None:
                self._error = exc
                # the rank died holding the segment open: drop the name
                # now so nothing leaks even if the creator's resource
                # tracker never runs (SIGKILL); mappings are unaffected
                self._ring.unlink()
