"""Length-prefixed binary framing for the distributed transport.

Every frame on the wire is::

    <u32 little-endian body length> <1 tag byte> <body>

Data-plane frames (``FieldMessage`` / ``GroupFieldMessage``) reuse the
struct headers of :mod:`repro.transport.message` and carry their float64
payloads as raw bytes.  They are written with ``socket.sendmsg`` over a
list of buffer views — header bytes plus a zero-copy ``memoryview`` of
the numpy payload, nothing is concatenated — and read by receiving the
payload straight into a preallocated array with ``recv_into``.

Control-plane frames are tiny: the connection handshake
(:class:`~repro.transport.message.ConnectionRequest` /
:class:`~repro.transport.message.ConnectionReply` + the per-rank address
table), :class:`~repro.transport.message.Heartbeat` liveness beacons,
flow-control :class:`Credit` grants, and a pickled ``dict`` frame for
the coordinator protocol (work assignment, rank-state collection).
"""

from __future__ import annotations

import pickle
import random
import selectors
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.transport.message import (
    ConnectionReply,
    ConnectionRequest,
    FieldMessage,
    GroupFieldMessage,
    Heartbeat,
)

_PREFIX = struct.Struct("<I")
_MAX_FRAME = 1 << 31  # sanity bound: one frame never exceeds 2 GiB

TAG_FIELD = b"F"
TAG_GROUP_FIELD = b"G"
TAG_CONN_REQUEST = b"Q"
TAG_CONN_REPLY = b"R"
TAG_HEARTBEAT = b"H"
TAG_HEARTBEAT_V2 = b"h"
TAG_CREDIT = b"C"
TAG_CONTROL = b"P"
TAG_DOORBELL = b"D"

_FIELD_HEADER = struct.Struct("<qqqqq")  # group, member, step, lo, hi
_GROUP_HEADER = struct.Struct("<qqqqq")  # group, step, lo, hi, nmembers
_CONN_REQUEST = struct.Struct("<qqq")  # group, ncells, nranks_client
_CREDIT = struct.Struct("<q")  # granted bytes (-1 = unlimited initial window)
_HEARTBEAT = struct.Struct("<d")  # time, then utf-8 sender
# v2 (telemetry piggyback): time, sender length, then sender + pickled
# payload.  Only sent after the peer advertises support (see Heartbeat
# docstring) — a metrics-free Heartbeat still encodes as the v1 layout,
# so old decoders never meet this tag.
_HEARTBEAT_V2 = struct.Struct("<dH")


class ConnectionLost(ConnectionError):
    """Peer closed the connection (EOF mid-stream or on a frame edge)."""


class ProtocolError(ValueError):
    """A frame's header contradicts its length prefix (corrupt stream).

    The length prefix is the framing ground truth: decoding must never
    allocate from header fields (``hi - lo``, ``nmembers``) that the
    prefix does not corroborate, or a corrupt header silently desyncs
    the stream — or feeds numpy a negative/huge shape.
    """


@dataclass(frozen=True)
class Doorbell:
    """Wakeup ping on a data connection whose payload rides a shm ring.

    Sent by a shared-memory sender when its write made an empty ring
    non-empty, so the receiving rank's event loop drains the ring now
    instead of on its next safety-timeout tick.
    """


@dataclass(frozen=True)
class Credit:
    """Flow-control grant: the receiver consumed/buffered ``nbytes`` more.

    The initial grant after accept advertises the receive window;
    ``nbytes == -1`` means the receive side is unbounded.
    """

    nbytes: int


@dataclass(frozen=True)
class AddressedReply:
    """:class:`ConnectionReply` plus the server ranks' data addresses.

    This is what the rendezvous actually hands a joining group: the
    partition fenceposts *and* where each rank listens, so the group can
    open direct channels to exactly the intersecting ranks.
    """

    reply: ConnectionReply
    addresses: Tuple[Tuple[str, int], ...]


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #
def encode_frame(msg: Any) -> List[Any]:
    """Buffer list for one frame (prefix+tag+header bytes, then payload
    views).  Numpy payloads appear as zero-copy memoryviews."""
    if isinstance(msg, FieldMessage):
        header = _FIELD_HEADER.pack(
            msg.group_id, msg.member, msg.timestep, msg.cell_lo, msg.cell_hi
        )
        payload = memoryview(msg.data).cast("B")
        body_len = 1 + len(header) + len(payload)
        return [_PREFIX.pack(body_len) + TAG_FIELD + header, payload]
    if isinstance(msg, GroupFieldMessage):
        header = _GROUP_HEADER.pack(
            msg.group_id, msg.timestep, msg.cell_lo, msg.cell_hi, msg.nmembers
        )
        payload = memoryview(np.ascontiguousarray(msg.data)).cast("B")
        body_len = 1 + len(header) + len(payload)
        return [_PREFIX.pack(body_len) + TAG_GROUP_FIELD + header, payload]
    if isinstance(msg, ConnectionRequest):
        body = _CONN_REQUEST.pack(msg.group_id, msg.ncells, msg.nranks_client)
        return [_PREFIX.pack(1 + len(body)) + TAG_CONN_REQUEST + body]
    if isinstance(msg, AddressedReply):
        n = msg.reply.nranks_server
        body = struct.pack("<q", n)
        body += struct.pack(f"<{n + 1}q", *msg.reply.offsets)
        for host, port in msg.addresses:
            encoded = host.encode("utf-8")
            body += struct.pack("<Hq", len(encoded), int(port)) + encoded
        return [_PREFIX.pack(1 + len(body)) + TAG_CONN_REPLY + body]
    if isinstance(msg, Heartbeat):
        sender = msg.sender.encode("utf-8")
        if msg.metrics is None:
            # legacy layout, byte-for-byte: old peers keep decoding it
            body = _HEARTBEAT.pack(msg.time) + sender
            return [_PREFIX.pack(1 + len(body)) + TAG_HEARTBEAT + body]
        payload = pickle.dumps(msg.metrics, protocol=pickle.HIGHEST_PROTOCOL)
        body = _HEARTBEAT_V2.pack(msg.time, len(sender)) + sender + payload
        return [_PREFIX.pack(1 + len(body)) + TAG_HEARTBEAT_V2 + body]
    if isinstance(msg, Credit):
        body = _CREDIT.pack(msg.nbytes)
        return [_PREFIX.pack(1 + len(body)) + TAG_CREDIT + body]
    if isinstance(msg, Doorbell):
        return [_PREFIX.pack(1) + TAG_DOORBELL]
    if isinstance(msg, dict):
        body = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        return [_PREFIX.pack(1 + len(body)) + TAG_CONTROL + body]
    raise TypeError(f"cannot frame message of type {type(msg)!r}")


def frame_nbytes(msg: Any) -> int:
    """Wire size of one framed message (drives flow-control accounting).

    Data-plane messages are computed in constant time — this runs up to
    four times per message on the hot path (deliver probe, outbox sizer,
    writer window accounting, receiver credit) and must not re-encode.
    """
    if isinstance(msg, FieldMessage):
        return _PREFIX.size + 1 + _FIELD_HEADER.size + msg.data.nbytes
    if isinstance(msg, GroupFieldMessage):
        return _PREFIX.size + 1 + _GROUP_HEADER.size + msg.data.nbytes
    return sum(len(part) for part in encode_frame(msg))


# --------------------------------------------------------------------- #
# header validation (the prefix is ground truth — satellite of ISSUE 9)
# --------------------------------------------------------------------- #
def field_payload_cells(body_len: int, lo: int, hi: int) -> int:
    """Validated cell count of a ``TAG_FIELD`` payload.

    Cross-checks the header's ``[lo, hi)`` range against the frame's
    length prefix before anything is allocated from it.
    """
    if lo < 0 or hi <= lo:
        raise ProtocolError(f"field header has invalid cell range [{lo}, {hi})")
    ncells = hi - lo
    expected = 1 + _FIELD_HEADER.size + 8 * ncells
    if body_len != expected:
        raise ProtocolError(
            f"field header claims {ncells} cells ({expected} body bytes) "
            f"but the frame prefix says {body_len}"
        )
    return ncells


def group_payload_shape(
    body_len: int, lo: int, hi: int, nmembers: int
) -> Tuple[int, int]:
    """Validated ``(nmembers, ncells)`` shape of a ``TAG_GROUP_FIELD``
    payload, cross-checked against the frame's length prefix."""
    if lo < 0 or hi <= lo or nmembers <= 0:
        raise ProtocolError(
            f"group header has invalid shape: range [{lo}, {hi}), "
            f"{nmembers} members"
        )
    ncells = hi - lo
    expected = 1 + _GROUP_HEADER.size + 8 * nmembers * ncells
    if body_len != expected:
        raise ProtocolError(
            f"group header claims {nmembers}x{ncells} cells ({expected} "
            f"body bytes) but the frame prefix says {body_len}"
        )
    return nmembers, ncells


def check_body_len(body_len: int) -> int:
    if not 1 <= body_len <= _MAX_FRAME:
        raise ProtocolError(f"invalid frame length {body_len}")
    return body_len


def decode_control_body(tag: bytes, body: bytes) -> Any:
    """Decode a non-field frame body (shared by every transport fabric)."""
    if tag == TAG_CONN_REQUEST:
        group, ncells, nranks_client = _CONN_REQUEST.unpack(body)
        return ConnectionRequest(group, ncells, nranks_client)
    if tag == TAG_CONN_REPLY:
        (n,) = struct.unpack_from("<q", body)
        offsets = struct.unpack_from(f"<{n + 1}q", body, 8)
        pos = 8 + 8 * (n + 1)
        addresses = []
        for _ in range(n):
            hlen, port = struct.unpack_from("<Hq", body, pos)
            pos += 10
            host = body[pos : pos + hlen].decode("utf-8")
            pos += hlen
            addresses.append((host, int(port)))
        return AddressedReply(
            ConnectionReply(nranks_server=n, offsets=offsets), tuple(addresses)
        )
    if tag == TAG_HEARTBEAT:
        (t,) = _HEARTBEAT.unpack_from(body)
        return Heartbeat(sender=body[_HEARTBEAT.size :].decode("utf-8"), time=t)
    if tag == TAG_HEARTBEAT_V2:
        t, sender_len = _HEARTBEAT_V2.unpack_from(body)
        pos = _HEARTBEAT_V2.size
        sender = body[pos : pos + sender_len].decode("utf-8")
        metrics = pickle.loads(body[pos + sender_len :])
        return Heartbeat(sender=sender, time=t, metrics=metrics)
    if tag == TAG_CREDIT:
        (nbytes,) = _CREDIT.unpack(body)
        return Credit(nbytes)
    if tag == TAG_DOORBELL:
        return Doorbell()
    if tag == TAG_CONTROL:
        return pickle.loads(body)
    raise ProtocolError(f"unknown frame tag {tag!r}")


# --------------------------------------------------------------------- #
# socket I/O
# --------------------------------------------------------------------- #
def _wait_writable(sock: socket.socket, timeout: float = 0.05) -> None:
    sel = selectors.DefaultSelector()
    try:
        sel.register(sock, selectors.EVENT_WRITE)
        sel.select(timeout)
    finally:
        sel.close()


def send_frame(sock: socket.socket, msg: Any) -> int:
    """Write one frame with scatter-gather I/O; returns bytes written.

    Works on blocking and non-blocking sockets alike: a would-block on a
    non-blocking socket waits for writability and retries, matching the
    blocking-socket semantics the callers rely on.
    """
    parts = encode_frame(msg)
    total = sum(len(p) for p in parts)
    sent = 0
    while parts:
        try:
            n = sock.sendmsg(parts)
        except BlockingIOError:
            _wait_writable(sock)
            continue
        sent += n
        if sent == total:
            break
        # short write: drop fully-sent buffers, trim the partial one
        while parts and n >= len(parts[0]):
            n -= len(parts[0])
            parts.pop(0)
        if parts and n:
            parts[0] = memoryview(parts[0])[n:]
    return total


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    while len(view):
        n = sock.recv_into(view)
        if n == 0:
            raise ConnectionLost("peer closed mid-frame")
        view = view[n:]


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray(nbytes)
    _recv_exact_into(sock, memoryview(buf))
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; raises :class:`ConnectionLost` on EOF.

    Field payloads are received directly into freshly allocated float64
    arrays (no intermediate bytes object).
    """
    try:
        prefix = sock.recv(_PREFIX.size, socket.MSG_WAITALL)
    except ConnectionError as exc:
        raise ConnectionLost(str(exc)) from exc
    if len(prefix) == 0:
        raise ConnectionLost("peer closed")
    if len(prefix) < _PREFIX.size:
        raise ConnectionLost("peer closed mid-prefix")
    (body_len,) = _PREFIX.unpack(prefix)
    check_body_len(body_len)
    tag = _recv_exact(sock, 1)

    if tag == TAG_FIELD:
        header = _recv_exact(sock, _FIELD_HEADER.size)
        group, member, step, lo, hi = _FIELD_HEADER.unpack(header)
        ncells = field_payload_cells(body_len, lo, hi)
        data = np.empty(ncells, dtype=np.float64)
        _recv_exact_into(sock, memoryview(data).cast("B"))
        return FieldMessage(group, member, step, lo, hi, data)
    if tag == TAG_GROUP_FIELD:
        header = _recv_exact(sock, _GROUP_HEADER.size)
        group, step, lo, hi, nmembers = _GROUP_HEADER.unpack(header)
        shape = group_payload_shape(body_len, lo, hi, nmembers)
        data = np.empty(shape, dtype=np.float64)
        _recv_exact_into(sock, memoryview(data).cast("B"))
        return GroupFieldMessage(group, step, lo, hi, data)

    body = _recv_exact(sock, body_len - 1)
    return decode_control_body(tag, body)


# --------------------------------------------------------------------- #
# incremental decoding for event-loop (non-blocking) sockets
# --------------------------------------------------------------------- #
class FrameReader:
    """Incremental frame decoder for one non-blocking socket.

    :meth:`pump` reads whatever the socket has buffered and returns the
    list of frames completed by it; partial frames persist across calls.
    Field payloads are still received straight into their preallocated
    arrays with ``recv_into`` — multiplexing onto one event loop does
    not give up the zero-copy receive path.

    Raises :class:`ConnectionLost` on EOF and :class:`ProtocolError`
    when a header contradicts the length prefix.
    """

    _HEAD, _BODY, _PAYLOAD = 0, 1, 2

    def __init__(self):
        self._buf = bytearray()
        self._stage = self._HEAD
        self._need = _PREFIX.size + 1
        self._body_len = 0
        self._tag = b""
        self._payload: Optional[memoryview] = None
        self._finish = None  # closure building the completed field message
        self._eof: Optional[str] = None

    def pump(self, sock: socket.socket, max_frames: int = 64) -> List[Any]:
        """Drain readable bytes; returns completed frames (maybe []).

        When the peer's final frames and its EOF arrive in one call, the
        decoded frames are returned first and :class:`ConnectionLost` is
        raised by the *next* pump — a goodbye frame riding the closing
        segment (``bye``, ``rank_state``) must not be dropped.
        """
        if self._eof is not None:
            raise ConnectionLost(self._eof)
        frames: List[Any] = []
        while len(frames) < max_frames:
            try:
                if self._stage == self._PAYLOAD:
                    n = sock.recv_into(self._payload)
                    if n == 0:
                        self._eof = "peer closed mid-frame"
                        break
                    self._payload = self._payload[n:]
                    if not len(self._payload):
                        frames.append(self._finish())
                        self._reset()
                    continue
                chunk = sock.recv(self._need - len(self._buf))
            except BlockingIOError:
                break
            except ConnectionError as exc:
                if frames:
                    self._eof = str(exc)
                    break
                raise ConnectionLost(str(exc)) from exc
            if not chunk:
                self._eof = (
                    "peer closed" if self._stage == self._HEAD and not self._buf
                    else "peer closed mid-frame"
                )
                break
            self._buf += chunk
            if len(self._buf) < self._need:
                continue
            if self._stage == self._HEAD:
                done = self._on_head(bytes(self._buf))
                if done is not None:
                    frames.append(done)
            else:
                body = bytes(self._buf)
                tag = self._tag
                self._reset()
                frames.append(decode_control_body(tag, body))
        if self._eof is not None and not frames:
            raise ConnectionLost(self._eof)
        return frames

    def _reset(self) -> None:
        self._buf.clear()
        self._stage = self._HEAD
        self._need = _PREFIX.size + 1
        self._payload = None
        self._finish = None

    def _on_head(self, head: bytes) -> Optional[Any]:
        if self._need == _PREFIX.size + 1:
            # prefix + tag are in: route to the fixed field header, the
            # raw control body, or complete a zero-body frame right here
            (body_len,) = _PREFIX.unpack_from(head)
            check_body_len(body_len)
            self._body_len = body_len
            self._tag = head[_PREFIX.size : _PREFIX.size + 1]
            self._buf.clear()
            if self._tag == TAG_FIELD:
                self._need = _PREFIX.size + 1 + _FIELD_HEADER.size
                self._buf += head  # stage completion is keyed off total need
            elif self._tag == TAG_GROUP_FIELD:
                self._need = _PREFIX.size + 1 + _GROUP_HEADER.size
                self._buf += head
            elif body_len == 1:
                tag = self._tag
                self._reset()
                return decode_control_body(tag, b"")
            else:
                self._stage = self._BODY
                self._need = body_len - 1
            return None
        # the fixed field header is complete
        header = head[_PREFIX.size + 1 :]
        body_len, tag = self._body_len, self._tag
        if tag == TAG_FIELD:
            group, member, step, lo, hi = _FIELD_HEADER.unpack(header)
            ncells = field_payload_cells(body_len, lo, hi)
            data = np.empty(ncells, dtype=np.float64)
            self._finish = lambda: FieldMessage(group, member, step, lo, hi, data)
        else:
            group, step, lo, hi, nmembers = _GROUP_HEADER.unpack(header)
            shape = group_payload_shape(body_len, lo, hi, nmembers)
            data = np.empty(shape, dtype=np.float64)
            self._finish = lambda: GroupFieldMessage(group, step, lo, hi, data)
        self._buf.clear()
        self._stage = self._PAYLOAD
        self._payload = memoryview(data).cast("B")
        return None


# --------------------------------------------------------------------- #
# connection convenience
# --------------------------------------------------------------------- #
class FrameConnection:
    """Thread-safe framed connection (one writer lock, pollable reads).

    The control plane uses this for request/reply exchanges and
    heartbeats; reads are blocking (with an optional pre-poll timeout)
    and writes are serialized so heartbeat frames can interleave with
    protocol frames from another thread.
    """

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (e.g. a Unix socketpair in tests)
        self._sock = sock
        self._wlock = threading.Lock()
        self._closed = False
        # registered once and reused: select.select would blow up on any
        # fd >= FD_SETSIZE (1024), which a busy coordinator host reaches
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ)

    @property
    def peername(self) -> str:
        try:
            peer = self._sock.getpeername()
        except OSError:
            return "<closed>"
        if isinstance(peer, tuple) and len(peer) >= 2:
            return f"{peer[0]}:{peer[1]}"
        return str(peer) or "<unix>"

    def send(self, msg: Any) -> None:
        with self._wlock:
            if self._closed:
                raise ConnectionLost("connection closed locally")
            try:
                send_frame(self._sock, msg)
            except (OSError, ConnectionError) as exc:
                raise ConnectionLost(str(exc)) from exc

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame prefix is readable within ``timeout``."""
        if self._closed:
            return False
        try:
            return bool(self._selector.select(timeout))
        except (OSError, ValueError):
            return False  # racing a concurrent close

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Read one frame; ``TimeoutError`` if nothing arrives in time.

        Control frames are tiny, so once the prefix is readable the rest
        is read blocking.
        """
        if timeout is not None and not self.poll(timeout):
            raise TimeoutError(f"no frame from {self.peername} in {timeout}s")
        try:
            return recv_frame(self._sock)
        except OSError as exc:
            raise ConnectionLost(str(exc)) from exc

    def close(self) -> None:
        self._closed = True
        try:
            self._selector.close()
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class DialTimeout(ConnectionError):
    """:func:`connect_with_retry` exhausted its deadline dialing a peer."""


def backoff_intervals(
    initial: float = 0.05,
    cap: float = 2.0,
    factor: float = 2.0,
    jitter: float = 0.5,
    rng: Optional[random.Random] = None,
):
    """Jittered exponential backoff delays: ``initial * factor**n``
    capped at ``cap``, each stretched by up to ``jitter`` of itself.

    The jitter decorrelates retry storms: when a coordinator restarts,
    every serve/work process that lost it re-dials — without jitter they
    all hammer the listen backlog on the same schedule.  ``rng`` is
    injectable so tests can pin the sequence.
    """
    rng = random.Random() if rng is None else rng
    delay = initial
    while True:
        yield delay * (1.0 + jitter * rng.random())
        delay = min(cap, delay * factor)


def connect_with_retry(
    address: Tuple[str, int],
    timeout: float = 10.0,
    interval: float = 0.05,
    max_interval: float = 2.0,
    rng: Optional[random.Random] = None,
) -> FrameConnection:
    """Dial ``address``, retrying while the endpoint is still coming up.

    ``repro serve`` / ``repro work`` processes may legitimately start
    before ``repro launch`` binds its rendezvous port.  Retries back off
    exponentially from ``interval`` to ``max_interval`` with decorrelating
    jitter (see :func:`backoff_intervals`); past the overall ``timeout``
    deadline a :class:`DialTimeout` names the address given up on and
    chains the last connect error.
    """
    from repro import telemetry

    retries = telemetry.REGISTRY.counter(
        "repro_dial_retries", "connect attempts that had to be retried"
    )
    deadline = time.monotonic() + timeout
    delays = backoff_intervals(initial=interval, cap=max_interval, rng=rng)
    last_error: Optional[OSError] = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            host, port = address
            raise DialTimeout(
                f"gave up dialing {host}:{port} after {timeout:.1f}s "
                f"(last error: {last_error})"
            ) from last_error
        try:
            return FrameConnection(
                socket.create_connection(address, timeout=max(remaining, 0.001))
            )
        except OSError as exc:
            last_error = exc
            retries.inc()
            pause = min(next(delays), deadline - time.monotonic())
            if pause > 0:
                time.sleep(pause)
