"""Length-prefixed binary framing for the distributed transport.

Every frame on the wire is::

    <u32 little-endian body length> <1 tag byte> <body>

Data-plane frames (``FieldMessage`` / ``GroupFieldMessage``) reuse the
struct headers of :mod:`repro.transport.message` and carry their float64
payloads as raw bytes.  They are written with ``socket.sendmsg`` over a
list of buffer views — header bytes plus a zero-copy ``memoryview`` of
the numpy payload, nothing is concatenated — and read by receiving the
payload straight into a preallocated array with ``recv_into``.

Control-plane frames are tiny: the connection handshake
(:class:`~repro.transport.message.ConnectionRequest` /
:class:`~repro.transport.message.ConnectionReply` + the per-rank address
table), :class:`~repro.transport.message.Heartbeat` liveness beacons,
flow-control :class:`Credit` grants, and a pickled ``dict`` frame for
the coordinator protocol (work assignment, rank-state collection).
"""

from __future__ import annotations

import pickle
import random
import select
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.transport.message import (
    ConnectionReply,
    ConnectionRequest,
    FieldMessage,
    GroupFieldMessage,
    Heartbeat,
)

_PREFIX = struct.Struct("<I")
_MAX_FRAME = 1 << 31  # sanity bound: one frame never exceeds 2 GiB

TAG_FIELD = b"F"
TAG_GROUP_FIELD = b"G"
TAG_CONN_REQUEST = b"Q"
TAG_CONN_REPLY = b"R"
TAG_HEARTBEAT = b"H"
TAG_HEARTBEAT_V2 = b"h"
TAG_CREDIT = b"C"
TAG_CONTROL = b"P"

_FIELD_HEADER = struct.Struct("<qqqqq")  # group, member, step, lo, hi
_GROUP_HEADER = struct.Struct("<qqqqq")  # group, step, lo, hi, nmembers
_CONN_REQUEST = struct.Struct("<qqq")  # group, ncells, nranks_client
_CREDIT = struct.Struct("<q")  # granted bytes (-1 = unlimited initial window)
_HEARTBEAT = struct.Struct("<d")  # time, then utf-8 sender
# v2 (telemetry piggyback): time, sender length, then sender + pickled
# payload.  Only sent after the peer advertises support (see Heartbeat
# docstring) — a metrics-free Heartbeat still encodes as the v1 layout,
# so old decoders never meet this tag.
_HEARTBEAT_V2 = struct.Struct("<dH")


class ConnectionLost(ConnectionError):
    """Peer closed the connection (EOF mid-stream or on a frame edge)."""


@dataclass(frozen=True)
class Credit:
    """Flow-control grant: the receiver consumed/buffered ``nbytes`` more.

    The initial grant after accept advertises the receive window;
    ``nbytes == -1`` means the receive side is unbounded.
    """

    nbytes: int


@dataclass(frozen=True)
class AddressedReply:
    """:class:`ConnectionReply` plus the server ranks' data addresses.

    This is what the rendezvous actually hands a joining group: the
    partition fenceposts *and* where each rank listens, so the group can
    open direct channels to exactly the intersecting ranks.
    """

    reply: ConnectionReply
    addresses: Tuple[Tuple[str, int], ...]


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #
def encode_frame(msg: Any) -> List[Any]:
    """Buffer list for one frame (prefix+tag+header bytes, then payload
    views).  Numpy payloads appear as zero-copy memoryviews."""
    if isinstance(msg, FieldMessage):
        header = _FIELD_HEADER.pack(
            msg.group_id, msg.member, msg.timestep, msg.cell_lo, msg.cell_hi
        )
        payload = memoryview(msg.data).cast("B")
        body_len = 1 + len(header) + len(payload)
        return [_PREFIX.pack(body_len) + TAG_FIELD + header, payload]
    if isinstance(msg, GroupFieldMessage):
        header = _GROUP_HEADER.pack(
            msg.group_id, msg.timestep, msg.cell_lo, msg.cell_hi, msg.nmembers
        )
        payload = memoryview(np.ascontiguousarray(msg.data)).cast("B")
        body_len = 1 + len(header) + len(payload)
        return [_PREFIX.pack(body_len) + TAG_GROUP_FIELD + header, payload]
    if isinstance(msg, ConnectionRequest):
        body = _CONN_REQUEST.pack(msg.group_id, msg.ncells, msg.nranks_client)
        return [_PREFIX.pack(1 + len(body)) + TAG_CONN_REQUEST + body]
    if isinstance(msg, AddressedReply):
        n = msg.reply.nranks_server
        body = struct.pack("<q", n)
        body += struct.pack(f"<{n + 1}q", *msg.reply.offsets)
        for host, port in msg.addresses:
            encoded = host.encode("utf-8")
            body += struct.pack("<Hq", len(encoded), int(port)) + encoded
        return [_PREFIX.pack(1 + len(body)) + TAG_CONN_REPLY + body]
    if isinstance(msg, Heartbeat):
        sender = msg.sender.encode("utf-8")
        if msg.metrics is None:
            # legacy layout, byte-for-byte: old peers keep decoding it
            body = _HEARTBEAT.pack(msg.time) + sender
            return [_PREFIX.pack(1 + len(body)) + TAG_HEARTBEAT + body]
        payload = pickle.dumps(msg.metrics, protocol=pickle.HIGHEST_PROTOCOL)
        body = _HEARTBEAT_V2.pack(msg.time, len(sender)) + sender + payload
        return [_PREFIX.pack(1 + len(body)) + TAG_HEARTBEAT_V2 + body]
    if isinstance(msg, Credit):
        body = _CREDIT.pack(msg.nbytes)
        return [_PREFIX.pack(1 + len(body)) + TAG_CREDIT + body]
    if isinstance(msg, dict):
        body = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        return [_PREFIX.pack(1 + len(body)) + TAG_CONTROL + body]
    raise TypeError(f"cannot frame message of type {type(msg)!r}")


def frame_nbytes(msg: Any) -> int:
    """Wire size of one framed message (drives flow-control accounting).

    Data-plane messages are computed in constant time — this runs up to
    four times per message on the hot path (deliver probe, outbox sizer,
    writer window accounting, receiver credit) and must not re-encode.
    """
    if isinstance(msg, FieldMessage):
        return _PREFIX.size + 1 + _FIELD_HEADER.size + msg.data.nbytes
    if isinstance(msg, GroupFieldMessage):
        return _PREFIX.size + 1 + _GROUP_HEADER.size + msg.data.nbytes
    return sum(len(part) for part in encode_frame(msg))


# --------------------------------------------------------------------- #
# socket I/O
# --------------------------------------------------------------------- #
def send_frame(sock: socket.socket, msg: Any) -> int:
    """Write one frame with scatter-gather I/O; returns bytes written."""
    parts = encode_frame(msg)
    total = sum(len(p) for p in parts)
    sent = 0
    while parts:
        n = sock.sendmsg(parts)
        sent += n
        if sent == total:
            break
        # short write: drop fully-sent buffers, trim the partial one
        while parts and n >= len(parts[0]):
            n -= len(parts[0])
            parts.pop(0)
        if parts and n:
            parts[0] = memoryview(parts[0])[n:]
    return total


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    while len(view):
        n = sock.recv_into(view)
        if n == 0:
            raise ConnectionLost("peer closed mid-frame")
        view = view[n:]


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray(nbytes)
    _recv_exact_into(sock, memoryview(buf))
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; raises :class:`ConnectionLost` on EOF.

    Field payloads are received directly into freshly allocated float64
    arrays (no intermediate bytes object).
    """
    try:
        prefix = sock.recv(_PREFIX.size, socket.MSG_WAITALL)
    except ConnectionError as exc:
        raise ConnectionLost(str(exc)) from exc
    if len(prefix) == 0:
        raise ConnectionLost("peer closed")
    if len(prefix) < _PREFIX.size:
        raise ConnectionLost("peer closed mid-prefix")
    (body_len,) = _PREFIX.unpack(prefix)
    if not 1 <= body_len <= _MAX_FRAME:
        raise ValueError(f"invalid frame length {body_len}")
    tag = _recv_exact(sock, 1)

    if tag == TAG_FIELD:
        header = _recv_exact(sock, _FIELD_HEADER.size)
        group, member, step, lo, hi = _FIELD_HEADER.unpack(header)
        data = np.empty(hi - lo, dtype=np.float64)
        _recv_exact_into(sock, memoryview(data).cast("B"))
        return FieldMessage(group, member, step, lo, hi, data)
    if tag == TAG_GROUP_FIELD:
        header = _recv_exact(sock, _GROUP_HEADER.size)
        group, step, lo, hi, nmembers = _GROUP_HEADER.unpack(header)
        data = np.empty((nmembers, hi - lo), dtype=np.float64)
        _recv_exact_into(sock, memoryview(data).cast("B"))
        return GroupFieldMessage(group, step, lo, hi, data)

    body = _recv_exact(sock, body_len - 1)
    if tag == TAG_CONN_REQUEST:
        group, ncells, nranks_client = _CONN_REQUEST.unpack(body)
        return ConnectionRequest(group, ncells, nranks_client)
    if tag == TAG_CONN_REPLY:
        (n,) = struct.unpack_from("<q", body)
        offsets = struct.unpack_from(f"<{n + 1}q", body, 8)
        pos = 8 + 8 * (n + 1)
        addresses = []
        for _ in range(n):
            hlen, port = struct.unpack_from("<Hq", body, pos)
            pos += 10
            host = body[pos : pos + hlen].decode("utf-8")
            pos += hlen
            addresses.append((host, int(port)))
        return AddressedReply(
            ConnectionReply(nranks_server=n, offsets=offsets), tuple(addresses)
        )
    if tag == TAG_HEARTBEAT:
        (t,) = _HEARTBEAT.unpack_from(body)
        return Heartbeat(sender=body[_HEARTBEAT.size :].decode("utf-8"), time=t)
    if tag == TAG_HEARTBEAT_V2:
        t, sender_len = _HEARTBEAT_V2.unpack_from(body)
        pos = _HEARTBEAT_V2.size
        sender = body[pos : pos + sender_len].decode("utf-8")
        metrics = pickle.loads(body[pos + sender_len :])
        return Heartbeat(sender=sender, time=t, metrics=metrics)
    if tag == TAG_CREDIT:
        (nbytes,) = _CREDIT.unpack(body)
        return Credit(nbytes)
    if tag == TAG_CONTROL:
        return pickle.loads(body)
    raise ValueError(f"unknown frame tag {tag!r}")


# --------------------------------------------------------------------- #
# connection convenience
# --------------------------------------------------------------------- #
class FrameConnection:
    """Thread-safe framed connection (one writer lock, pollable reads).

    The control plane uses this for request/reply exchanges and
    heartbeats; reads are blocking (with an optional pre-poll timeout)
    and writes are serialized so heartbeat frames can interleave with
    protocol frames from another thread.
    """

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (e.g. a Unix socketpair in tests)
        self._sock = sock
        self._wlock = threading.Lock()
        self._closed = False

    @property
    def peername(self) -> str:
        try:
            peer = self._sock.getpeername()
        except OSError:
            return "<closed>"
        if isinstance(peer, tuple) and len(peer) >= 2:
            return f"{peer[0]}:{peer[1]}"
        return str(peer) or "<unix>"

    def send(self, msg: Any) -> None:
        with self._wlock:
            if self._closed:
                raise ConnectionLost("connection closed locally")
            try:
                send_frame(self._sock, msg)
            except (OSError, ConnectionError) as exc:
                raise ConnectionLost(str(exc)) from exc

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame prefix is readable within ``timeout``."""
        if self._closed:
            return False
        readable, _, _ = select.select([self._sock], [], [], timeout)
        return bool(readable)

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Read one frame; ``TimeoutError`` if nothing arrives in time.

        Control frames are tiny, so once the prefix is readable the rest
        is read blocking.
        """
        if timeout is not None and not self.poll(timeout):
            raise TimeoutError(f"no frame from {self.peername} in {timeout}s")
        try:
            return recv_frame(self._sock)
        except OSError as exc:
            raise ConnectionLost(str(exc)) from exc

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class DialTimeout(ConnectionError):
    """:func:`connect_with_retry` exhausted its deadline dialing a peer."""


def backoff_intervals(
    initial: float = 0.05,
    cap: float = 2.0,
    factor: float = 2.0,
    jitter: float = 0.5,
    rng: Optional[random.Random] = None,
):
    """Jittered exponential backoff delays: ``initial * factor**n``
    capped at ``cap``, each stretched by up to ``jitter`` of itself.

    The jitter decorrelates retry storms: when a coordinator restarts,
    every serve/work process that lost it re-dials — without jitter they
    all hammer the listen backlog on the same schedule.  ``rng`` is
    injectable so tests can pin the sequence.
    """
    rng = random.Random() if rng is None else rng
    delay = initial
    while True:
        yield delay * (1.0 + jitter * rng.random())
        delay = min(cap, delay * factor)


def connect_with_retry(
    address: Tuple[str, int],
    timeout: float = 10.0,
    interval: float = 0.05,
    max_interval: float = 2.0,
    rng: Optional[random.Random] = None,
) -> FrameConnection:
    """Dial ``address``, retrying while the endpoint is still coming up.

    ``repro serve`` / ``repro work`` processes may legitimately start
    before ``repro launch`` binds its rendezvous port.  Retries back off
    exponentially from ``interval`` to ``max_interval`` with decorrelating
    jitter (see :func:`backoff_intervals`); past the overall ``timeout``
    deadline a :class:`DialTimeout` names the address given up on and
    chains the last connect error.
    """
    from repro import telemetry

    retries = telemetry.REGISTRY.counter(
        "repro_dial_retries", "connect attempts that had to be retried"
    )
    deadline = time.monotonic() + timeout
    delays = backoff_intervals(initial=interval, cap=max_interval, rng=rng)
    last_error: Optional[OSError] = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            host, port = address
            raise DialTimeout(
                f"gave up dialing {host}:{port} after {timeout:.1f}s "
                f"(last error: {last_error})"
            ) from last_error
        try:
            return FrameConnection(
                socket.create_connection(address, timeout=max(remaining, 0.001))
            )
        except OSError as exc:
            last_error = exc
            retries.inc()
            pause = min(next(delays), deadline - time.monotonic())
            if pause > 0:
                time.sleep(pause)
