"""Server-rank process main: one :class:`ServerRank` behind a TCP door.

This is what ``repro serve --rank K`` runs (and what the loopback
:class:`~repro.runtime.distributed.DistributedRuntime` forks): a single
Melissa Server rank as an independent OS process.  It

* opens a :class:`~repro.net.channel.DataListener` (the rank's ZeroMQ
  PULL socket) feeding a byte-bounded inbox,
* registers its data address with the coordinator's rendezvous endpoint
  — including which groups its restored checkpoint already contains, so
  a respawned rank lets the coordinator requeue exactly the groups the
  restored statistics are missing (Sec. 4.2.3),
* drains the inbox through :meth:`ServerRank.handle` while emitting
  heartbeats and answering control ops (``forget`` on a group fault,
  ``finalize`` at the end of the study),
* checkpoints its rank state independently of every other rank
  (Sec. 4.2.3 — per-rank files, restored at startup so a restarted
  ``repro serve`` resumes its integrated statistics before new workers
  connect),
* ships its state + batched index maps + convergence scalar back to the
  coordinator, then **lingers**: it keeps accepting and draining data
  until the coordinator closes the control connection, so replays from a
  respawn-requeued group still land somewhere (replay protection
  discards them; the reported state stays exact).

Fault injection: a :class:`~repro.faults.FaultPlan` (or the ``--fault``
/ ``REPRO_SERVE_FAULT`` spec of a real subprocess) can make this rank
SIGKILL itself mid-study, hang silently (zombie), or slow down
(straggler) — the specs the chaos suite and the CI smoke leg drive
through the supervisor's kill-and-respawn protocol.
"""

from __future__ import annotations

import os
import signal
import time
import traceback

from repro import telemetry as _telemetry
from repro.core.checkpoint import CheckpointManager
from repro.kernels import parallel as _parallel
from repro.core.config import StudyConfig
from repro.core.server import ServerRank
from repro.faults import FaultPlan, parse_server_fault
from repro.mesh.partition import BlockPartition
from repro.net.channel import DataListener
from repro.net.coordinator import study_fingerprint, study_id
from repro.net.framing import ConnectionLost, connect_with_retry
from repro.telemetry.logs import get_logger
from repro.telemetry.registry import delta as _metrics_delta
from repro.telemetry.tracer import span_record
from repro.transport.channel import BoundedChannel, ChannelClosed
from repro.transport.message import Heartbeat

FAULT_ENV = "REPRO_SERVE_FAULT"


class _FaultInjector:
    """Applies one rank's share of a fault plan to the serve loop."""

    def __init__(self, plan: FaultPlan, rank_idx: int):
        self.crash = plan.rank_crash_for(rank_idx)
        self.zombie = plan.rank_zombie_for(rank_idx)
        self.straggler = plan.rank_straggler_for(rank_idx)
        self.handled = 0

    def on_handle(self) -> None:
        """One data message was just integrated/staged."""
        self.handled += 1
        if self.straggler is not None:
            time.sleep(self.straggler.delay)
        self.check()

    def check(self) -> None:
        """Fire any due crash/zombie (called every loop iteration so an
        ``after_messages=0`` fault fires even before the first message)."""
        if self.crash is not None and self.handled >= self.crash.after_messages:
            # the real thing: no cleanup, no goodbye — the OS reaps the
            # sockets and the supervisor finds out from the broken pipe
            os.kill(os.getpid(), signal.SIGKILL)
        if self.zombie is not None and self.handled >= self.zombie.after_messages:
            # alive but silent: no heartbeats, no draining.  Only the
            # supervisor's staleness detection can end this.
            while True:
                time.sleep(3600)


def _resolve_fault_plan(fault_plan, fault_spec, rank_idx: int, env_fault: bool):
    if fault_plan is None and fault_spec is None and env_fault:
        fault_spec = os.environ.get(FAULT_ENV) or None
    if fault_spec is not None:
        if fault_plan is not None:
            raise ValueError("pass either fault_plan or fault_spec, not both")
        fault_plan = parse_server_fault(fault_spec, rank_idx)
    if fault_plan is None:
        return None
    injector = _FaultInjector(fault_plan, rank_idx)
    if injector.crash is None and injector.zombie is None and injector.straggler is None:
        return None
    return injector


def run_server_rank(
    rank_idx: int,
    config: StudyConfig,
    coordinator_address,
    data_host: str = "127.0.0.1",
    data_port: int = 0,
    checkpoint_dir=None,
    poll_interval: float = 0.005,
    heartbeat_interval=None,
    fault_plan: FaultPlan = None,
    fault_spec: str = None,
    env_fault: bool = True,
    local_ranks: int = 1,
) -> int:
    """Run one server rank to study completion; returns an exit code.

    ``env_fault=False`` ignores ``$REPRO_SERVE_FAULT`` — the respawn
    paths use it so an env-injected fault cannot re-fire in a
    replacement process (a fault models one intermittent failure, and
    replacements are documented to run clean).
    """
    if heartbeat_interval is None:
        heartbeat_interval = config.heartbeat_interval
    log = get_logger("serve", rank=rank_idx, study=study_id(config))
    fault = _resolve_fault_plan(fault_plan, fault_spec, rank_idx, env_fault)
    partition = BlockPartition(config.ncells, config.server_ranks)
    rank = ServerRank(rank_idx, config, partition, local_ranks=local_ranks)
    manager = CheckpointManager(checkpoint_dir) if checkpoint_dir else None
    restore_seconds = None
    if manager is not None:
        t0 = time.perf_counter()
        if manager.restore_rank(rank, config):
            # restarted rank: integrated statistics survive; replay
            # protection absorbs whatever reconnecting workers re-send
            restore_seconds = time.perf_counter() - t0
            log.info(
                "restored checkpoint in %.3fs (%d finished groups)",
                restore_seconds, len(rank.finished_groups),
            )
    inbox = BoundedChannel(
        capacity_bytes=config.channel_capacity_bytes,
        name=f"server-rank-{rank_idx}",
    )
    listener = DataListener(
        inbox,
        host=data_host,
        port=data_port,
        recv_hwm_bytes=config.channel_capacity_bytes,
        transport=getattr(config, "transport", "auto"),
    )
    ctrl = connect_with_retry(tuple(coordinator_address))
    sender = f"server-rank-{rank_idx}"
    try:
        ctrl.send({
            "op": "register",
            "rank": rank_idx,
            "address": listener.address,
            "fingerprint": study_fingerprint(config),
            "pid": os.getpid(),
            # what the restored statistics already contain — the
            # coordinator requeues every done/in-flight group NOT in here
            "finished": sorted(rank.finished_groups),
        })
        ack = ctrl.recv(timeout=30.0)
        if not (isinstance(ack, dict) and ack.get("op") == "registered"):
            raise RuntimeError(f"rendezvous rejected rank {rank_idx}: {ack!r}")
        log.info("registered with coordinator", extra={"repro_ids": {"pid": os.getpid()}})

        # capability negotiation (ISSUE 8): only a telemetry-aware
        # coordinator acks with telemetry=True, and only then do we turn
        # the registry on and piggyback metric deltas on heartbeats — an
        # old coordinator keeps receiving plain v1 heartbeat frames
        telemetry_on = bool(ack.get("telemetry"))
        reg = _telemetry.REGISTRY
        if telemetry_on:
            _telemetry.enable()
            # loopback ranks are forked from the runtime process and
            # inherit its registry contents (coordinator counters, and on
            # respawn a mid-study snapshot); shipping those back would
            # double-count, so this process starts from a clean slate
            reg.reset()
        rank_label = str(rank_idx)
        g_recv_blocks = reg.gauge(
            "repro_rank_recv_blocks",
            "data-producer suspensions on this rank's inbox (dual-HWM "
            "flow control)",
        )
        g_recv_blocked = reg.gauge(
            "repro_rank_recv_blocked_seconds",
            "seconds data producers spent suspended on this rank's inbox",
        )
        g_ci_width = reg.gauge(
            "repro_rank_max_ci_width",
            "live convergence scalar: widest Sobol confidence interval "
            "on this rank's partition",
        )
        g_fold_threads = reg.gauge(
            "repro_fold_threads",
            "active fold-pool width per server rank (1 until the first "
            "parallel fold resolves, e.g. after the auto probe)",
        )
        h_checkpoint = reg.histogram(
            "repro_rank_checkpoint_seconds",
            "checkpoint save/restore seconds per rank",
        )
        if telemetry_on and restore_seconds is not None:
            h_checkpoint.observe(restore_seconds, rank=rank_label, op="restore")
        spans: list = []
        last_snapshot = None
        # the convergence scalar is a full CI-width reduction — cheap at
        # 1/s but not per-message, so it gets its own throttle
        ci_interval = max(heartbeat_interval * 2.0, 1.0)
        last_ci = -ci_interval

        last_beat = time.monotonic()
        last_checkpoint = time.monotonic()

        def maybe_beat() -> None:
            # called inside the drain loops too: a sustained backlog (or
            # a straggler's per-message delay) must never starve the
            # heartbeat, or the supervisor would kill a busy-but-live
            # rank as a zombie
            nonlocal last_beat, last_snapshot, last_ci
            now = time.monotonic()
            if now - last_beat >= heartbeat_interval:
                # autotune winners ride the beat cadence regardless of
                # telemetry: the coordinator re-exports them so respawned
                # / elastic processes skip the probe.  Old coordinators
                # ignore unknown rank-frame ops, so this is safe to send.
                new_plans = _parallel.consume_new_plans()
                if new_plans:
                    ctrl.send({"op": "autotune", "plans": new_plans})
                payload = None
                if telemetry_on:
                    g_fold_threads.set(
                        float(rank.sobol.active_fold_threads), rank=rank_label
                    )
                    stats = inbox.stats
                    g_recv_blocks.set(stats.send_blocks, rank=rank_label)
                    g_recv_blocked.set(
                        stats.blocked_seconds, rank=rank_label
                    )
                    if now - last_ci >= ci_interval:
                        g_ci_width.set(
                            float(rank.sobol.max_interval_width()),
                            rank=rank_label,
                        )
                        last_ci = now
                    snapshot = reg.snapshot()
                    changes = _metrics_delta(last_snapshot, snapshot)
                    last_snapshot = snapshot
                    if changes or spans:
                        payload = {"metrics": changes, "spans": spans[:]}
                        spans.clear()
                ctrl.send(
                    Heartbeat(sender=sender, time=time.time(), metrics=payload)
                )
                last_beat = now

        finalize = False
        while not finalize:
            if fault is not None:
                fault.check()
            try:
                rank.handle(inbox.recv(timeout=poll_interval), time.monotonic())
                if fault is not None:
                    fault.on_handle()
            except TimeoutError:
                pass
            # opportunistically drain whatever else is already queued
            while True:
                msg = inbox.try_recv()
                if msg is None:
                    break
                rank.handle(msg, time.monotonic())
                if fault is not None:
                    fault.on_handle()
                maybe_beat()
            maybe_beat()
            now = time.monotonic()
            while ctrl.poll(0.0):
                frame = ctrl.recv()
                if not isinstance(frame, dict):
                    continue
                op = frame.get("op")
                if op == "forget":
                    gid = int(frame["group_id"])
                    rank.forget_group(gid)
                    log.info(
                        "forgot staged partials",
                        extra={"repro_ids": {"group": gid}},
                    )
                elif op == "finalize":
                    finalize = True
                elif op == "error":
                    raise RuntimeError(f"coordinator error: {frame.get('error')}")
            if (
                manager is not None
                and now - last_checkpoint >= config.checkpoint_interval
            ):
                t0 = time.perf_counter()
                manager.save_rank(rank, config)
                saved = time.perf_counter() - t0
                if telemetry_on:
                    h_checkpoint.observe(saved, rank=rank_label, op="save")
                    spans.append(span_record(
                        "checkpoint save", "rank",
                        time.time() - saved, time.time(), tid=sender,
                    ))
                log.debug("checkpoint saved in %.3fs", saved)
                last_checkpoint = now

        # all workers flushed before the coordinator finalized, so every
        # in-flight frame is already in the inbox: drain it completely
        while True:
            msg = inbox.try_recv()
            if msg is None:
                break
            rank.handle(msg, time.monotonic())
            if fault is not None:
                fault.on_handle()
            maybe_beat()

        maps = rank.index_maps()
        width = float(rank.sobol.max_interval_width())
        if manager is not None:
            t0 = time.perf_counter()
            manager.save_rank(rank, config)
            if telemetry_on:
                h_checkpoint.observe(
                    time.perf_counter() - t0, rank=rank_label, op="save"
                )
        # final flush so the coordinator's study view includes this
        # rank's complete accounting even if no further beat would fire
        last_beat = -1e18
        maybe_beat()
        inbox_stats = inbox.stats
        ctrl.send({
            "op": "rank_state",
            "rank": rank_idx,
            "state": rank.checkpoint_state(),
            "maps": maps,
            "width": width,
            # receive-side ChannelStats: the end-of-run summary surfaces
            # suspension counts/bytes without needing telemetry enabled
            "channel_stats": {
                "messages_received": inbox_stats.messages_received,
                "bytes_received": inbox_stats.bytes_received,
                "recv_blocks": inbox_stats.send_blocks,
                "blocked_seconds": inbox_stats.blocked_seconds,
                "high_water_bytes": inbox_stats.high_water_bytes,
            },
        })
        log.info(
            "rank state shipped (%d messages, %d discarded, width %.4g)",
            rank.messages_processed, rank.messages_discarded, width,
        )
        _linger(rank, inbox, ctrl)
        log.info("coordinator hung up; exiting")
        return 0
    except BaseException:
        try:
            ctrl.send({"op": "error", "error": traceback.format_exc()})
        except (ConnectionLost, OSError):
            pass
        raise
    finally:
        listener.close()
        inbox.close()
        ctrl.close()


def _linger(rank: ServerRank, inbox: BoundedChannel, ctrl) -> None:
    """Post-report phase: stay reachable until the coordinator hangs up.

    If another rank dies after this one reported, the coordinator
    requeues groups and workers re-run them — re-sending field data to
    EVERY intersecting rank, this one included.  Everything arriving here
    is a replay of an already-integrated timestep (a group only counts as
    done once each rank credited its bytes and the pre-finalize drain
    integrated them), so handling it is a pure discard and the reported
    state stays exact; what matters is that the data channels keep
    crediting so the re-run can finish.
    """
    while True:
        try:
            if ctrl.poll(0.05):
                ctrl.recv()  # drained and ignored (repeat finalize, forget)
        except (ConnectionLost, TimeoutError, OSError):
            return  # coordinator closed: the study is over
        try:
            while True:
                msg = inbox.try_recv()
                if msg is None:
                    break
                rank.handle(msg, time.monotonic())
        except ChannelClosed:
            return
