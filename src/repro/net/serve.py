"""Server-rank process main: one :class:`ServerRank` behind a TCP door.

This is what ``repro serve --rank K`` runs (and what the loopback
:class:`~repro.runtime.distributed.DistributedRuntime` forks): a single
Melissa Server rank as an independent OS process.  It

* opens a :class:`~repro.net.channel.DataListener` (the rank's ZeroMQ
  PULL socket) feeding a byte-bounded inbox,
* registers its data address with the coordinator's rendezvous endpoint,
* drains the inbox through :meth:`ServerRank.handle` while emitting
  heartbeats and answering control ops (``forget`` on a group fault,
  ``finalize`` at the end of the study),
* checkpoints its rank state independently of every other rank
  (Sec. 4.2.3 — per-rank files, restored at startup so a restarted
  ``repro serve`` resumes its integrated statistics before new workers
  connect; live mid-study restart with already-connected workers needs
  the launcher-driven respawn protocol, which is ROADMAP future work),
* and finally ships its state + batched index maps + convergence scalar
  back to the coordinator.
"""

from __future__ import annotations

import os
import time
import traceback

from repro.core.checkpoint import CheckpointManager
from repro.core.config import StudyConfig
from repro.core.server import ServerRank
from repro.mesh.partition import BlockPartition
from repro.net.channel import DataListener
from repro.net.coordinator import study_fingerprint
from repro.net.framing import ConnectionLost, connect_with_retry
from repro.transport.channel import BoundedChannel
from repro.transport.message import Heartbeat


def run_server_rank(
    rank_idx: int,
    config: StudyConfig,
    coordinator_address,
    data_host: str = "127.0.0.1",
    data_port: int = 0,
    checkpoint_dir=None,
    poll_interval: float = 0.005,
    heartbeat_interval=None,
) -> int:
    """Run one server rank to study completion; returns an exit code."""
    if heartbeat_interval is None:
        heartbeat_interval = config.heartbeat_interval
    partition = BlockPartition(config.ncells, config.server_ranks)
    rank = ServerRank(rank_idx, config, partition)
    manager = CheckpointManager(checkpoint_dir) if checkpoint_dir else None
    if manager is not None and manager.restore_rank(rank, config):
        # restarted rank: integrated statistics survive; replay
        # protection absorbs whatever reconnecting workers re-send
        pass
    inbox = BoundedChannel(
        capacity_bytes=config.channel_capacity_bytes,
        name=f"server-rank-{rank_idx}",
    )
    listener = DataListener(
        inbox,
        host=data_host,
        port=data_port,
        recv_hwm_bytes=config.channel_capacity_bytes,
    )
    ctrl = connect_with_retry(tuple(coordinator_address))
    sender = f"server-rank-{rank_idx}"
    try:
        ctrl.send({
            "op": "register",
            "rank": rank_idx,
            "address": listener.address,
            "fingerprint": study_fingerprint(config),
            "pid": os.getpid(),
        })
        ack = ctrl.recv(timeout=30.0)
        if not (isinstance(ack, dict) and ack.get("op") == "registered"):
            raise RuntimeError(f"rendezvous rejected rank {rank_idx}: {ack!r}")

        last_beat = time.monotonic()
        last_checkpoint = time.monotonic()
        finalize = False
        while not finalize:
            try:
                rank.handle(inbox.recv(timeout=poll_interval), time.monotonic())
            except TimeoutError:
                pass
            # opportunistically drain whatever else is already queued
            while True:
                msg = inbox.try_recv()
                if msg is None:
                    break
                rank.handle(msg, time.monotonic())
            now = time.monotonic()
            if now - last_beat >= heartbeat_interval:
                ctrl.send(Heartbeat(sender=sender, time=time.time()))
                last_beat = now
            while ctrl.poll(0.0):
                frame = ctrl.recv()
                if not isinstance(frame, dict):
                    continue
                op = frame.get("op")
                if op == "forget":
                    rank.forget_group(int(frame["group_id"]))
                elif op == "finalize":
                    finalize = True
                elif op == "error":
                    raise RuntimeError(f"coordinator error: {frame.get('error')}")
            if (
                manager is not None
                and now - last_checkpoint >= config.checkpoint_interval
            ):
                manager.save_rank(rank, config)
                last_checkpoint = now

        # all workers flushed before the coordinator finalized, so every
        # in-flight frame is already in the inbox: drain it completely
        while True:
            msg = inbox.try_recv()
            if msg is None:
                break
            rank.handle(msg, time.monotonic())

        maps = rank.index_maps()
        width = float(rank.sobol.max_interval_width())
        if manager is not None:
            manager.save_rank(rank, config)
        ctrl.send({
            "op": "rank_state",
            "rank": rank_idx,
            "state": rank.checkpoint_state(),
            "maps": maps,
            "width": width,
        })
        return 0
    except BaseException:
        try:
            ctrl.send({"op": "error", "error": traceback.format_exc()})
        except (ConnectionLost, OSError):
            pass
        raise
    finally:
        listener.close()
        inbox.close()
        ctrl.close()
