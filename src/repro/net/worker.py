"""Group-worker process main + the TCP :class:`SocketRouter`.

This is what ``repro work`` runs (and what the loopback
:class:`~repro.runtime.distributed.DistributedRuntime` forks): a worker
that pulls group ids from the coordinator, runs each
:class:`~repro.core.group.GroupExecutor` to completion, and streams
field messages to the server ranks over direct socket channels.

The :class:`SocketRouter` is the TCP implementation of
:class:`~repro.transport.base.TransportClient`: the dynamic-connection
handshake goes through the rendezvous (server partition + address
table), then data channels are opened lazily — only to the ranks whose
cell ranges the worker's messages actually intersect, the paper's N x M
pattern — and kept open across the worker's successive groups.

Fault injection: a :class:`~repro.faults.FaultPlan` (or the ``--fault``
/ ``REPRO_WORK_FAULT`` spec of a real subprocess) can make this worker
SIGKILL itself after N delivered messages, hang silently (zombie), or
deliver each message ``delay`` seconds slower (straggler) — the worker
half of the chaos suite, driving the coordinator's resubmission, reaping,
and straggler-speculation machinery.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Any, Dict, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.faults import FaultPlan, parse_worker_fault

from repro.core.config import StudyConfig
from repro.core.group import (
    GroupExecutor,
    GroupState,
    SimulationFactory,
    SimulationGroup,
)
from repro.mesh.partition import BlockPartition
from repro.net.channel import open_data_channel
from repro.transport.channel import ChannelClosed
from repro.net.coordinator import study_fingerprint, study_id
from repro.net.framing import (
    AddressedReply,
    ConnectionLost,
    FrameConnection,
    connect_with_retry,
    frame_nbytes,
)
from repro.sampling.pickfreeze import draw_design
from repro.telemetry.logs import get_logger
from repro.telemetry.registry import delta as _metrics_delta
from repro.telemetry.tracer import span_record
from repro.transport.message import (
    ConnectionReply,
    ConnectionRequest,
    Heartbeat,
    split_by_partition,
)

FAULT_ENV = "REPRO_WORK_FAULT"


class _WorkerFaultInjector:
    """Applies one worker's share of a fault plan to the work loop."""

    def __init__(self, plan: FaultPlan, worker_index: int):
        self.crash = plan.worker_crash_for(worker_index)
        self.zombie = plan.worker_zombie_for(worker_index)
        self.straggler = plan.worker_straggler_for(worker_index)
        self.delivered = 0

    def on_deliver(self) -> None:
        """One data message was just fully handed to the channels."""
        self.delivered += 1
        if self.straggler is not None:
            time.sleep(self.straggler.delay)
        self.check()

    def check(self) -> None:
        """Fire any due crash/zombie (called every loop iteration so an
        ``after=0`` fault fires even before the first delivery)."""
        if self.crash is not None and self.delivered >= self.crash.after_messages:
            # the real thing: no cleanup, no goodbye — the coordinator
            # finds out from the dropped control connection and resubmits
            os.kill(os.getpid(), signal.SIGKILL)
        if self.zombie is not None and self.delivered >= self.zombie.after_messages:
            # alive but silent: no heartbeats, no frames.  Only the
            # coordinator's worker-staleness reap can end this.
            while True:
                time.sleep(3600)


def _resolve_worker_fault(fault_plan, fault_spec, worker_index: int, env_fault: bool):
    if fault_plan is None and fault_spec is None and env_fault:
        fault_spec = os.environ.get(FAULT_ENV) or None
    if fault_spec is not None:
        if fault_plan is not None:
            raise ValueError("pass either fault_plan or fault_spec, not both")
        fault_plan = parse_worker_fault(fault_spec, worker_index)
    if fault_plan is None:
        return None
    injector = _WorkerFaultInjector(fault_plan, worker_index)
    if injector.crash is None and injector.zombie is None and injector.straggler is None:
        return None
    return injector


class SocketRouter:
    """Socket-backed client transport (implements ``TransportClient``).

    ``connect`` performs the paper's rendezvous exactly once per worker:
    ask the rank-0 endpoint for the server partition, learn each rank's
    data address, and from then on open one data channel per
    intersecting rank on first use — the fabric (shared-memory ring vs
    TCP framing) is negotiated per channel by
    :func:`~repro.net.channel.open_data_channel` according to
    ``config.transport``.  ``deliver`` splits along the server partition
    like every other transport and applies the all-or-nothing probe so a
    retried whole message cannot re-send chunks that already landed.
    """

    def __init__(
        self,
        ctrl: FrameConnection,
        config: StudyConfig,
        name: str = "worker",
        fault: Optional[_WorkerFaultInjector] = None,
    ):
        self._ctrl = ctrl
        self.config = config
        self.name = name
        self._fault = fault
        self.server_partition: Optional[BlockPartition] = None
        self._reply: Optional[ConnectionReply] = None
        self._addresses: Optional[Tuple[Tuple[str, int], ...]] = None
        self._channels: Dict[int, Any] = {}  # rank -> negotiated Channel
        self._connected: Set[int] = set()

    # ------------------------------------------------------------------ #
    def connect(self, request: ConnectionRequest) -> ConnectionReply:
        if self._reply is None:
            self._ctrl.send(request)
            frame = self._ctrl.recv(timeout=self.config.group_timeout)
            if isinstance(frame, dict) and frame.get("op") == "error":
                raise RuntimeError(f"rendezvous refused connection: {frame['error']}")
            if not isinstance(frame, AddressedReply):
                raise RuntimeError(f"unexpected rendezvous reply: {frame!r}")
            partition = BlockPartition(request.ncells, frame.reply.nranks_server)
            if tuple(int(o) for o in partition.offsets) != frame.reply.offsets:
                raise RuntimeError("server partition fenceposts do not match")
            self._reply = frame.reply
            self._addresses = frame.addresses
            self.server_partition = partition
        self._connected.add(request.group_id)
        return self._reply

    def is_connected(self, group_id: int) -> bool:
        return group_id in self._connected

    def disconnect(self, group_id: int) -> None:
        self._connected.discard(group_id)

    # ------------------------------------------------------------------ #
    def _channel(self, rank: int):
        channel = self._channels.get(rank)
        if channel is None:
            try:
                # hint: the widest chunk this worker can push to one rank
                # is a full group-field slab over the rank's cell slice
                max_frame = 8 * self.config.group_size * self.config.ncells + 256
                channel = open_data_channel(
                    self._addresses[rank],
                    transport=getattr(self.config, "transport", "auto"),
                    send_hwm_bytes=self.config.channel_capacity_bytes,
                    name=f"{self.name}->rank{rank}",
                    max_frame_hint=max_frame,
                )
            except (OSError, TimeoutError) as exc:
                # a stale address from before a rank respawn: surface it
                # as a dead channel so the group-interrupt path re-asks
                # the rendezvous instead of failing the worker
                raise ChannelClosed(
                    f"{self.name}: server rank {rank} unreachable at "
                    f"{self._addresses[rank]}"
                ) from exc
            self._channels[rank] = channel
        return channel

    def deliver(self, msg, blocking: bool = False) -> bool:
        if self.server_partition is None:
            raise RuntimeError("deliver before connect")
        chunks = split_by_partition(msg, self.server_partition)
        if blocking:
            for rank, chunk in chunks:
                self._channel(rank).send(chunk)
            if self._fault is not None:
                self._fault.on_deliver()
            return True
        if len(chunks) > 1 and not all(
            self._channel(rank).can_accept(frame_nbytes(chunk))
            for rank, chunk in chunks
        ):
            return False
        for rank, chunk in chunks:
            if not self._channel(rank).try_send(chunk):
                return False
        # the fault counts whole delivered messages, so it fires only
        # after every partition chunk was handed to its channel
        if self._fault is not None:
            self._fault.on_deliver()
        return True

    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> None:
        """Wait until every channel's bytes are credited by its rank."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for channel in self._channels.values():
            remaining = None if deadline is None else deadline - time.monotonic()
            channel.flush(timeout=remaining)

    def any_broken(self) -> bool:
        """Did any open data channel lose its rank?"""
        return any(channel.broken for channel in self._channels.values())

    def reset(self) -> None:
        """Forget the rendezvous: close every channel and drop the cached
        partition/address table.

        This is the client half of the respawn protocol: after a server
        rank dies, its old data address is garbage, so the next
        :meth:`connect` re-asks the rendezvous — which blocks until the
        respawned rank has published a fresh address — and channels are
        re-opened lazily against the new table.
        """
        self.close()
        self._reply = None
        self._addresses = None
        self.server_partition = None
        self._connected.clear()

    def total_stats(self) -> Dict[str, int]:
        agg = {
            "messages_sent": 0,
            "bytes_sent": 0,
            "send_blocks": 0,
            "blocked_seconds": 0.0,
            "high_water_bytes": 0,
        }
        for channel in self._channels.values():
            stats = channel.stats
            agg["messages_sent"] += stats.messages_sent
            agg["bytes_sent"] += stats.bytes_sent
            agg["send_blocks"] += stats.send_blocks
            agg["blocked_seconds"] += stats.blocked_seconds
            agg["high_water_bytes"] = max(
                agg["high_water_bytes"], stats.high_water_bytes
            )
        return agg

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()


# --------------------------------------------------------------------- #
def run_worker(
    config: StudyConfig,
    factory: SimulationFactory,
    coordinator_address,
    name: str = "",
    poll_interval: float = 0.005,
    heartbeat_interval=None,
    design=None,
    fault_plan: Optional[FaultPlan] = None,
    fault_spec: Optional[str] = None,
    worker_index: int = 0,
    env_fault: bool = True,
    elastic: bool = False,
) -> int:
    """Pull groups from the coordinator and run them to completion.

    ``fault_plan``/``fault_spec`` inject this worker's share of a chaos
    plan (``worker_index`` selects it from a multi-worker plan);
    ``env_fault=False`` ignores ``$REPRO_WORK_FAULT`` so elastic
    replacements spawned next to an env-injected worker run clean.
    ``elastic=True`` marks the worker retirable: the coordinator may send
    it a ``retire`` op when the queue drains, and it exits like ``done``.
    """
    if heartbeat_interval is None:
        heartbeat_interval = config.heartbeat_interval
    if design is None:
        design = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
    name = name or f"worker-{os.getpid()}"
    log = get_logger("work", worker=name, study=study_id(config))
    fault = _resolve_worker_fault(fault_plan, fault_spec, worker_index, env_fault)
    ctrl = connect_with_retry(tuple(coordinator_address))
    router = SocketRouter(ctrl, config, name=name, fault=fault)
    try:
        ctrl.send({
            "op": "hello",
            "worker": name,
            "pid": os.getpid(),
            "elastic": elastic,
            "fingerprint": study_fingerprint(config),
        })
        welcome = ctrl.recv(timeout=30.0)
        if not (isinstance(welcome, dict) and welcome.get("op") == "welcome"):
            raise RuntimeError(f"coordinator rejected worker {name}: {welcome!r}")
        log.info("joined study", extra={"repro_ids": {"pid": os.getpid()}})

        # capability negotiation (ISSUE 8): same protocol as serve.py —
        # metric deltas piggyback on heartbeats only when the coordinator
        # advertised telemetry support, so old coordinators see v1 frames
        telemetry_on = bool(welcome.get("telemetry"))
        reg = _telemetry.REGISTRY
        if telemetry_on:
            _telemetry.enable()
            # forked loopback workers inherit the runtime registry; reset
            # so heartbeat deltas carry only this worker's own series
            reg.reset()
        h_group = reg.histogram(
            "repro_worker_group_seconds",
            "wall seconds per simulation group on this worker",
        )
        g_bytes_sent = reg.gauge(
            "repro_worker_bytes_sent",
            "field-data bytes this worker has pushed to server ranks",
        )
        g_blocked = reg.gauge(
            "repro_worker_blocked_seconds",
            "seconds this worker spent suspended on full data channels",
        )
        g_blocks = reg.gauge(
            "repro_worker_send_blocks",
            "channel suspensions (dual-HWM back-pressure) on this worker",
        )
        spans: list = []
        last_snapshot = None

        last_beat = time.monotonic()

        def beat() -> None:
            nonlocal last_beat, last_snapshot
            payload = None
            if telemetry_on:
                stats = router.total_stats()
                g_bytes_sent.set(stats["bytes_sent"], worker=name)
                g_blocked.set(stats["blocked_seconds"], worker=name)
                g_blocks.set(stats["send_blocks"], worker=name)
                snapshot = reg.snapshot()
                changes = _metrics_delta(last_snapshot, snapshot)
                last_snapshot = snapshot
                if changes or spans:
                    payload = {"metrics": changes, "spans": spans[:]}
                    spans.clear()
            ctrl.send(Heartbeat(sender=name, time=time.time(), metrics=payload))
            last_beat = time.monotonic()

        in_group = False
        while True:
            if fault is not None:
                fault.check()
            ctrl.send({"op": "next"})
            frame = ctrl.recv(timeout=config.group_timeout)
            op = frame.get("op") if isinstance(frame, dict) else None
            if op in ("done", "retire"):
                # retire: the elastic pool is draining and this worker is
                # surplus — leave exactly like a completed study
                break
            if op == "idle":
                time.sleep(float(frame.get("delay", 0.1)))
                continue
            if op == "error":
                raise RuntimeError(f"coordinator error: {frame['error']}")
            if op != "group":
                raise RuntimeError(f"unexpected assignment frame: {frame!r}")
            group_id = int(frame["group_id"])
            in_group = True
            if router.any_broken():
                # a rank died while this worker sat idle: re-ask the
                # rendezvous up front instead of burning the first
                # delivery on a dead channel
                router.reset()
            group_started = time.time()
            try:
                executor = GroupExecutor(
                    SimulationGroup.from_design(design, group_id),
                    factory,
                    config,
                    router,
                )
                executor.initialize()
                while executor.state != GroupState.FINISHED:
                    state = executor.process_step()
                    if state == GroupState.BLOCKED:
                        # ZeroMQ-style suspension: both buffers full, wait
                        time.sleep(poll_interval)
                    if time.monotonic() - last_beat >= heartbeat_interval:
                        beat()
                # GROUP_DONE is a delivery guarantee: only claim it once
                # every sent byte has been credited back by the receiving
                # ranks.  Flush in heartbeat-sized slices: a long
                # back-pressured drain must not look like control-plane
                # silence to the coordinator (which reaps workers after
                # worker_timeout without a frame).
                flush_deadline = time.monotonic() + config.group_timeout
                while True:
                    try:
                        router.flush(timeout=heartbeat_interval)
                        break
                    except TimeoutError:
                        if time.monotonic() >= flush_deadline:
                            raise
                        beat()
            except ChannelClosed:
                # a server rank died under this group (Sec. 4.2.3).  Drop
                # the whole attempt, tell the coordinator (it requeues the
                # group without charging its retry budget), and forget the
                # rendezvous so the next connect picks up the respawned
                # rank's fresh address — blocking until it exists.
                router.reset()
                log.warning(
                    "group interrupted by a dead rank channel",
                    extra={"repro_ids": {"group": group_id}},
                )
                ctrl.send({"op": "group_interrupted", "group_id": group_id})
                in_group = False
                last_beat = time.monotonic()
                continue
            group_seconds = time.time() - group_started
            if telemetry_on:
                h_group.observe(group_seconds, worker=name)
                spans.append(span_record(
                    f"simulate group {group_id}", "worker",
                    group_started, time.time(), tid=name,
                    args={"group": group_id},
                ))
            log.info(
                "group done in %.3fs", group_seconds,
                extra={"repro_ids": {"group": group_id}},
            )
            ctrl.send({"op": "group_done", "group_id": group_id})
            in_group = False
        try:
            # final metric flush, then the goodbye carries this worker's
            # aggregate send-side ChannelStats for the end-of-run summary
            if telemetry_on:
                beat()
            ctrl.send({"op": "bye", "channel_stats": router.total_stats()})
        except (ConnectionLost, OSError):
            pass  # coordinator already gone: nothing left to say
        log.info("leaving study")
        return 0
    except (ConnectionLost, OSError):
        # the coordinator went away.  Between groups (idle backoff, next
        # request) that is how a completed study looks to a straggling
        # worker — exit cleanly; mid-group it is a real failure.
        return 1 if in_group else 0
    except BaseException:
        try:
            ctrl.send({"op": "error", "error": traceback.format_exc()})
        except (ConnectionLost, OSError):
            pass
        raise
    finally:
        router.close()
        ctrl.close()
