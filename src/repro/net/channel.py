"""Socket data channels with the paper's dual high-water-mark semantics.

ZeroMQ buffers on both sides of a connection and only blocks the sending
application when *both* buffers are full (Sec. 4.1.3).  Over a real
socket we reproduce that with credit-based flow control:

* the **sender** (:class:`SocketChannel`) owns a byte-bounded outbox — a
  plain :class:`~repro.transport.channel.BoundedChannel`, so all the
  :class:`~repro.transport.channel.ChannelStats` suspension accounting
  (``send_blocks``, ``blocked_seconds``, high-water marks) carries over
  unchanged — drained by a writer thread;
* the **receiver** (:class:`DataListener`) grants an initial credit
  window equal to its receive high-water mark and grants ``nbytes`` more
  every time a frame is moved into the rank's inbox;
* the writer thread only puts a frame on the wire while the *unacked*
  byte count fits the window.  When the receive side stops draining, the
  window exhausts, the writer stalls, the outbox fills, and
  ``try_send`` starts returning False — the group suspends, exactly the
  Fig. 6a/b mechanism, now spanning hosts.

A :class:`SocketChannel` satisfies the
:class:`~repro.transport.base.Channel` send surface; the receive side
lives in the owning rank's inbox (ZeroMQ PULL fan-in: every connected
client pushes into the one queue of the rank that owns the cells).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Optional, Tuple

from repro.net.framing import (
    ConnectionLost,
    Credit,
    FrameConnection,
    frame_nbytes,
    recv_frame,
    send_frame,
)
from repro.transport.channel import BoundedChannel, ChannelClosed, ChannelStats


class SocketChannel:
    """Client end of one (worker, server-rank) data connection.

    Parameters
    ----------
    address:
        The server rank's data listener address.
    send_hwm_bytes:
        Sender-side buffer budget (``None`` = unbounded) — the client
        half of the dual high-water mark.
    connect_timeout:
        Dial timeout in seconds.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        send_hwm_bytes: Optional[int] = None,
        name: str = "",
        connect_timeout: float = 10.0,
    ):
        self.name = name or f"tcp://{address[0]}:{address[1]}"
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._outbox = BoundedChannel(
            capacity_bytes=send_hwm_bytes, sizer=frame_nbytes, name=self.name
        )
        self._window_lock = threading.Lock()
        self._window_changed = threading.Condition(self._window_lock)
        self._window_limit: Optional[int] = None  # peer's advertised window
        self._window_ready = threading.Event()
        self._unacked = 0  # bytes written but not yet credited back
        # end-to-end accounting for flush(): messages accepted into the
        # channel but not yet credited by the receiver.  Incremented by
        # the SENDING thread right after a successful try_send/send, so
        # flush (called from that same thread) can never observe the
        # window where the writer has popped a frame from the outbox but
        # not yet recorded it in _unacked.
        self._uncredited = 0
        self._error: Optional[BaseException] = None
        self._reader = threading.Thread(
            target=self._read_credits, name=f"{self.name}-reader", daemon=True
        )
        self._writer = threading.Thread(
            target=self._write_frames, name=f"{self.name}-writer", daemon=True
        )
        self._reader.start()
        self._writer.start()
        if not self._window_ready.wait(timeout=connect_timeout):
            self.close()
            raise TimeoutError(f"{self.name}: no initial credit from receiver")

    # ------------------------------------------------------------------ #
    # Channel send surface (stats live on the outbox)
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ChannelStats:
        return self._outbox.stats

    @property
    def broken(self) -> bool:
        """The peer vanished (reset, closed listener, killed rank)."""
        return self._error is not None

    def can_accept(self, nbytes: int) -> bool:
        # a dead channel must raise, not report "would block": the
        # multi-chunk delivery probe calls this first, and a False here
        # would suspend the group forever instead of surfacing the rank
        # death to the reconnect path
        self._raise_pending()
        return self._outbox.can_accept(nbytes)

    def try_send(self, msg: Any) -> bool:
        self._raise_pending()
        if not self._outbox.try_send(msg):
            return False
        with self._window_changed:
            self._uncredited += 1
        return True

    def send(self, msg: Any, timeout: Optional[float] = None) -> None:
        self._raise_pending()
        self._outbox.send(msg, timeout=timeout)
        with self._window_changed:
            self._uncredited += 1

    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every sent byte has been credited by the peer.

        After flush returns, each message is at least in the receiving
        rank's inbox — the guarantee ``GROUP_DONE`` is built on.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._window_changed:
            while self._uncredited:
                self._raise_pending()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"{self.name}: {self._uncredited} message(s) not yet "
                        f"credited by the receiver after {timeout}s"
                    )
                self._window_changed.wait(timeout=0.05 if remaining is None else min(0.05, remaining))

    def close(self) -> None:
        self._outbox.close()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        with self._window_changed:
            self._window_changed.notify_all()

    # ------------------------------------------------------------------ #
    def _raise_pending(self) -> None:
        if self._error is not None:
            raise ChannelClosed(f"{self.name}: connection failed") from self._error

    def _read_credits(self) -> None:
        try:
            while True:
                frame = recv_frame(self._sock)
                if not isinstance(frame, Credit):
                    raise ValueError(f"unexpected frame on data channel: {frame!r}")
                with self._window_changed:
                    if not self._window_ready.is_set():
                        self._window_limit = (
                            None if frame.nbytes < 0 else int(frame.nbytes)
                        )
                        self._window_ready.set()
                    else:
                        self._unacked -= frame.nbytes
                        self._uncredited -= 1
                    self._window_changed.notify_all()
        except (ConnectionLost, OSError, ValueError) as exc:
            self._fail(exc)

    def _write_frames(self) -> None:
        try:
            self._window_ready.wait()
            while True:
                try:
                    msg = self._outbox.recv(timeout=0.1)
                except TimeoutError:
                    continue
                nbytes = frame_nbytes(msg)
                with self._window_changed:
                    # an oversized frame is admitted into an idle window so
                    # it can ever be delivered (mirrors BoundedChannel)
                    while (
                        self._window_limit is not None
                        and self._unacked > 0
                        and self._unacked + nbytes > self._window_limit
                    ):
                        if self._error is not None:
                            return
                        self._window_changed.wait(timeout=0.1)
                    self._unacked += nbytes
                send_frame(self._sock, msg)
        except ChannelClosed:
            pass  # local close with the outbox drained
        except (ConnectionLost, OSError) as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        self._outbox.close()
        with self._window_changed:
            self._window_changed.notify_all()


class DataListener:
    """Server-rank data endpoint: TCP fan-in into one bounded inbox.

    Every accepted connection gets a reader thread that grants the
    initial credit window, then moves frames into ``inbox`` —
    *blocking* when the inbox is full, which is precisely what makes the
    sender-side window exhaust and the remote simulation suspend.
    Credits are granted only after a frame has entered the inbox.
    """

    def __init__(
        self,
        inbox: BoundedChannel,
        host: str = "127.0.0.1",
        port: int = 0,
        recv_hwm_bytes: Optional[int] = None,
        on_disconnect: Optional[Callable[[str], None]] = None,
    ):
        self.inbox = inbox
        self.recv_hwm_bytes = recv_hwm_bytes
        self._on_disconnect = on_disconnect
        self._listener = socket.create_server((host, port), backlog=64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = False
        self._conn_lock = threading.Lock()
        self._conns: list = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"data-accept-{self.address[1]}", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"data-conn-{peer[1]}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket, peer: str) -> None:
        try:
            window = -1 if self.recv_hwm_bytes is None else int(self.recv_hwm_bytes)
            send_frame(conn, Credit(window))
            while True:
                msg = recv_frame(conn)
                nbytes = frame_nbytes(msg)
                self.inbox.send(msg)  # blocks when the inbox is full
                send_frame(conn, Credit(nbytes))
        except (ConnectionLost, OSError):
            pass  # sender went away (normal teardown or a killed worker)
        except ChannelClosed:
            pass  # rank is shutting down
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if self._on_disconnect is not None:
                self._on_disconnect(peer)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            for conn in self._conns:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
