"""Data channels with the paper's dual high-water-mark semantics.

ZeroMQ buffers on both sides of a connection and only blocks the sending
application when *both* buffers are full (Sec. 4.1.3).  Over a real
socket we reproduce that with credit-based flow control:

* the **sender** (:class:`SocketChannel`) owns a byte-bounded outbox — a
  plain :class:`~repro.transport.channel.BoundedChannel`, so all the
  :class:`~repro.transport.channel.ChannelStats` suspension accounting
  (``send_blocks``, ``blocked_seconds``, high-water marks) carries over
  unchanged — drained by a writer thread;
* the **receiver** (:class:`DataListener`) grants an initial credit
  window equal to its receive high-water mark and grants ``nbytes`` more
  every time a frame is moved into the rank's inbox;
* the writer thread only puts a frame on the wire while the *unacked*
  byte count fits the window.  When the receive side stops draining, the
  window exhausts, the writer stalls, the outbox fills, and
  ``try_send`` starts returning False — the group suspends, exactly the
  Fig. 6a/b mechanism, now spanning hosts.

Same-host channels can skip the wire entirely: :func:`open_data_channel`
negotiates the fabric per channel at connect time.  The receiver offers
a shared-memory ring (:mod:`repro.net.shm`); if the client can attach
the segment — the attach *is* the same-host test, no hostname heuristics
— data flows through the ring and the socket stays on as liveness probe
and doorbell.  Otherwise (cross-host, or ``transport="tcp"`` on either
side) the channel falls back to the TCP framing above.  Either way a
:class:`SocketChannel`/:class:`~repro.net.shm.ShmChannel` satisfies the
:class:`~repro.transport.base.Channel` send surface; the receive side
lives in the owning rank's inbox (ZeroMQ PULL fan-in: every connected
client pushes into the one queue of the rank that owns the cells).

The listener is a single ``selectors`` event loop, not a
thread-per-connection fan — one rank services hundreds of worker
channels with one thread, and disconnected peers are pruned from the
connection table (they used to accumulate forever across elastic
spawn/retire cycles).
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.framing import (
    ConnectionLost,
    Credit,
    Doorbell,
    FrameReader,
    ProtocolError,
    frame_nbytes,
    recv_frame,
    send_frame,
)
from repro.net.shm import ShmChannel, ShmRing, read_ring_frame, ring_bytes_for
from repro.transport.channel import BoundedChannel, ChannelClosed, ChannelStats

_UNSET = object()


class TransportNegotiationError(RuntimeError):
    """``transport="shm"`` was forced but the peer cannot provide it."""


class SocketChannel:
    """Client end of one (worker, server-rank) data connection.

    Parameters
    ----------
    address:
        The server rank's data listener address (ignored when ``sock``
        is given).
    send_hwm_bytes:
        Sender-side buffer budget (``None`` = unbounded) — the client
        half of the dual high-water mark.
    connect_timeout:
        Dial timeout in seconds.
    sock:
        Optional already-connected socket (the fabric-negotiation path
        dials and reads the initial credit itself).
    initial_window:
        The receiver window when the initial credit frame was already
        consumed during negotiation; leave unset to read it off the
        socket.
    """

    def __init__(
        self,
        address: Optional[Tuple[str, int]] = None,
        send_hwm_bytes: Optional[int] = None,
        name: str = "",
        connect_timeout: float = 10.0,
        sock: Optional[socket.socket] = None,
        initial_window: Any = _UNSET,
    ):
        if sock is None:
            if address is None:
                raise ValueError("SocketChannel needs an address or a socket")
            self.name = name or f"tcp://{address[0]}:{address[1]}"
            sock = socket.create_connection(address, timeout=connect_timeout)
        else:
            self.name = name or "tcp://<negotiated>"
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._outbox = BoundedChannel(
            capacity_bytes=send_hwm_bytes, sizer=frame_nbytes, name=self.name
        )
        self._window_lock = threading.Lock()
        self._window_changed = threading.Condition(self._window_lock)
        self._window_limit: Optional[int] = None  # peer's advertised window
        self._window_ready = threading.Event()
        self._unacked = 0  # bytes written but not yet credited back
        # end-to-end accounting for flush(): messages accepted into the
        # channel but not yet credited by the receiver.  Incremented by
        # the SENDING thread right after a successful try_send/send, so
        # flush (called from that same thread) can never observe the
        # window where the writer has popped a frame from the outbox but
        # not yet recorded it in _unacked.
        self._uncredited = 0
        self._error: Optional[BaseException] = None
        if initial_window is not _UNSET:
            self._window_limit = initial_window
            self._window_ready.set()
        self._reader = threading.Thread(
            target=self._read_credits, name=f"{self.name}-reader", daemon=True
        )
        self._writer = threading.Thread(
            target=self._write_frames, name=f"{self.name}-writer", daemon=True
        )
        self._reader.start()
        self._writer.start()
        if not self._window_ready.wait(timeout=connect_timeout):
            self.close()
            raise TimeoutError(f"{self.name}: no initial credit from receiver")

    # ------------------------------------------------------------------ #
    # Channel send surface (stats live on the outbox)
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ChannelStats:
        return self._outbox.stats

    @property
    def broken(self) -> bool:
        """The peer vanished (reset, closed listener, killed rank)."""
        return self._error is not None

    def can_accept(self, nbytes: int) -> bool:
        # a dead channel must raise, not report "would block": the
        # multi-chunk delivery probe calls this first, and a False here
        # would suspend the group forever instead of surfacing the rank
        # death to the reconnect path
        self._raise_pending()
        return self._outbox.can_accept(nbytes)

    def try_send(self, msg: Any) -> bool:
        self._raise_pending()
        if not self._outbox.try_send(msg):
            return False
        with self._window_changed:
            self._uncredited += 1
        return True

    def send(self, msg: Any, timeout: Optional[float] = None) -> None:
        self._raise_pending()
        self._outbox.send(msg, timeout=timeout)
        with self._window_changed:
            self._uncredited += 1

    # ------------------------------------------------------------------ #
    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every sent byte has been credited by the peer.

        After flush returns, each message is at least in the receiving
        rank's inbox — the guarantee ``GROUP_DONE`` is built on.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._window_changed:
            while self._uncredited:
                self._raise_pending()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"{self.name}: {self._uncredited} message(s) not yet "
                        f"credited by the receiver after {timeout}s"
                    )
                self._window_changed.wait(timeout=0.05 if remaining is None else min(0.05, remaining))

    def close(self) -> None:
        self._outbox.close()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        with self._window_changed:
            self._window_changed.notify_all()

    # ------------------------------------------------------------------ #
    def _raise_pending(self) -> None:
        if self._error is not None:
            raise ChannelClosed(f"{self.name}: connection failed") from self._error

    def _read_credits(self) -> None:
        try:
            while True:
                frame = recv_frame(self._sock)
                if not isinstance(frame, Credit):
                    raise ValueError(f"unexpected frame on data channel: {frame!r}")
                with self._window_changed:
                    if not self._window_ready.is_set():
                        self._window_limit = (
                            None if frame.nbytes < 0 else int(frame.nbytes)
                        )
                        self._window_ready.set()
                    else:
                        self._unacked -= frame.nbytes
                        self._uncredited -= 1
                    self._window_changed.notify_all()
        except (ConnectionLost, OSError, ValueError) as exc:
            self._fail(exc)

    def _write_frames(self) -> None:
        try:
            self._window_ready.wait()
            while True:
                try:
                    msg = self._outbox.recv(timeout=0.1)
                except TimeoutError:
                    continue
                nbytes = frame_nbytes(msg)
                with self._window_changed:
                    # an oversized frame is admitted into an idle window so
                    # it can ever be delivered (mirrors BoundedChannel)
                    while (
                        self._window_limit is not None
                        and self._unacked > 0
                        and self._unacked + nbytes > self._window_limit
                    ):
                        if self._error is not None:
                            return
                        self._window_changed.wait(timeout=0.1)
                    self._unacked += nbytes
                # the wire write happens OUTSIDE the window lock: a send
                # stalled on a full TCP buffer must not block try_send /
                # can_accept / the credit reader on the lock — that would
                # break the non-blocking contract the suspension
                # semantics (and the reconnect path) depend on
                send_frame(self._sock, msg)
        except ChannelClosed:
            pass  # local close with the outbox drained
        except (ConnectionLost, OSError) as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        self._outbox.close()
        with self._window_changed:
            self._window_changed.notify_all()


# --------------------------------------------------------------------- #
# fabric negotiation (client side)
# --------------------------------------------------------------------- #
def open_data_channel(
    address: Tuple[str, int],
    transport: str = "auto",
    send_hwm_bytes: Optional[int] = None,
    name: str = "",
    connect_timeout: float = 10.0,
    max_frame_hint: int = 0,
):
    """Dial a rank's data listener and negotiate the channel fabric.

    ``auto`` asks the listener for a shared-memory ring and proves
    same-hostness by actually attaching the offered segment; any failure
    (cross-host, listener pinned to ``tcp``, segment gone) falls back to
    the TCP framing.  ``shm`` makes fallback a hard
    :class:`TransportNegotiationError`; ``tcp`` skips the offer.

    Returns a :class:`SocketChannel` or :class:`~repro.net.shm.ShmChannel`
    — both satisfy the :class:`~repro.transport.base.Channel` protocol.
    """
    if transport not in ("auto", "tcp", "shm"):
        raise ValueError(f"unknown transport {transport!r}")
    sock = socket.create_connection(address, timeout=connect_timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(connect_timeout)
        try:
            first = recv_frame(sock)
        except (TimeoutError, ConnectionLost) as exc:
            raise TimeoutError(
                f"{name or address}: no initial credit from receiver"
            ) from exc
        if not isinstance(first, Credit):
            raise ProtocolError(
                f"expected the initial credit frame, got {first!r}"
            )
        window = None if first.nbytes < 0 else int(first.nbytes)
        if transport in ("auto", "shm"):
            send_frame(sock, {
                "op": "shm_request",
                "ring_bytes": ring_bytes_for(send_hwm_bytes, max_frame_hint),
            })
            offer = recv_frame(sock)
            ring = None
            if isinstance(offer, dict) and offer.get("op") == "shm_offer":
                try:
                    ring = ShmRing.attach(offer["name"])
                except (OSError, ValueError):
                    ring = None  # cross-host (or the segment vanished)
                send_frame(
                    sock, {"op": "shm_ack" if ring is not None else "shm_nack"}
                )
            if ring is not None:
                sock.settimeout(None)
                return ShmChannel(
                    sock, ring, send_hwm_bytes=send_hwm_bytes, name=name
                )
            if transport == "shm":
                raise TransportNegotiationError(
                    f"{name or address}: transport pinned to shm but the "
                    f"listener offered none (cross-host peer, or it is "
                    f"pinned to tcp)"
                )
        sock.settimeout(None)
        return SocketChannel(
            send_hwm_bytes=send_hwm_bytes,
            name=name,
            sock=sock,
            initial_window=window,
        )
    except BaseException:
        sock.close()
        raise


class _DataConn:
    """Per-connection event-loop state inside :class:`DataListener`."""

    __slots__ = ("sock", "peer", "reader", "ring", "pending_ring")

    def __init__(self, sock: socket.socket, peer: str):
        self.sock = sock
        self.peer = peer
        self.reader = FrameReader()
        self.ring: Optional[ShmRing] = None  # accepted shm fabric
        self.pending_ring: Optional[ShmRing] = None  # offered, not acked

    def fileno(self) -> int:
        return self.sock.fileno()


class DataListener:
    """Server-rank data endpoint: fan-in into one bounded inbox.

    One ``selectors`` event loop accepts connections, grants the initial
    credit window, and moves frames into ``inbox`` — *blocking* (in
    short, shutdown-aware slices) when the inbox is full, which is
    precisely what makes the sender-side window exhaust and the remote
    simulation suspend.  Credits are granted only after a frame has
    entered the inbox.

    With ``transport`` "auto"/"shm" the loop also answers shm requests:
    it creates a ring segment per requesting connection, drains accepted
    rings into the same inbox (advancing each ring's head only after the
    inbox took the frame), and wakes on doorbell frames so idle rings
    cost nothing.  Dead connections are unregistered, their sockets
    closed, and their segments unlinked.
    """

    def __init__(
        self,
        inbox: BoundedChannel,
        host: str = "127.0.0.1",
        port: int = 0,
        recv_hwm_bytes: Optional[int] = None,
        on_disconnect: Optional[Callable[[str], None]] = None,
        transport: str = "auto",
    ):
        if transport not in ("auto", "tcp", "shm"):
            raise ValueError(f"unknown transport {transport!r}")
        self.inbox = inbox
        self.recv_hwm_bytes = recv_hwm_bytes
        self.transport = transport
        self._on_disconnect = on_disconnect
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = False
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, "listener")
        self._sel.register(self._waker_r, selectors.EVENT_READ, "waker")
        self._conn_lock = threading.Lock()
        self._conns: Dict[int, _DataConn] = {}  # fd -> conn (loop-owned)
        self._thread = threading.Thread(
            target=self._loop, name=f"data-loop-{self.address[1]}", daemon=True
        )
        self._thread.start()

    @property
    def open_connections(self) -> int:
        """Live accepted connections (regression hook: must not grow
        across connect/disconnect cycles — disconnects prune)."""
        with self._conn_lock:
            return len(self._conns)

    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        rings_busy = False
        try:
            while True:
                if self._closed:
                    return
                if rings_busy:
                    timeout = 0.0
                else:
                    rings = [c.ring for c in self._conns.values() if c.ring]
                    if rings:
                        # announce intent to sleep, then re-check: the
                        # producer rings the doorbell for any publish
                        # into a waiting ring, so a frame that lands
                        # between the drain pass and the select can
                        # never be stranded.  The timeout is only a
                        # backstop for exotic memory-ordering races.
                        for ring in rings:
                            ring.set_consumer_waiting(True)
                        timeout = 0.0 if any(r.used() for r in rings) else 0.05
                    else:
                        timeout = 0.5
                events = self._sel.select(timeout)
                if self._closed:
                    return
                for key, _ in events:
                    if key.data == "listener":
                        self._accept_ready()
                    elif key.data == "waker":
                        self._drain_waker()
                    else:
                        self._service(key.data)
                rings_busy = False
                for conn in [c for c in self._conns.values() if c.ring]:
                    rings_busy |= self._drain_ring(conn)
        finally:
            self._teardown()

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _DataConn(sock, f"{peer[0]}:{peer[1]}")
            with self._conn_lock:
                self._conns[sock.fileno()] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)
            window = -1 if self.recv_hwm_bytes is None else int(self.recv_hwm_bytes)
            try:
                send_frame(sock, Credit(window))
            except (OSError, ConnectionError):
                self._drop(conn)

    def _drain_waker(self) -> None:
        try:
            while self._waker_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _service(self, conn: _DataConn) -> None:
        try:
            frames = conn.reader.pump(conn.sock)
        except (ConnectionLost, OSError, ProtocolError, ValueError):
            self._drop(conn)
            return
        for msg in frames:
            if isinstance(msg, Doorbell):
                continue  # the ring pass after the event batch drains it
            if isinstance(msg, dict) and str(msg.get("op", "")).startswith("shm_"):
                if not self._negotiate(conn, msg):
                    self._drop(conn)
                    return
                continue
            nbytes = frame_nbytes(msg)
            if not self._deliver(msg):
                return  # shutting down
            try:
                send_frame(conn.sock, Credit(nbytes))
            except (OSError, ConnectionError):
                self._drop(conn)
                return

    def _negotiate(self, conn: _DataConn, msg: dict) -> bool:
        op = msg.get("op")
        if op == "shm_request":
            if self.transport == "tcp":
                return self._send_ctl(conn, {"op": "shm_unavailable"})
            try:
                ring = ShmRing.create(int(msg.get("ring_bytes", 0)))
            except (OSError, ValueError):
                return self._send_ctl(conn, {"op": "shm_unavailable"})
            conn.pending_ring = ring
            return self._send_ctl(conn, {
                "op": "shm_offer", "name": ring.name, "capacity": ring.capacity,
            })
        if op == "shm_ack" and conn.pending_ring is not None:
            conn.ring = conn.pending_ring
            conn.pending_ring = None
            return True
        if op == "shm_nack" and conn.pending_ring is not None:
            conn.pending_ring.close()
            conn.pending_ring.unlink()
            conn.pending_ring = None
            return True
        return True  # unknown shm op: ignore (forward compatibility)

    def _send_ctl(self, conn: _DataConn, msg: dict) -> bool:
        try:
            send_frame(conn.sock, msg)
            return True
        except (OSError, ConnectionError):
            return False

    def _deliver(self, msg: Any) -> bool:
        """Move one frame into the inbox; False means we are shutting
        down (the rank closed its inbox or the listener is closing)."""
        while True:
            try:
                self.inbox.send(msg, timeout=0.1)
                return True
            except TimeoutError:
                if self._closed:
                    return False
            except ChannelClosed:
                return False

    def _deliver_many(self, batch: list) -> bool:
        """Move a batch into the inbox under one lock round trip; False
        means we are shutting down.  ``send_many`` consumes the batch
        from the front, so a timeout slice never double-delivers."""
        while batch:
            try:
                self.inbox.send_many(batch, timeout=0.1)
                return True
            except TimeoutError:
                if self._closed:
                    return False
            except ChannelClosed:
                return False
        return True

    def _drain_ring(
        self, conn: _DataConn, max_frames: int = 256, batch_frames: int = 64
    ) -> bool:
        """Drain up to ``max_frames`` frames; True when more remain (the
        loop then re-selects with a zero timeout instead of starving the
        other connections behind one saturated ring).

        Frames are decoded and delivered in batches: one inbox lock
        round trip and one head advance per ``batch_frames``, while the
        head still only moves after the inbox accepted the messages.
        """
        conn.ring.set_consumer_waiting(False)
        drained = 0
        while drained < max_frames:
            batch: list = []
            nbytes = 0
            while len(batch) < batch_frames:
                try:
                    item = read_ring_frame(conn.ring, offset=nbytes)
                except (ProtocolError, ValueError):
                    self._drop(conn)
                    return False
                if item is None:
                    break
                msg, total = item
                batch.append(msg)
                nbytes += total
            if not batch:
                return False
            drained += len(batch)
            if not self._deliver_many(batch):
                return False
            conn.ring.advance(nbytes)
        return True

    def _drop(self, conn: _DataConn) -> None:
        """Disconnect path: prune the connection table, close the socket,
        and retire the shm segment (drain what the producer published
        first — those frames were complete, even through a SIGKILL)."""
        with self._conn_lock:
            self._conns.pop(conn.sock.fileno(), None)
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        if conn.ring is not None:
            try:
                while True:
                    item = read_ring_frame(conn.ring)
                    if item is None:
                        break
                    msg, total = item
                    if not self._deliver(msg):
                        break
                    conn.ring.advance(total)
            except (ProtocolError, ValueError):
                pass  # corrupt trailing frame: keep what already landed
        for ring in (conn.ring, conn.pending_ring):
            if ring is not None:
                try:
                    ring.close_consumer()
                except (OSError, ValueError):
                    pass
                ring.close()
                ring.unlink()
        conn.ring = conn.pending_ring = None
        try:
            conn.sock.close()
        except OSError:
            pass
        if self._on_disconnect is not None:
            self._on_disconnect(conn.peer)

    def _teardown(self) -> None:
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            self._drop(conn)
        try:
            self._sel.close()
        except OSError:
            pass
        for sock in (self._listener, self._waker_r, self._waker_w):
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        try:
            self._waker_w.send(b"x")
        except OSError:
            pass
        self._thread.join(timeout=5.0)
