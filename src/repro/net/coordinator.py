"""Rank-0 rendezvous endpoint + distributed study coordination.

In the paper a starting simulation group contacts the *server's rank 0*,
which replies with the server-side data partition so the group can open
direct channels to exactly the intersecting ranks (Sec. 4.1.3).  The
:class:`Coordinator` plays that role over one TCP control port, and
additionally owns the launcher-side bookkeeping of Sec. 4.2.2:

* **server ranks** register their data-listener addresses and, at the
  end of the study, ship their rank state (+ batched index maps and
  convergence scalar) back;
* **group workers** request work, receive the partition + address table
  on connect, and report finished groups;
* **fault tolerance** — a worker that disappears (closed control
  connection, e.g. a killed process, or a stale heartbeat) has its
  in-flight group resubmitted to the remaining workers, up to
  ``config.max_group_retries`` times; server ranks are told to forget
  the dead instance's staged partials and replay protection discards
  whatever the resubmitted run re-sends of already-integrated timesteps.

The coordinator is transport policy only — statistics never flow through
it; field data goes worker -> rank over the direct data channels.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import socket
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import StudyConfig
from repro.core.diagnostics import unfinished_study_message
from repro.net.framing import (
    AddressedReply,
    ConnectionLost,
    FrameConnection,
)
from repro.mesh.partition import BlockPartition
from repro.transport.message import ConnectionReply, ConnectionRequest, Heartbeat


class StudyAborted(RuntimeError):
    """A participant failed in a way the study cannot recover from."""


def study_fingerprint(config: StudyConfig) -> dict:
    """Facts every participant must agree on to join a study."""
    return {
        "ncells": config.ncells,
        "ntimesteps": config.ntimesteps,
        "nparams": config.nparams,
        "ngroups": config.ngroups,
        "seed": config.seed,
        "server_ranks": config.server_ranks,
        "sampling_method": config.sampling_method,
    }


class Coordinator:
    """The rendezvous + work-queue process (the ``repro launch`` core).

    Parameters
    ----------
    config:
        The authoritative study configuration.
    host, port:
        Control endpoint to bind (port 0 = ephemeral).
    worker_timeout:
        Heartbeat staleness (seconds) after which a worker holding a
        group is declared dead and its group resubmitted; defaults to
        ``config.group_timeout``.
    fault_kill_after:
        Test hook — after handing out this many group assignments
        (1-based), SIGKILL the worker process that received the last one
        (requires the worker's ``hello`` to carry its pid, which the
        loopback runtime's workers do).  Exercises the resubmission path
        deterministically.
    """

    def __init__(
        self,
        config: StudyConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_timeout: Optional[float] = None,
        fault_kill_after: Optional[int] = None,
    ):
        self.config = config
        self.fingerprint = study_fingerprint(config)
        self.partition = BlockPartition(config.ncells, config.server_ranks)
        self.worker_timeout = (
            config.group_timeout if worker_timeout is None else worker_timeout
        )
        self.fault_kill_after = fault_kill_after
        self._listener = socket.create_server((host, port), backlog=64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._pending = deque(range(config.ngroups))
        self._assigned: Dict[int, int] = {}  # worker id -> group id
        self._retries: Dict[int, int] = {}
        self.done: Set[int] = set()
        self.abandoned: List[int] = []
        self.resubmitted: List[int] = []
        self._assign_count = 0
        self._rank_addresses: Dict[int, Tuple[str, int]] = {}
        self._rank_conns: Dict[int, FrameConnection] = {}
        self.rank_states: Dict[int, dict] = {}
        self.rank_maps: Dict[int, dict] = {}
        self.rank_widths: Dict[int, float] = {}
        self._worker_pids: Dict[int, Optional[int]] = {}
        self._worker_names: Dict[int, str] = {}
        self._last_seen: Dict[int, float] = {}
        self._worker_conns: Dict[int, FrameConnection] = {}
        self._next_worker_id = 0
        self._errors: List[str] = []
        self._finalized = False
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True
        )

    # ------------------------------------------------------------------ #
    def start(self) -> "Coordinator":
        self._accept_thread.start()
        return self

    # ------------------------------------------------------------------ #
    # lifecycle / main wait loop
    # ------------------------------------------------------------------ #
    def wait(self, timeout: float = 300.0, poll: float = 0.05) -> None:
        """Block until every rank reported its state (study complete).

        Raises a descriptive :class:`TimeoutError` naming the unfinished
        groups and unreported ranks, or :class:`StudyAborted` on a fatal
        participant failure.
        """
        deadline = time.monotonic() + timeout
        try:
            while True:
                with self._changed:
                    if self._errors:
                        raise StudyAborted(
                            "distributed study failed:\n" + "\n".join(self._errors)
                        )
                    if len(self.rank_states) == self.config.server_ranks:
                        return
                    if self._groups_settled() and not self._finalized:
                        self._finalize_ranks()
                    self._reap_stale_workers()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(self._timeout_message(timeout))
                    self._changed.wait(timeout=min(poll, remaining))
        finally:
            if len(self.rank_states) == self.config.server_ranks or self._errors:
                self.close()

    def _timeout_message(self, timeout: float) -> str:
        return unfinished_study_message(
            "distributed", timeout, self.config.ngroups, self.done,
            self.abandoned, self.config.server_ranks, self.rank_states,
        )

    def _groups_settled(self) -> bool:
        return (
            not self._pending
            and not self._assigned
            and len(self.done) + len(self.abandoned) == self.config.ngroups
        )

    def _finalize_ranks(self) -> None:
        self._finalized = True
        for rank, conn in list(self._rank_conns.items()):
            try:
                conn.send({"op": "finalize"})
            except ConnectionLost:
                self._errors.append(f"server rank {rank} lost before finalize")

    def _reap_stale_workers(self) -> None:
        now = time.monotonic()
        for wid, gid in list(self._assigned.items()):
            last = self._last_seen.get(wid, now)
            if now - last > self.worker_timeout:
                conn = self._worker_conns.get(wid)
                if conn is not None:
                    conn.close()  # reader thread unblocks and resubmits

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in list(self._rank_conns.values()) + list(
            self._worker_conns.values()
        ):
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            conn = FrameConnection(sock)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="coordinator-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: FrameConnection) -> None:
        try:
            hello = conn.recv(timeout=self.worker_timeout)
        except (ConnectionLost, TimeoutError):
            conn.close()
            return
        if not isinstance(hello, dict):
            conn.close()
            return
        if hello.get("fingerprint") != self.fingerprint:
            with self._changed:
                self._errors.append(
                    f"{hello.get('op')} from {conn.peername} joined with a "
                    f"mismatched study configuration: {hello.get('fingerprint')}"
                    f" != {self.fingerprint}"
                )
                self._changed.notify_all()
            try:
                conn.send({"op": "error", "error": "study fingerprint mismatch"})
            except ConnectionLost:
                pass
            conn.close()
            return
        if hello.get("op") == "register":
            self._serve_rank_connection(conn, hello)
        elif hello.get("op") == "hello":
            self._serve_worker_connection(conn, hello)
        else:
            conn.close()

    # ------------------------------------------------------------------ #
    def _serve_rank_connection(self, conn: FrameConnection, hello: dict) -> None:
        rank = int(hello["rank"])
        with self._changed:
            self._rank_addresses[rank] = tuple(hello["address"])
            self._rank_conns[rank] = conn
            self._changed.notify_all()
        try:
            conn.send({"op": "registered"})
            while True:
                frame = conn.recv()
                if isinstance(frame, Heartbeat):
                    continue
                if isinstance(frame, dict) and frame.get("op") == "rank_state":
                    with self._changed:
                        self.rank_states[rank] = frame["state"]
                        self.rank_maps[rank] = frame["maps"]
                        self.rank_widths[rank] = frame["width"]
                        self._changed.notify_all()
                    return
                if isinstance(frame, dict) and frame.get("op") == "error":
                    with self._changed:
                        self._errors.append(
                            f"server rank {rank} failed:\n{frame['error']}"
                        )
                        self._changed.notify_all()
                    return
        except (ConnectionLost, TimeoutError):
            with self._changed:
                if rank not in self.rank_states and not self._closed:
                    self._errors.append(
                        f"server rank {rank} disconnected before reporting its state"
                    )
                self._changed.notify_all()

    # ------------------------------------------------------------------ #
    def _serve_worker_connection(self, conn: FrameConnection, hello: dict) -> None:
        with self._changed:
            wid = self._next_worker_id
            self._next_worker_id += 1
            self._worker_pids[wid] = hello.get("pid")
            self._worker_names[wid] = str(hello.get("worker", f"worker-{wid}"))
            self._worker_conns[wid] = conn
            self._last_seen[wid] = time.monotonic()
        name = self._worker_names[wid]
        kill_pid = None
        try:
            conn.send({"op": "welcome", "worker_id": wid})
            while True:
                frame = conn.recv()
                self._last_seen[wid] = time.monotonic()
                if isinstance(frame, Heartbeat):
                    continue
                if isinstance(frame, ConnectionRequest):
                    conn.send(self._connection_reply(frame))
                    continue
                if not isinstance(frame, dict):
                    raise StudyAborted(f"unexpected frame from {name}: {frame!r}")
                op = frame.get("op")
                if op == "next":
                    reply, kill_pid = self._assign(wid)
                    conn.send(reply)
                    if kill_pid is not None:
                        os.kill(kill_pid, signal.SIGKILL)  # fault-injection hook
                elif op == "group_done":
                    self._mark_done(wid, int(frame["group_id"]))
                elif op == "error":
                    with self._changed:
                        self._errors.append(f"worker {name} failed:\n{frame['error']}")
                        self._changed.notify_all()
                    return
                elif op == "bye":
                    return
                else:
                    raise StudyAborted(f"unknown op from {name}: {op!r}")
        except (ConnectionLost, TimeoutError):
            pass  # dead worker: resubmission handled in finally
        except StudyAborted as exc:
            with self._changed:
                self._errors.append(str(exc))
                self._changed.notify_all()
        finally:
            conn.close()
            self._resubmit_if_assigned(wid)

    def _connection_reply(self, request: ConnectionRequest) -> AddressedReply:
        if request.ncells != self.config.ncells:
            raise StudyAborted(
                f"group {request.group_id} has {request.ncells} cells, "
                f"study configured {self.config.ncells}"
            )
        # the handshake blocks until every rank has registered its data
        # address — a group can only open channels to a complete server
        deadline = time.monotonic() + self.worker_timeout
        with self._changed:
            while len(self._rank_addresses) < self.config.server_ranks:
                if time.monotonic() >= deadline:
                    raise StudyAborted(
                        f"only {len(self._rank_addresses)} of "
                        f"{self.config.server_ranks} server ranks registered"
                    )
                self._changed.wait(timeout=0.05)
            addresses = tuple(
                self._rank_addresses[r] for r in range(self.config.server_ranks)
            )
        return AddressedReply(
            reply=ConnectionReply(
                nranks_server=self.partition.nranks,
                offsets=tuple(int(o) for o in self.partition.offsets),
            ),
            addresses=addresses,
        )

    def _assign(self, wid: int):
        """Next work item for a worker: a group, idle backoff, or done."""
        with self._changed:
            if self._groups_settled():
                return {"op": "done"}, None
            if not self._pending:
                # other workers still hold groups that may yet be
                # resubmitted; stay around
                return {"op": "idle", "delay": 0.1}, None
            gid = self._pending.popleft()
            self._assigned[wid] = gid
            self._assign_count += 1
            kill_pid = None
            if (
                self.fault_kill_after is not None
                and self._assign_count == self.fault_kill_after
                and self._worker_pids.get(wid)
            ):
                kill_pid = self._worker_pids[wid]
            self._changed.notify_all()
            return {"op": "group", "group_id": gid}, kill_pid

    def _mark_done(self, wid: int, gid: int) -> None:
        with self._changed:
            if self._assigned.get(wid) == gid:
                del self._assigned[wid]
            self.done.add(gid)
            self._changed.notify_all()

    def _resubmit_if_assigned(self, wid: int) -> None:
        """Sec. 4.2.2 fault path: the worker died holding a group."""
        with self._changed:
            gid = self._assigned.pop(wid, None)
            if gid is None or gid in self.done:
                self._changed.notify_all()
                return
            self._retries[gid] = self._retries.get(gid, 0) + 1
            if self._retries[gid] > self.config.max_group_retries:
                self.abandoned.append(gid)
            else:
                self.resubmitted.append(gid)
                self._pending.append(gid)
            self._changed.notify_all()
        # tell the ranks to drop the dead instance's staged partials;
        # integrated timesteps stay and replay protection discards their
        # re-sends, so the resubmitted run is exact
        for rank, conn in list(self._rank_conns.items()):
            try:
                conn.send({"op": "forget", "group_id": gid})
            except ConnectionLost:
                pass
