"""Rank-0 rendezvous endpoint + distributed study coordination.

In the paper a starting simulation group contacts the *server's rank 0*,
which replies with the server-side data partition so the group can open
direct channels to exactly the intersecting ranks (Sec. 4.1.3).  The
:class:`Coordinator` plays that role over one TCP control port, and
additionally owns the launcher-side bookkeeping of Sec. 4.2.2:

* **server ranks** register their data-listener addresses and, at the
  end of the study, ship their rank state (+ batched index maps and
  convergence scalar) back;
* **group workers** request work, receive the partition + address table
  on connect, and report finished groups;
* **fault tolerance** — a worker that disappears (closed control
  connection, e.g. a killed process, or a stale heartbeat) has its
  in-flight group resubmitted to the remaining workers, up to
  ``config.max_group_retries`` times; server ranks are told to forget
  the dead instance's staged partials and replay protection discards
  whatever the resubmitted run re-sends of already-integrated timesteps;
* **server-rank supervision** (Sec. 4.2.3, the launcher protocol) —
  when a :class:`~repro.net.supervisor.RankSupervisor` is attached, a
  server rank whose control connection drops or whose heartbeat goes
  silent is killed and respawned from its per-rank checkpoint.  The
  replacement re-registers with a fresh data address and reports which
  groups its restored statistics already contain; the coordinator
  requeues every group the restored state is missing (data integrated
  after the last checkpoint died with the old process) and workers
  re-run them — replay protection on the surviving ranks discards the
  duplicates, so the statistics stay exact;
* **straggler-aware scheduling** — when a
  :class:`~repro.scheduler.policy.SchedulingPolicy` is attached, group
  completions feed per-worker EWMA throughput.  An idle worker facing an
  empty queue may *speculatively* re-run the longest-overdue in-flight
  group (running past a multiple of the fleet-median duration): both
  copies stream byte-identical data, each (group, timestep) integrates
  exactly once per rank, and the first ``group_done`` wins — the loser
  is settled silently and its residual frames are replay-discarded, so
  speculation needs ``discard_on_replay`` and never perturbs any
  exact-merge statistic.  Work stealing holds a demonstrably slow worker
  back from the queue tail while faster workers can drain it;
* **elastic pool resize** — a :class:`~repro.net.supervisor.PoolSupervisor`
  spawns extra workers while queue depth exceeds the high-water mark
  (checked from the wait loop) and retires elastic workers asking for
  work below the low-water mark (the paper's Fig. 6 elastic ramp, driven
  by the live queue instead of the batch scheduler).

The coordinator is transport policy only — statistics never flow through
it; field data goes worker -> rank over the direct data channels.
"""

from __future__ import annotations

import hashlib
import os
import selectors
import signal
import threading
import time
import socket
from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.core.config import StudyConfig
from repro.core.diagnostics import unfinished_study_message
from repro.net.framing import (
    AddressedReply,
    ConnectionLost,
    FrameReader,
    ProtocolError,
    send_frame,
)
from repro.mesh.partition import BlockPartition
from repro.telemetry.logs import get_logger, ids
from repro.transport.message import ConnectionReply, ConnectionRequest, Heartbeat


class StudyAborted(RuntimeError):
    """A participant failed in a way the study cannot recover from."""


class _Peer:
    """One control connection multiplexed onto the coordinator loop.

    The event loop owns the file descriptor: foreign threads (the wait
    loop's reaps, :meth:`Coordinator.close`) only ``shutdown`` the
    socket via :meth:`close`, which the loop observes as EOF and runs
    the loss path for — closing an fd that is still registered in the
    selector from another thread would race the loop's ``select``.
    """

    __slots__ = (
        "sock", "peername", "reader", "kind", "rank", "wid",
        "hello_deadline", "detached", "_wlock",
    )

    def __init__(self, sock: socket.socket, peername: str):
        self.sock = sock
        self.peername = peername
        self.reader = FrameReader()
        self.kind: Optional[str] = None  # None (pre-hello), "rank", "worker"
        self.rank: Optional[int] = None
        self.wid: Optional[int] = None
        self.hello_deadline: Optional[float] = None
        self.detached = False
        self._wlock = threading.Lock()

    def send(self, msg: Any) -> None:
        try:
            with self._wlock:
                send_frame(self.sock, msg)
        except (OSError, ConnectionError) as exc:
            raise ConnectionLost(str(exc)) from exc

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass


def study_id(config: StudyConfig) -> str:
    """Short stable id naming this study in logs and dashboards."""
    return hashlib.sha1(
        repr(sorted(study_fingerprint(config).items())).encode()
    ).hexdigest()[:12]


def study_fingerprint(config: StudyConfig) -> dict:
    """Facts every participant must agree on to join a study."""
    return {
        "ncells": config.ncells,
        "ntimesteps": config.ntimesteps,
        "nparams": config.nparams,
        "ngroups": config.ngroups,
        "seed": config.seed,
        "server_ranks": config.server_ranks,
        "sampling_method": config.sampling_method,
        "statistics": list(config.statistics),
    }


class Coordinator:
    """The rendezvous + work-queue process (the ``repro launch`` core).

    Parameters
    ----------
    config:
        The authoritative study configuration.
    host, port:
        Control endpoint to bind (port 0 = ephemeral).
    worker_timeout:
        Heartbeat staleness (seconds) after which a worker holding a
        group is declared dead and its group resubmitted; defaults to
        ``config.group_timeout``.
    fault_kill_after:
        Test hook — after handing out this many group assignments
        (1-based), SIGKILL the worker process that received the last one
        (requires the worker's ``hello`` to carry its pid, which the
        loopback runtime's workers do).  Exercises the resubmission path
        deterministically.
    supervisor:
        Optional :class:`~repro.net.supervisor.RankSupervisor`.  Without
        one, a dead server rank aborts the study (pre-supervision
        behaviour); with one, the rank is killed and respawned from its
        checkpoint and the study continues.  Heartbeat staleness for
        zombie detection lives on the supervisor's policy.
    policy:
        Optional :class:`~repro.scheduler.policy.SchedulingPolicy`.
        Without one the queue is plain FIFO; with one, completions feed
        per-worker EWMA throughput and the policy may speculate straggler
        groups and hold slow workers back from the queue tail.
        Speculation requires ``config.discard_on_replay`` — exactness of
        duplicate completions rests on it.
    pool:
        Optional :class:`~repro.net.supervisor.PoolSupervisor` for
        elastic pool resize (spawn on deep queue, retire elastic workers
        on drained queue).
    """

    def __init__(
        self,
        config: StudyConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_timeout: Optional[float] = None,
        fault_kill_after: Optional[int] = None,
        supervisor=None,
        policy=None,
        pool=None,
        telemetry=None,
        tracer=None,
    ):
        if policy is not None and policy.config.speculate and not config.discard_on_replay:
            raise ValueError(
                "speculative re-execution requires discard_on_replay=True: "
                "first-completion-wins is only exact because ranks discard "
                "the losing copy's replayed timesteps"
            )
        self.config = config
        self.fingerprint = study_fingerprint(config)
        self.partition = BlockPartition(config.ncells, config.server_ranks)
        self.worker_timeout = (
            config.group_timeout if worker_timeout is None else worker_timeout
        )
        self.fault_kill_after = fault_kill_after
        self.supervisor = supervisor
        self.policy = policy
        self.pool = pool
        # observability (ISSUE 8): `telemetry` is an optional
        # StudyTelemetry aggregating the metric deltas that ranks and
        # workers piggyback on heartbeats (its presence is advertised in
        # the registration acks — capability negotiation, so old peers
        # keep sending plain heartbeats); `tracer` records the group
        # lifecycle + fault/elastic instants for --trace.  The event
        # timeline and final channel-stats frames are collected
        # unconditionally — they are bounded and feed the launch
        # end-of-run summary even with telemetry off.
        self.telemetry = telemetry
        self.tracer = tracer
        self.study_id = study_id(config)
        self.events: List[Tuple[float, str, str]] = []
        self.worker_channel_stats: Dict[str, dict] = {}
        self.rank_channel_stats: Dict[int, dict] = {}
        self._attempt_started: Dict[Tuple[int, int], float] = {}
        self._rank_last_beat: Dict[int, float] = {}
        self._log = get_logger("coordinator", study=self.study_id)
        reg = _telemetry.REGISTRY
        self._m_queue_depth = reg.gauge(
            "repro_queue_depth", "groups waiting for a worker")
        self._m_in_flight = reg.gauge(
            "repro_in_flight", "group attempts currently assigned")
        self._m_workers_active = reg.gauge(
            "repro_workers_active", "connected group workers")
        self._m_staleness = reg.gauge(
            "repro_heartbeat_staleness_seconds",
            "seconds since each peer's last heartbeat")
        self._m_groups_done = reg.counter(
            "repro_groups_done", "groups settled (first completion wins)")
        self._m_resubmits = reg.counter(
            "repro_group_resubmits", "groups requeued after a worker death")
        self._m_interrupted = reg.counter(
            "repro_groups_interrupted",
            "group attempts aborted by a server-rank death")
        self._m_spec_fired = reg.counter(
            "repro_speculations_fired", "speculative duplicate attempts issued")
        self._m_spec_won = reg.counter(
            "repro_speculations_won",
            "groups settled first by their speculative copy")
        self._m_holdbacks = reg.counter(
            "repro_steal_holdbacks",
            "assignments withheld from slow workers (work stealing)")
        self._m_rank_respawns = reg.counter(
            "repro_rank_respawns", "server-rank respawns (launcher protocol)")
        self._m_requeued_respawn = reg.counter(
            "repro_requeued_after_respawn",
            "groups requeued because a respawned rank's state missed them")
        self._m_elastic_spawned = reg.gauge(
            "repro_elastic_spawned", "elastic workers forked so far")
        self._m_elastic_retired = reg.gauge(
            "repro_elastic_retired", "elastic workers retired so far")
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        # single multiplexed control plane: selectors scales past
        # FD_SETSIZE and one loop thread replaces a thread per peer
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._listener, selectors.EVENT_READ, "listener")
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._sel.register(self._waker_r, selectors.EVENT_READ, "waker")
        self._peers: Set[_Peer] = set()  # registered in the selector
        self._detached: List[_Peer] = []  # done reading, fd kept open
        # rendezvous requests waiting for the full rank address table:
        # (peer, request, deadline) serviced from the loop's tick
        self._parked: List[Tuple[_Peer, ConnectionRequest, float]] = []

        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._pending = deque(range(config.ngroups))
        self._assigned: Dict[int, int] = {}  # worker id -> group id
        self._retries: Dict[int, int] = {}
        self.done: Set[int] = set()
        self.abandoned: List[int] = []
        self.resubmitted: List[int] = []
        self.interrupted: List[int] = []  # groups aborted by a rank death
        self.rank_respawns: List[int] = []  # ranks that re-registered
        self.requeued_after_respawn: List[int] = []
        # (worker id, group id) attempts that were in flight when a rank
        # respawned: their outcome proves nothing for the restored rank,
        # so only the requeued copy may settle the group
        self._stale_attempts: Set[Tuple[int, int]] = set()
        # speculation bookkeeping: re-issued group ids (for reporting),
        # the duplicate attempts themselves, and elastic-pool state
        self.speculated: List[int] = []
        self.retired_workers: List[int] = []
        self._speculative_attempts: Set[Tuple[int, int]] = set()
        self._worker_elastic: Dict[int, bool] = {}
        self._retired_wids: Set[int] = set()
        self._rank_generations: Dict[int, int] = {}
        self._assign_count = 0
        self._rank_addresses: Dict[int, Tuple[str, int]] = {}
        self._rank_conns: Dict[int, Any] = {}
        self.rank_states: Dict[int, dict] = {}
        self.rank_maps: Dict[int, dict] = {}
        self.rank_widths: Dict[int, float] = {}
        self._worker_pids: Dict[int, Optional[int]] = {}
        self._worker_names: Dict[int, str] = {}
        self._last_seen: Dict[int, float] = {}
        self._worker_conns: Dict[int, Any] = {}
        self._next_worker_id = 0
        self._errors: List[str] = []
        self._finalized = False
        self._closed = False
        self._loop_thread = threading.Thread(
            target=self._loop, name="coordinator-loop", daemon=True
        )

    # ------------------------------------------------------------------ #
    def start(self) -> "Coordinator":
        if self.supervisor is not None:
            # seed liveness for every expected rank: a serve process that
            # dies BEFORE it ever registers (bind failure, bad restore,
            # OOM kill) has no connection to drop, so only staleness from
            # this baseline can expose it for respawn
            now = time.monotonic()
            for rank in range(self.config.server_ranks):
                self.supervisor.beat(rank, now)
        self._event(
            "study_started",
            f"{self.config.ngroups} groups drawn, "
            f"{self.config.server_ranks} server ranks",
        )
        self._loop_thread.start()
        return self

    # ------------------------------------------------------------------ #
    # observability plumbing
    # ------------------------------------------------------------------ #
    def _event(self, kind: str, detail: str = "") -> None:
        """Study event: timeline entry + optional tracer instant.

        The timeline is always recorded (bounded by study events, and the
        launch end-of-run summary prints it); the tracer instant only
        exists under ``--trace``.
        """
        now = time.time()
        self.events.append((now, kind, detail))
        if self.tracer is not None:
            self.tracer.instant(
                kind, "event", t=now, tid="coordinator",
                args={"detail": detail} if detail else None,
            )
        self._log.info("%s %s", kind, detail, extra=ids(event=kind))

    def _start_attempt(self, wid: int, gid: int) -> None:
        self._attempt_started[(wid, gid)] = time.time()

    def _finish_attempt(self, wid: int, gid: int, outcome: str) -> None:
        t0 = self._attempt_started.pop((wid, gid), None)
        if t0 is None or self.tracer is None:
            return
        self.tracer.complete(
            f"group {gid}", "assigned", t0, time.time(),
            tid=self._worker_names.get(wid, f"worker {wid}"),
            args={"group": gid, "outcome": outcome},
        )

    def _refresh_gauges(self) -> None:
        """Update point-in-time gauges (wait loop, lock held)."""
        if not _telemetry.REGISTRY.enabled:
            return
        self._m_queue_depth.set(len(self._pending))
        self._m_in_flight.set(len(self._assigned))
        self._m_workers_active.set(len(self._worker_conns))
        now = time.monotonic()
        for wid, last in self._last_seen.items():
            name = self._worker_names.get(wid, f"worker {wid}")
            self._m_staleness.set(now - last, peer=name)
        for rank, last in self._rank_last_beat.items():
            self._m_staleness.set(now - last, peer=f"server-rank-{rank}")
        if self.pool is not None:
            self._m_elastic_spawned.set(self.pool.spawned_total)
            self._m_elastic_retired.set(self.pool.retired_total)

    def study_view(self) -> dict:
        """Live study facts for dashboard frames (``repro top``)."""
        with self._lock:
            view = {
                "fingerprint": self.study_id,
                "ngroups": self.config.ngroups,
                "groups_done": len(self.done),
                "queue_depth": len(self._pending),
                "in_flight": len(self._assigned),
                "workers_active": len(self._worker_conns),
                "speculated": len(self.speculated),
                "resubmitted": len(self.resubmitted),
                "interrupted": len(self.interrupted),
                "rank_respawns": len(self.rank_respawns),
                "abandoned": len(self.abandoned),
            }
            if self.policy is not None:
                view["ewma"] = {
                    self._worker_names.get(w, str(w)): round(s, 4)
                    for w, s in self.policy.ewma.items()
                }
        return view

    # ------------------------------------------------------------------ #
    # lifecycle / main wait loop
    # ------------------------------------------------------------------ #
    def wait(self, timeout: float = 300.0, poll: float = 0.05) -> None:
        """Block until every rank reported its state (study complete).

        Raises a descriptive :class:`TimeoutError` naming the unfinished
        groups and unreported ranks, or :class:`StudyAborted` on a fatal
        participant failure.
        """
        deadline = time.monotonic() + timeout
        try:
            while True:
                with self._changed:
                    if self._errors:
                        raise StudyAborted(
                            "distributed study failed:\n" + "\n".join(self._errors)
                        )
                    if len(self.rank_states) == self.config.server_ranks:
                        return
                    if self._groups_settled() and not self._finalized:
                        self._finalize_ranks()
                    self._reap_stale_workers()
                    orphans = self._reap_stale_ranks()
                    self._refresh_gauges()
                    queue_depth = len(self._pending)
                    active_workers = len(self._worker_conns)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(self._timeout_message(timeout))
                    if not orphans:
                        self._changed.wait(timeout=min(poll, remaining))
                for rank in orphans:
                    # a stale rank with no connection to close: respawn it
                    # directly (kill + spawn happen outside the lock)
                    self._respawn_lost_rank(rank)
                if self.pool is not None:
                    # elastic ramp-up (spawning forks — no lock held); the
                    # ramp-down half lives in _assign, where an elastic
                    # worker asking for work against a drained queue is
                    # told to retire instead
                    self.pool.maybe_spawn(queue_depth, active_workers)
        finally:
            if len(self.rank_states) == self.config.server_ranks or self._errors:
                if not self._errors:
                    self._drain_worker_goodbyes()
                self.close()

    def _drain_worker_goodbyes(self, grace: float = 0.35) -> None:
        """Give connected workers a moment to ask ``next``, hear ``done``,
        and say ``bye`` before :meth:`close` cuts them off.

        The ``bye`` frame carries each worker's final send-side
        :class:`~repro.transport.channel.ChannelStats` (and, under
        telemetry, its last metric delta rides the preceding heartbeat),
        so closing eagerly would lose the end-of-run accounting.  Bounded:
        a worker that never comes back (killed, zombie, mid-straggle)
        cannot stall shutdown past ``grace`` seconds — idle workers poll
        every 0.1s, so the healthy case drains in one round trip.
        """
        deadline = time.monotonic() + grace
        with self._changed:
            while self._worker_conns and time.monotonic() < deadline:
                self._changed.wait(timeout=0.05)

    def _timeout_message(self, timeout: float) -> str:
        return unfinished_study_message(
            "distributed", timeout, self.config.ngroups, self.done,
            self.abandoned, self.config.server_ranks, self.rank_states,
        )

    def _groups_settled(self) -> bool:
        return (
            not self._pending
            and not self._assigned
            and len(self.done) + len(self.abandoned) == self.config.ngroups
        )

    def _finalize_ranks(self) -> None:
        self._finalized = True
        self._event("finalize", "every group settled; collecting rank states")
        for rank, conn in list(self._rank_conns.items()):
            try:
                conn.send({"op": "finalize"})
            except ConnectionLost:
                # with supervision the rank's reader thread notices the
                # loss and respawns; the replacement is re-finalized
                if self.supervisor is None:
                    self._errors.append(f"server rank {rank} lost before finalize")

    def _reap_stale_workers(self) -> None:
        now = time.monotonic()
        for wid, gid in list(self._assigned.items()):
            last = self._last_seen.get(wid, now)
            if now - last > self.worker_timeout:
                conn = self._worker_conns.get(wid)
                if conn is not None:
                    conn.close()  # shutdown: the loop sees EOF and resubmits

    def _reap_stale_ranks(self) -> List[int]:
        """Flag heartbeat-silent ranks (lock held).

        A connected zombie has its control connection closed so its
        reader thread runs the loss path (kill + respawn).  A stale rank
        with NO connection — it died before ever registering — is
        returned for the wait loop to respawn directly; its liveness
        entry is dropped so the verdict fires once (the replacement's
        registration re-arms tracking).  A rank that already shipped its
        state is lingering on purpose and is never reaped.
        """
        if self.supervisor is None:
            return []
        orphans: List[int] = []
        for rank in self.supervisor.stale_ranks(time.monotonic()):
            if rank in self.rank_states:
                continue
            conn = self._rank_conns.get(rank)
            if conn is not None:
                conn.close()
            else:
                self.supervisor.policy.forget(rank)
                orphans.append(rank)
        return orphans

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in list(self._rank_conns.values()) + list(
            self._worker_conns.values()
        ):
            try:
                conn.close()  # shutdown: the loop owns the final fd close
            except OSError:
                pass
        try:
            self._waker_w.send(b"x")
        except OSError:
            pass
        if self._loop_thread.is_alive():
            self._loop_thread.join(timeout=5.0)
        elif not self._loop_thread.ident:
            self._teardown()  # never started: nothing else closes the fds

    # ------------------------------------------------------------------ #
    # connection handling: one selectors event loop for every peer
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        try:
            while not self._closed:
                events = self._sel.select(0.1)
                if self._closed:
                    return
                for key, _ in events:
                    if key.data == "listener":
                        self._accept_ready()
                    elif key.data == "waker":
                        self._drain_waker()
                    else:
                        self._pump_peer(key.data)
                self._tick(time.monotonic())
        finally:
            self._teardown()

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, peer_addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            peer = _Peer(sock, f"{peer_addr[0]}:{peer_addr[1]}")
            peer.hello_deadline = time.monotonic() + self.worker_timeout
            self._peers.add(peer)
            self._sel.register(sock, selectors.EVENT_READ, peer)

    def _drain_waker(self) -> None:
        try:
            while self._waker_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _pump_peer(self, peer: _Peer) -> None:
        try:
            frames = peer.reader.pump(peer.sock)
        except (ConnectionLost, ProtocolError, OSError, ValueError):
            self._peer_lost(peer)
            return
        for frame in frames:
            if not self._dispatch(peer, frame):
                return  # the peer finished, detached, or was dropped

    def _dispatch(self, peer: _Peer, frame: Any) -> bool:
        """Route one frame; False when the peer should pump no further."""
        if peer.kind is None:
            return self._handle_hello(peer, frame)
        if peer.kind == "rank":
            return self._on_rank_frame(peer, frame)
        return self._on_worker_frame(peer, frame)

    def _handle_hello(self, peer: _Peer, hello: Any) -> bool:
        if not isinstance(hello, dict):
            self._drop_fd(peer)
            return False
        if hello.get("fingerprint") != self.fingerprint:
            with self._changed:
                self._errors.append(
                    f"{hello.get('op')} from {peer.peername} joined with a "
                    f"mismatched study configuration: {hello.get('fingerprint')}"
                    f" != {self.fingerprint}"
                )
                self._changed.notify_all()
            try:
                peer.send({"op": "error", "error": "study fingerprint mismatch"})
            except ConnectionLost:
                pass
            self._drop_fd(peer)
            return False
        peer.hello_deadline = None
        if hello.get("op") == "register":
            return self._register_rank(peer, hello)
        if hello.get("op") == "hello":
            return self._register_worker(peer, hello)
        self._drop_fd(peer)
        return False

    # -- loop-side peer lifecycle -------------------------------------- #
    def _drop_fd(self, peer: _Peer) -> None:
        """Remove a peer from the loop and close its descriptor."""
        self._peers.discard(peer)
        try:
            self._sel.unregister(peer.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            peer.sock.close()
        except OSError:
            pass

    def _detach(self, peer: _Peer) -> None:
        """Stop reading a peer but keep its socket open (the equivalent
        of the old per-connection thread returning): a lingering rank
        that reported its state, or one that shipped a fatal error,
        stays connected until the coordinator itself closes."""
        self._peers.discard(peer)
        try:
            self._sel.unregister(peer.sock)
        except (KeyError, ValueError, OSError):
            pass
        peer.detached = True
        self._detached.append(peer)

    def _peer_lost(self, peer: _Peer) -> None:
        """EOF/reset/protocol violation on a registered peer."""
        kind, rank, wid = peer.kind, peer.rank, peer.wid
        self._drop_fd(peer)
        if kind == "rank":
            self._on_rank_lost(rank, peer)
        elif kind == "worker":
            self._resubmit_if_assigned(wid)
            self._forget_worker(wid)

    def _worker_teardown(self, peer: _Peer) -> None:
        """The old worker-thread ``finally``: close, resubmit, forget."""
        self._drop_fd(peer)
        self._resubmit_if_assigned(peer.wid)
        self._forget_worker(peer.wid)

    def _tick(self, now: float) -> None:
        """Deadline work between select() batches: peers that never said
        hello, and parked rendezvous requests (fulfil or expire)."""
        for peer in list(self._peers):
            if (
                peer.kind is None
                and peer.hello_deadline is not None
                and now > peer.hello_deadline
            ):
                self._drop_fd(peer)
        if not self._parked:
            return
        with self._changed:
            nregistered = len(self._rank_addresses)
        ready = nregistered >= self.config.server_ranks
        still_parked: List[Tuple[_Peer, ConnectionRequest, float]] = []
        for peer, request, deadline in self._parked:
            if peer not in self._peers:
                continue  # the worker died while waiting
            if ready:
                try:
                    peer.send(self._addressed_reply())
                except ConnectionLost:
                    self._worker_teardown(peer)
            elif now >= deadline:
                with self._changed:
                    self._errors.append(
                        f"only {nregistered} of {self.config.server_ranks} "
                        f"server ranks registered"
                    )
                    self._changed.notify_all()
                self._worker_teardown(peer)
            else:
                still_parked.append((peer, request, deadline))
        self._parked = still_parked

    def _teardown(self) -> None:
        for peer in list(self._peers) + list(self._detached):
            try:
                peer.sock.close()
            except OSError:
                pass
        self._peers.clear()
        self._detached.clear()
        try:
            self._sel.close()
        except OSError:
            pass
        for sock in (self._listener, self._waker_r, self._waker_w):
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def _register_rank(self, peer: _Peer, hello: dict) -> bool:
        rank = int(hello["rank"])
        peer.kind, peer.rank = "rank", rank
        with self._changed:
            self._note_rank_registration(rank, hello)
            self._rank_addresses[rank] = tuple(hello["address"])
            self._rank_conns[rank] = peer
            if self.supervisor is not None:
                self.supervisor.watch(rank, hello.get("pid"))
                # registration counts as liveness: a rank that hangs
                # before its first heartbeat must still look stale later
                self.supervisor.beat(rank, time.monotonic())
            self._changed.notify_all()
        try:
            peer.send({
                "op": "registered",
                # capability negotiation: senders only attach telemetry
                # payloads (v2 heartbeat frames) when we can ingest them
                "telemetry": self.telemetry is not None,
            })
        except ConnectionLost:
            self._peer_lost(peer)
            return False
        return True

    def _on_rank_frame(self, peer: _Peer, frame: Any) -> bool:
        rank = peer.rank
        if isinstance(frame, Heartbeat):
            if self.supervisor is not None:
                self.supervisor.beat(rank, time.monotonic())
            self._rank_last_beat[rank] = time.monotonic()
            if frame.metrics is not None and self.telemetry is not None:
                self.telemetry.ingest(frame.sender, frame.metrics)
            return True
        if isinstance(frame, dict) and frame.get("op") == "rank_state":
            with self._changed:
                self.rank_states[rank] = frame["state"]
                self.rank_maps[rank] = frame["maps"]
                self.rank_widths[rank] = frame["width"]
                if frame.get("channel_stats") is not None:
                    self.rank_channel_stats[rank] = frame["channel_stats"]
                self._event("rank_state", f"rank {rank} reported")
                if self.supervisor is not None:
                    # the rank now lingers (silent by design) to absorb
                    # respawn-requeued replays; stop watching its
                    # heartbeat
                    self.supervisor.policy.forget(rank)
                self._changed.notify_all()
            if self.supervisor is None:
                # unsupervised: a reported rank's eventual exit is
                # normal — stop reading it (its EOF must not be treated
                # as a loss) but keep the socket open as before
                self._detach(peer)
                return False
            # supervised: keep reading so a lingering rank's death is
            # still observed — replays of another rank's requeued groups
            # must have somewhere to land, so the corpse needs a
            # replacement like any other rank
            return True
        if isinstance(frame, dict) and frame.get("op") == "error":
            with self._changed:
                self._errors.append(
                    f"server rank {rank} failed:\n{frame['error']}"
                )
                self._changed.notify_all()
            self._detach(peer)
            return False
        if isinstance(frame, dict) and frame.get("op") == "autotune":
            # a rank finished its fold autotune probe: absorb the winning
            # (backend, nthreads, block_cells) plans into this process and
            # $REPRO_FOLD_AUTOTUNE so respawned / elastic processes
            # spawned from here inherit them and skip the probe
            from repro.kernels import parallel as _parallel

            _parallel.absorb_plans(frame.get("plans") or {})
            return True
        return True  # unknown rank frames are ignored, as before

    def _note_rank_registration(self, rank: int, hello: dict) -> None:
        """Respawn bookkeeping for a (re-)registering rank (lock held).

        A re-registration is the second half of the launcher protocol:
        the replacement process restored its checkpoint and told us which
        groups that state already contains (``finished``).  Every group
        the coordinator considers done or in flight that the restored
        state is missing lost data with the old process — requeue it;
        replay protection on the other ranks discards the duplicates.
        """
        generation = self._rank_generations.get(rank, -1) + 1
        self._rank_generations[rank] = generation
        if generation == 0:
            self._event("rank_registered", f"rank {rank} (pid {hello.get('pid')})")
            return
        self.rank_respawns.append(rank)
        self._m_rank_respawns.inc(rank=str(rank))
        self._event(
            "rank_respawned",
            f"rank {rank} generation {generation} (pid {hello.get('pid')})",
        )
        restored = set(hello.get("finished", ()))
        at_risk = self.done | set(self._assigned.values())
        requeue = sorted(g for g in at_risk if g not in restored)
        for gid in requeue:
            self.done.discard(gid)
            if gid not in self._pending:
                self._pending.append(gid)
        # in-flight attempts of requeued groups may still "complete" on
        # pre-crash credits the restored rank never integrated; mark them
        # stale so their group_done cannot settle the group
        for wid, gid in self._assigned.items():
            if gid in requeue:
                self._stale_attempts.add((wid, gid))
        self.requeued_after_respawn.extend(requeue)
        if requeue:
            self._m_requeued_respawn.inc(len(requeue))
            self._event(
                "requeued_after_respawn",
                f"rank {rank} restore missed groups {requeue}",
            )
        # whether or not anything was requeued, the replacement has never
        # seen a finalize — arm the wait loop to send it again (lingering
        # ranks ignore the repeat)
        self._finalized = False

    def _on_rank_lost(self, rank: int, conn: Any) -> None:
        """A server rank's control connection died: abort (no supervisor)
        or kill-and-respawn (Sec. 4.2.3).

        With supervision this also covers a *lingering* rank — one whose
        state is already in.  Its death would strand the re-sends of any
        later respawn-requeued group, so it gets a replacement too; the
        collected state is dropped and the replacement (restoring the
        final checkpoint) re-reports an identical one.
        """
        with self._changed:
            if self._closed or len(self.rank_states) == self.config.server_ranks:
                # shutting down, or every state is in (the study is over
                # and wait() is about to close us): nothing to recover
                self._changed.notify_all()
                return
            if self.supervisor is None and rank in self.rank_states:
                self._changed.notify_all()
                return  # unsupervised: a reported rank's exit is normal
            if self._rank_conns.get(rank) is not conn:
                return  # superseded by a newer registration
            del self._rank_conns[rank]
            # block new rendezvous replies until the replacement publishes
            # its fresh data address
            self._rank_addresses.pop(rank, None)
            supervisor = self.supervisor
            if supervisor is None:
                self._errors.append(
                    f"server rank {rank} disconnected before reporting its state"
                )
                self._changed.notify_all()
                return
            self.rank_states.pop(rank, None)
            self.rank_maps.pop(rank, None)
            self.rank_widths.pop(rank, None)
            supervisor.policy.forget(rank)
            self._changed.notify_all()
        self._respawn_lost_rank(rank)

    def _respawn_lost_rank(self, rank: int) -> None:
        """Kill-and-respawn one dead rank (no locks held)."""
        try:
            self.supervisor.respawn(rank)
        except Exception as exc:  # budget exceeded or the spawner failed
            with self._changed:
                self._errors.append(
                    f"server rank {rank} died and could not be respawned: {exc}"
                )
                self._changed.notify_all()

    # ------------------------------------------------------------------ #
    def _register_worker(self, peer: _Peer, hello: dict) -> bool:
        with self._changed:
            wid = self._next_worker_id
            self._next_worker_id += 1
            self._worker_pids[wid] = hello.get("pid")
            self._worker_names[wid] = str(hello.get("worker", f"worker-{wid}"))
            self._worker_conns[wid] = peer
            self._worker_elastic[wid] = bool(hello.get("elastic"))
            self._last_seen[wid] = time.monotonic()
        peer.kind, peer.wid = "worker", wid
        name = self._worker_names[wid]
        self._event("worker_joined", name + (" (elastic)" if hello.get("elastic") else ""))
        try:
            peer.send({
                "op": "welcome", "worker_id": wid,
                "telemetry": self.telemetry is not None,
            })
        except ConnectionLost:
            self._worker_teardown(peer)
            return False
        return True

    def _on_worker_frame(self, peer: _Peer, frame: Any) -> bool:
        wid = peer.wid
        name = self._worker_names.get(wid, str(wid))
        self._last_seen[wid] = time.monotonic()
        try:
            if isinstance(frame, Heartbeat):
                if frame.metrics is not None and self.telemetry is not None:
                    self.telemetry.ingest(frame.sender, frame.metrics)
                return True
            if isinstance(frame, ConnectionRequest):
                if frame.ncells != self.config.ncells:
                    raise StudyAborted(
                        f"group {frame.group_id} has {frame.ncells} cells, "
                        f"study configured {self.config.ncells}"
                    )
                with self._changed:
                    ready = (
                        len(self._rank_addresses) >= self.config.server_ranks
                    )
                if ready:
                    peer.send(self._addressed_reply())
                else:
                    # the handshake waits until every rank has registered
                    # its data address — a group can only open channels
                    # to a complete server.  Parked, not blocked: the
                    # loop's tick fulfils or expires it.
                    self._parked.append(
                        (peer, frame, time.monotonic() + self.worker_timeout)
                    )
                return True
            if not isinstance(frame, dict):
                raise StudyAborted(f"unexpected frame from {name}: {frame!r}")
            op = frame.get("op")
            if op == "next":
                reply, kill_pid = self._assign(wid)
                peer.send(reply)
                if kill_pid is not None:
                    os.kill(kill_pid, signal.SIGKILL)  # fault-injection hook
            elif op == "group_done":
                self._mark_done(wid, int(frame["group_id"]))
            elif op == "group_interrupted":
                # the worker aborted the group because a server rank
                # died under it; requeue without charging the group's
                # retry budget (the group is not at fault)
                self._requeue_interrupted(wid, int(frame["group_id"]))
            elif op == "error":
                with self._changed:
                    self._errors.append(f"worker {name} failed:\n{frame['error']}")
                    self._changed.notify_all()
                self._worker_teardown(peer)
                return False
            elif op == "bye":
                if frame.get("channel_stats") is not None:
                    self.worker_channel_stats[name] = frame["channel_stats"]
                self._worker_teardown(peer)
                return False
            else:
                raise StudyAborted(f"unknown op from {name}: {op!r}")
            return True
        except ConnectionLost:
            self._worker_teardown(peer)
            return False
        except StudyAborted as exc:
            with self._changed:
                self._errors.append(str(exc))
                self._changed.notify_all()
            self._worker_teardown(peer)
            return False

    def _forget_worker(self, wid: int) -> None:
        """Drop a departed worker's liveness/speed state so elastic
        active-worker counts and the fleet EWMA describe only the living."""
        with self._changed:
            departed = wid in self._worker_conns
            self._worker_conns.pop(wid, None)
            self._last_seen.pop(wid, None)
            if departed and not self._closed:
                self._event(
                    "worker_left", str(self._worker_names.get(wid, wid))
                )
            elastic = self._worker_elastic.pop(wid, False)
            retired = wid in self._retired_wids
            self._retired_wids.discard(wid)
            if self.policy is not None:
                self.policy.worker_left(wid)
            self._changed.notify_all()
        if elastic and not retired and self.pool is not None:
            self.pool.worker_lost()

    def _addressed_reply(self) -> AddressedReply:
        """Rendezvous reply once the rank address table is complete."""
        with self._changed:
            addresses = tuple(
                self._rank_addresses[r] for r in range(self.config.server_ranks)
            )
        return AddressedReply(
            reply=ConnectionReply(
                nranks_server=self.partition.nranks,
                offsets=tuple(int(o) for o in self.partition.offsets),
            ),
            addresses=addresses,
        )

    def _assign(self, wid: int):
        """Next work item for a worker: a group, a speculative re-run of
        a straggling group, a retire order (elastic drain), idle backoff,
        or done."""
        with self._changed:
            now = time.monotonic()
            if (
                self.pool is not None
                and self._worker_elastic.get(wid)
                and wid not in self._retired_wids
                and self.pool.offer_retire(
                    len(self._pending), len(self._worker_conns), now
                )
            ):
                # elastic ramp-down: the queue is drained below the low
                # water mark, so this extra worker leaves instead of
                # idling (its reader thread cleans up on the bye/close)
                self._retired_wids.add(wid)
                self.retired_workers.append(wid)
                self._event(
                    "worker_retired",
                    f"{self._worker_names.get(wid, wid)} (queue drained)",
                )
                self._changed.notify_all()
                return {"op": "retire"}, None
            if self._groups_settled():
                # workers may only leave once every rank has shipped its
                # state: a rank dying during finalize requeues groups, and
                # someone has to still be around to run them
                if len(self.rank_states) == self.config.server_ranks:
                    return {"op": "done"}, None
                return {"op": "idle", "delay": 0.1}, None
            if not self._pending:
                gid = self._speculation_candidate(wid, now)
                if gid is not None:
                    # straggler re-execution: hand the overdue group to
                    # this idle worker too; first group_done wins
                    self._assigned[wid] = gid
                    self._assign_count += 1
                    self._speculative_attempts.add((wid, gid))
                    self.speculated.append(gid)
                    self.policy.record_speculation(gid)
                    self.policy.assigned(wid, gid, now)
                    self._m_spec_fired.inc()
                    self._start_attempt(wid, gid)
                    self._event(
                        "speculation",
                        f"group {gid} re-issued to "
                        f"{self._worker_names.get(wid, wid)}",
                    )
                    self._changed.notify_all()
                    return {"op": "group", "group_id": gid}, None
                # other workers still hold groups that may yet be
                # resubmitted; stay around
                return {"op": "idle", "delay": 0.1}, None
            if self.policy is not None and self.policy.should_hold_back(
                wid, len(self._pending)
            ):
                # work stealing: this worker is demonstrably slow and the
                # queue tail fits in the fast workers' hands — defer it
                self._m_holdbacks.inc()
                return {"op": "idle", "delay": 0.1}, None
            gid = self._pending.popleft()
            self._assigned[wid] = gid
            if self.policy is not None:
                self.policy.assigned(wid, gid, now)
            self._start_attempt(wid, gid)
            self._assign_count += 1
            kill_pid = None
            if (
                self.fault_kill_after is not None
                and self._assign_count == self.fault_kill_after
                and self._worker_pids.get(wid)
            ):
                kill_pid = self._worker_pids[wid]
            self._changed.notify_all()
            return {"op": "group", "group_id": gid}, kill_pid

    def _speculation_candidate(self, wid: int, now: float) -> Optional[int]:
        """Straggling group worth re-issuing to idle worker ``wid`` (lock
        held).  Stale attempts and already-done groups are not worth a
        second copy, so they are filtered before the policy sees them."""
        if self.policy is None:
            return None
        candidates = {
            w: g
            for w, g in self._assigned.items()
            if (w, g) not in self._stale_attempts and g not in self.done
        }
        return self.policy.speculation_candidate(wid, candidates, now)

    def _mark_done(self, wid: int, gid: int) -> None:
        with self._changed:
            was_mine = self._assigned.get(wid) == gid
            if was_mine:
                del self._assigned[wid]
            speculative = (wid, gid) in self._speculative_attempts
            self._speculative_attempts.discard((wid, gid))
            if (wid, gid) in self._stale_attempts:
                # this attempt was in flight when a rank respawned: its
                # "completion" may rest on credits the dead rank never
                # integrated, so only the requeued copy settles the group
                self._stale_attempts.discard((wid, gid))
                self._finish_attempt(wid, gid, "stale")
                if self.policy is not None:
                    self.policy.discarded(wid, gid)
            elif gid not in self._pending:
                # a respawn may have requeued this group while the worker
                # was finishing it; the queued duplicate still runs (the
                # respawned rank needs the re-sent data), so the group is
                # not done yet
                first = gid not in self.done
                self.done.add(gid)
                if first:
                    self._m_groups_done.inc()
                if first and speculative:
                    self._m_spec_won.inc()
                self._finish_attempt(
                    wid, gid, "speculation-won" if speculative else "done"
                )
                if self.policy is not None and was_mine:
                    self.policy.completed(wid, gid, time.monotonic())
                    if first and speculative:
                        self.policy.record_win(gid)
                # first completion wins: settle every other running copy
                # of this group.  The winner's flush proves each rank
                # credited (and pre-finalize drains) every byte, so the
                # statistics already contain the group; the losers'
                # residual frames are replay-discarded during the ranks'
                # linger phase.  No forget broadcast — the losers' staged
                # partials are orphaned (group, timestep) entries the
                # discard path drops on its own.
                for other, g in list(self._assigned.items()):
                    if g == gid and (other, gid) not in self._stale_attempts:
                        del self._assigned[other]
                        self._speculative_attempts.discard((other, gid))
                        self._finish_attempt(other, gid, "settled-by-duplicate")
                        if self.policy is not None:
                            self.policy.discarded(other, gid)
            else:
                # requeued while finishing: the completion settles nothing
                # (the queued copy will), so only stop the attempt's clock
                self._finish_attempt(wid, gid, "superseded-by-requeue")
                if self.policy is not None:
                    self.policy.discarded(wid, gid)
            self._changed.notify_all()

    def _requeue_interrupted(self, wid: int, gid: int) -> None:
        """A rank died under a running group: re-run it, free of charge.

        Unlike :meth:`_resubmit_if_assigned` this does not count against
        ``max_group_retries`` — the group did nothing wrong — and it
        dedupes against the respawn requeue, which may have already put
        the same group back in the queue.
        """
        with self._changed:
            if self._assigned.get(wid) == gid:
                del self._assigned[wid]
            if self.policy is not None:
                self.policy.discarded(wid, gid)
            self._speculative_attempts.discard((wid, gid))
            self.interrupted.append(gid)
            self._m_interrupted.inc()
            self._finish_attempt(wid, gid, "interrupted")
            self._event(
                "group_interrupted",
                f"group {gid} aborted on "
                f"{self._worker_names.get(wid, wid)} (rank died under it)",
            )
            stale = (wid, gid) in self._stale_attempts
            self._stale_attempts.discard((wid, gid))
            live_duplicate = gid in self._assigned.values()
            # a stale attempt needs no requeue (the respawn already queued
            # a copy) and neither does a speculation sibling (the other
            # copy is still running and settles the group itself)
            if (
                not stale
                and not live_duplicate
                and gid not in self.done
                and gid not in self._pending
            ):
                self._pending.append(gid)
            self._changed.notify_all()
        if stale or live_duplicate:
            # NO forget broadcast here: the requeued/surviving copy may
            # already be mid-stream, and dropping its staged partials
            # would leave a (group, timestep) forever incomplete on the
            # surviving ranks
            return
        for rank, conn in list(self._rank_conns.items()):
            try:
                conn.send({"op": "forget", "group_id": gid})
            except ConnectionLost:
                pass

    def _resubmit_if_assigned(self, wid: int) -> None:
        """Sec. 4.2.2 fault path: the worker died holding a group."""
        with self._changed:
            gid = self._assigned.pop(wid, None)
            if gid is not None:
                self._finish_attempt(wid, gid, "worker-lost")
                if self.policy is not None:
                    self.policy.discarded(wid, gid)
                self._speculative_attempts.discard((wid, gid))
            if gid is None or gid in self.done:
                self._changed.notify_all()
                return
            if gid in self._assigned.values():
                # a speculation sibling still runs this group; its stream
                # must keep landing, so no forget broadcast — and no
                # retry charge or requeue for a death the group survives
                self._stale_attempts.discard((wid, gid))
                self._changed.notify_all()
                return
            if (wid, gid) in self._stale_attempts or gid in self._pending:
                # a rank respawn already requeued this group; the queued
                # copy will re-run it — don't double-queue or charge the
                # group's retry budget for a death that isn't its fault
                self._stale_attempts.discard((wid, gid))
                self._changed.notify_all()
                return
            self._retries[gid] = self._retries.get(gid, 0) + 1
            name = self._worker_names.get(wid, wid)
            if self._retries[gid] > self.config.max_group_retries:
                self.abandoned.append(gid)
                self._event(
                    "group_abandoned",
                    f"group {gid} out of retries after {name} died",
                )
            else:
                self.resubmitted.append(gid)
                self._pending.append(gid)
                self._m_resubmits.inc()
                self._event(
                    "group_resubmitted", f"group {gid} requeued ({name} died)"
                )
            self._changed.notify_all()
        # tell the ranks to drop the dead instance's staged partials;
        # integrated timesteps stay and replay protection discards their
        # re-sends, so the resubmitted run is exact
        for rank, conn in list(self._rank_conns.items()):
            try:
                conn.send({"op": "forget", "group_id": gid})
            except ConnectionLost:
                pass
