"""``repro.net``: socket-based distributed transport (the ZeroMQ layer).

The paper deploys Melissa as independent OS processes spread over a
cluster: simulation groups stream field data to server ranks over
dynamically established ZeroMQ push sockets (Sec. 4.1.3).  This package
is the stdlib-only TCP equivalent of that layer:

* :mod:`repro.net.framing` — length-prefixed binary frames for the wire
  messages (:class:`~repro.transport.message.FieldMessage` payloads are
  sent and received zero-copy via buffer views) plus a pickled control
  frame for the coordinator protocol;
* :mod:`repro.net.channel` — :class:`SocketChannel` /
  :class:`DataListener`: per-(worker, server-rank) data connections with
  credit-based flow control reproducing the dual high-water-mark
  semantics ("communications only become blocking when both buffers are
  full") and full :class:`~repro.transport.channel.ChannelStats`
  accounting;
* :mod:`repro.net.coordinator` — the rank-0 rendezvous endpoint: server
  ranks register their data addresses, joining groups receive the server
  partition + address table and open direct channels only to the ranks
  their cells intersect; also the study work queue with fault-tolerant
  group resubmission;
* :mod:`repro.net.serve` / :mod:`repro.net.worker` — the process mains
  behind ``repro serve`` / ``repro work`` and the loopback
  :class:`~repro.runtime.distributed.DistributedRuntime`.
"""

from repro.net.channel import DataListener, SocketChannel
from repro.net.coordinator import Coordinator, StudyAborted
from repro.net.framing import DialTimeout, FrameConnection, connect_with_retry
from repro.net.supervisor import PoolSupervisor, RankSupervisor

__all__ = [
    "Coordinator",
    "DataListener",
    "DialTimeout",
    "FrameConnection",
    "PoolSupervisor",
    "RankSupervisor",
    "SocketChannel",
    "StudyAborted",
    "connect_with_retry",
]
