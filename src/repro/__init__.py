"""repro — a faithful Python reproduction of Melissa (SC'17).

Melissa computes *ubiquitous* Sobol' sensitivity indices — a value for
every mesh cell and every timestep — over large multi-run simulation
ensembles **without writing any intermediate files**: an in-transit
parallel server updates one-pass statistics as results stream out of the
running simulations, then discards the data.

Quick start::

    from repro import SensitivityStudy
    from repro.sobol import IshigamiFunction

    fn = IshigamiFunction()
    study = SensitivityStudy.for_function(fn, ngroups=2000, seed=1)
    results = study.run()
    print(results.first_order[:, 0, 0])   # ~ fn.first_order

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.stats`     — one-pass moments/covariance (Welford, Pebay)
- :mod:`repro.sampling`  — parameter laws + pick-freeze designs
- :mod:`repro.sobol`     — iterative Martinez estimator + references
- :mod:`repro.mesh`      — structured meshes + block partitioning
- :mod:`repro.solver`    — the CFD substrate (tube-bundle dye transport)
- :mod:`repro.transport` — ZeroMQ-like bounded channels, N x M routing
- :mod:`repro.simmpi`    — in-process MPI subset
- :mod:`repro.scheduler` — SLURM-like batch scheduler (virtual time)
- :mod:`repro.core`      — Melissa server / clients / launcher
- :mod:`repro.runtime`   — sequential (deterministic) + threaded drivers
- :mod:`repro.faults`    — fault-injection plans
- :mod:`repro.perfmodel` — calibrated model of the paper's Curie campaign
- :mod:`repro.report`    — ASCII field maps and tables
"""

from repro.study import SensitivityStudy
from repro.core import StudyConfig
from repro.core.results import StudyResults

__version__ = "1.0.0"

__all__ = ["SensitivityStudy", "StudyConfig", "StudyResults", "__version__"]
