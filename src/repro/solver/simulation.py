"""One ensemble member: a timestep-iterated scalar transport run.

A :class:`ScalarSimulation` is the black box ``f(x, t, X1..Xp)`` of the
paper's Eq. 4: constructed with a fixed parameter set, it produces one
flat concentration field per output timestep, in increasing timestep
order (the fault-tolerance protocol relies on that ordering, Sec. 4.2.2).

The Melissa client drives it step by step; the classical baseline instead
writes each field to disk via :mod:`repro.solver.writer`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.solver.advect import AdvectionDiffusion


class ScalarSimulation:
    """Stepwise dye-transport run on the case's frozen flow.

    Iterating yields ``(timestep_index, flat_field)`` pairs for timesteps
    ``0 .. ntimesteps-1``; the field is the concentration *after*
    advancing one output interval (C-ordered flat copy, safe to retain).
    """

    def __init__(
        self,
        integrator: AdvectionDiffusion,
        inlet_profile_fn: Callable[[float], np.ndarray],
        ntimesteps: int,
        output_interval: float,
        simulation_id: int = 0,
    ):
        if ntimesteps < 1:
            raise ValueError("ntimesteps must be >= 1")
        if output_interval <= 0:
            raise ValueError("output_interval must be positive")
        self.integrator = integrator
        self.inlet_profile_fn = inlet_profile_fn
        self.ntimesteps = int(ntimesteps)
        self.output_interval = float(output_interval)
        self.simulation_id = int(simulation_id)
        self._c = integrator.initial_condition()
        self._t = 0.0
        self._next_step = 0

    # ------------------------------------------------------------------ #
    @property
    def ncells(self) -> int:
        return self.integrator.mesh.ncells

    @property
    def current_timestep(self) -> int:
        return self._next_step

    @property
    def finished(self) -> bool:
        return self._next_step >= self.ntimesteps

    def advance(self) -> Tuple[int, np.ndarray]:
        """Advance one output interval; return (timestep, flat field copy)."""
        if self.finished:
            raise RuntimeError("simulation already finished")
        self._t = self.integrator.step(
            self._c, self.output_interval, self.inlet_profile_fn, self._t
        )
        step = self._next_step
        self._next_step += 1
        return step, self._c.ravel().copy()

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        while not self.finished:
            yield self.advance()

    def run_to_completion(self) -> np.ndarray:
        """Run all remaining steps, returning the (ntimesteps, ncells) stack.

        Only used by validation tests and the classical baseline — the
        whole point of Melissa is to never materialize this array for a
        full study.
        """
        fields = np.empty((self.ntimesteps - self._next_step, self.ncells))
        for row, (_, field) in enumerate(self):
            fields[row] = field
        return fields
