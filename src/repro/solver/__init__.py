"""CFD substrate standing in for Code_Saturne (paper Sec. 5.1-5.2).

The paper's experiment freezes the velocity/pressure/turbulence fields of a
converged tube-bundle flow and solves *only* the scalar convection-diffusion
equation for a dye concentration, per simulation, with 6 varying injection
parameters.  We reproduce exactly that structure:

* :mod:`repro.solver.flow` — a steady, discretely divergence-free velocity
  field from a streamfunction Laplace solve around the tube bundle
  (the "pre-run 4000-timestep simulation" of Sec. 5.2, collapsed to a
  linear solve since only the steady state is ever used);
* :mod:`repro.solver.advect` — an explicit upwind finite-volume
  convection-diffusion integrator for the dye scalar, fully vectorized;
* :mod:`repro.solver.tube_bundle` — the use case: geometry, the six
  injection parameters, and the per-member :class:`ScalarSimulation`;
* :mod:`repro.solver.writer` — an EnSight-Gold-like per-timestep file
  writer plus a postmortem reader, used ONLY by the "classical" baseline
  that Melissa's in-transit path is compared against.
"""

from repro.solver.flow import StreamfunctionFlow, solve_streamfunction
from repro.solver.advect import AdvectionDiffusion
from repro.solver.advect3d import AdvectionDiffusion3D
from repro.solver.tube_bundle import (
    TubeBundleCase,
    InjectionParameters,
    TUBE_BUNDLE_PARAMETER_NAMES,
    tube_bundle_parameter_space,
)
from repro.solver.tube_bundle3d import TubeBundleCase3D
from repro.solver.simulation import ScalarSimulation
from repro.solver.writer import EnsightLikeWriter, PostmortemReader

__all__ = [
    "StreamfunctionFlow",
    "solve_streamfunction",
    "AdvectionDiffusion",
    "AdvectionDiffusion3D",
    "TubeBundleCase",
    "TubeBundleCase3D",
    "InjectionParameters",
    "TUBE_BUNDLE_PARAMETER_NAMES",
    "tube_bundle_parameter_space",
    "ScalarSimulation",
    "EnsightLikeWriter",
    "PostmortemReader",
]
