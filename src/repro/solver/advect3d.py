"""3-D convection-diffusion on an extruded tube-bundle flow.

The paper's mesh is 3-D (9.6M hexahedra) but its tube-bundle flow is
essentially quasi-2-D: water moves in the channel plane, and the spanwise
direction mixes by diffusion.  This integrator models exactly that: the
frozen (u, v) face velocities of the 2-D streamfunction solve are
extruded along z (w = 0, still discretely divergence-free), the dye is a
full (nx, ny, nz) hexahedral field, and diffusion acts in all three
directions with zero-flux side walls.

The per-substep cost is a handful of fused NumPy slice operations over
the 3-D array — the 2-D face velocities broadcast over the z axis, no
Python loops over layers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.mesh import StructuredMesh
from repro.solver.flow import StreamfunctionFlow


class AdvectionDiffusion3D:
    """Explicit upwind FV integrator for the extruded 3-D dye field.

    Parameters
    ----------
    flow:
        The 2-D frozen flow (provides the channel-plane face velocities
        and the solid mask, extruded along z).
    nz, depth:
        Spanwise cells and physical depth.
    diffusivity:
        Isotropic diffusion coefficient.
    """

    def __init__(
        self,
        flow: StreamfunctionFlow,
        nz: int,
        depth: float = 1.0,
        diffusivity: float = 1e-3,
        cfl: float = 0.45,
    ):
        if nz < 1:
            raise ValueError("nz must be >= 1")
        if depth <= 0:
            raise ValueError("depth must be positive")
        if diffusivity < 0:
            raise ValueError("diffusivity must be >= 0")
        if not 0 < cfl <= 1.0:
            raise ValueError("cfl must be in (0, 1]")
        self.flow = flow
        nx, ny = flow.mesh.dims
        self.mesh = StructuredMesh(
            dims=(nx, ny, nz),
            lengths=(flow.mesh.lengths[0], flow.mesh.lengths[1], depth),
        )
        self.diffusivity = float(diffusivity)
        self.cfl = float(cfl)
        self.dx, self.dy, self.dz = self.mesh.spacing
        # extruded masks/velocities: broadcast (nx, ny) -> (nx, ny, nz)
        self.solid = np.repeat(flow.solid[:, :, np.newaxis], nz, axis=2)
        self.fluid = ~self.solid
        self._ue_pos = np.maximum(flow.u_east, 0.0)[:, :, np.newaxis]
        self._ue_neg = np.minimum(flow.u_east, 0.0)[:, :, np.newaxis]
        self._vn_pos = np.maximum(flow.v_north, 0.0)[:, :, np.newaxis]
        self._vn_neg = np.minimum(flow.v_north, 0.0)[:, :, np.newaxis]
        fluid2d = ~flow.solid
        self._diff_x = (fluid2d[:-1, :] & fluid2d[1:, :])[:, :, np.newaxis]
        self._diff_y = (fluid2d[:, :-1] & fluid2d[:, 1:])[:, :, np.newaxis]
        # z faces conduct wherever the column is fluid (solid is z-uniform)
        self._diff_z = fluid2d[:, :, np.newaxis]
        self.stable_dt = self._compute_stable_dt()

    # ------------------------------------------------------------------ #
    def _compute_stable_dt(self) -> float:
        adv_rate = (
            np.abs(self.flow.u_east).max() / self.dx
            + np.abs(self.flow.v_north).max() / self.dy
        )
        dt_adv = self.cfl / adv_rate if adv_rate > 0 else np.inf
        if self.diffusivity > 0:
            dt_diff = 0.5 / (
                2.0
                * self.diffusivity
                * (1.0 / self.dx**2 + 1.0 / self.dy**2 + 1.0 / self.dz**2)
            )
        else:
            dt_diff = np.inf
        dt = min(dt_adv, dt_diff)
        if not np.isfinite(dt):
            raise ValueError("quiescent flow with zero diffusivity: dt unbounded")
        return float(dt)

    # ------------------------------------------------------------------ #
    def rhs_fluxes(self, c: np.ndarray, inlet_profile: np.ndarray) -> np.ndarray:
        """dc/dt from advective + diffusive fluxes; inlet profile (ny, nz)."""
        nx, ny, nz = self.mesh.dims

        flux_x = np.empty((nx + 1, ny, nz))
        flux_x[1:-1] = self._ue_pos[1:-1] * c[:-1] + self._ue_neg[1:-1] * c[1:]
        flux_x[0] = self._ue_pos[0] * inlet_profile + self._ue_neg[0] * c[0]
        flux_x[-1] = self._ue_pos[-1] * c[-1]

        flux_y = np.zeros((nx, ny + 1, nz))
        flux_y[:, 1:-1] = (
            self._vn_pos[:, 1:-1] * c[:, :-1] + self._vn_neg[:, 1:-1] * c[:, 1:]
        )

        rate = -(
            (flux_x[1:] - flux_x[:-1]) / self.dx
            + (flux_y[:, 1:] - flux_y[:, :-1]) / self.dy
        )

        if self.diffusivity > 0:
            gx = np.zeros((nx + 1, ny, nz))
            gx[1:-1] = np.where(self._diff_x, (c[1:] - c[:-1]) / self.dx, 0.0)
            gy = np.zeros((nx, ny + 1, nz))
            gy[:, 1:-1] = np.where(
                self._diff_y, (c[:, 1:] - c[:, :-1]) / self.dy, 0.0
            )
            gz = np.zeros((nx, ny, nz + 1))
            gz[:, :, 1:-1] = np.where(
                self._diff_z, (c[:, :, 1:] - c[:, :, :-1]) / self.dz, 0.0
            )
            rate += self.diffusivity * (
                (gx[1:] - gx[:-1]) / self.dx
                + (gy[:, 1:] - gy[:, :-1]) / self.dy
                + (gz[:, :, 1:] - gz[:, :, :-1]) / self.dz
            )

        rate[self.solid] = 0.0
        return rate

    def step(
        self,
        c: np.ndarray,
        dt: float,
        inlet_profile_fn: Callable[[float], np.ndarray],
        t: float,
    ) -> float:
        """Advance ``c`` in place by ``dt`` with stable substepping."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        remaining = dt
        while remaining > 1e-15:
            sub = min(self.stable_dt, remaining)
            c += sub * self.rhs_fluxes(c, inlet_profile_fn(t))
            t += sub
            remaining -= sub
        return t

    def initial_condition(self) -> np.ndarray:
        return np.zeros(self.mesh.dims)

    def total_dye(self, c: np.ndarray) -> float:
        return float(c[self.fluid].sum() * self.mesh.cell_volume)
