"""Explicit upwind finite-volume convection-diffusion for the dye scalar.

Solves, on the frozen flow of :mod:`repro.solver.flow`,

    dc/dt + div(u c) = D lap(c)

with first-order upwind advection on face-normal velocities, explicit
Euler in time, and conservative two-point diffusion fluxes restricted to
fluid-fluid faces (zero-flux walls and obstacles).  The inlet carries a
Dirichlet dye profile ``c_in(y, t)`` advected in with the (positive) inlet
velocity; the outlet is upwinded from the interior (outflow).

Everything is vectorized over the (nx, ny) grid — the per-timestep cost is
a handful of fused slice operations (guide: no Python loops over cells,
in-place updates where the algebra allows).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solver.flow import StreamfunctionFlow


class AdvectionDiffusion:
    """Time integrator for the dye concentration on a frozen flow.

    Parameters
    ----------
    flow:
        Frozen velocity field (provides mesh, face velocities, solid mask).
    diffusivity:
        Scalar diffusion coefficient D (molecular + frozen turbulent).
    cfl:
        Advective CFL safety factor for the internal substep size.
    """

    def __init__(
        self,
        flow: StreamfunctionFlow,
        diffusivity: float = 1e-3,
        cfl: float = 0.45,
    ):
        if diffusivity < 0:
            raise ValueError("diffusivity must be >= 0")
        if not 0 < cfl <= 1.0:
            raise ValueError("cfl must be in (0, 1]")
        self.flow = flow
        self.mesh = flow.mesh
        self.diffusivity = float(diffusivity)
        self.cfl = float(cfl)
        nx, ny = self.mesh.dims
        self.dx, self.dy = self.mesh.spacing
        self.solid = flow.solid
        self.fluid = ~flow.solid

        # positive/negative parts of face velocities, fixed once
        self._ue_pos = np.maximum(flow.u_east, 0.0)
        self._ue_neg = np.minimum(flow.u_east, 0.0)
        self._vn_pos = np.maximum(flow.v_north, 0.0)
        self._vn_neg = np.minimum(flow.v_north, 0.0)

        # diffusion masks: only fluid-fluid interior faces conduct
        self._diff_x = self.fluid[:-1, :] & self.fluid[1:, :]  # (nx-1, ny)
        self._diff_y = self.fluid[:, :-1] & self.fluid[:, 1:]  # (nx, ny-1)

        self.stable_dt = self._compute_stable_dt()

    # ------------------------------------------------------------------ #
    def _compute_stable_dt(self) -> float:
        """Largest explicit-Euler-stable substep (advection + diffusion)."""
        adv_rate = (
            np.abs(self.flow.u_east).max() / self.dx
            + np.abs(self.flow.v_north).max() / self.dy
        )
        dt_adv = self.cfl / adv_rate if adv_rate > 0 else np.inf
        if self.diffusivity > 0:
            dt_diff = 0.5 / (
                2.0 * self.diffusivity * (1.0 / self.dx**2 + 1.0 / self.dy**2)
            )
        else:
            dt_diff = np.inf
        dt = min(dt_adv, dt_diff)
        if not np.isfinite(dt):
            raise ValueError("quiescent flow with zero diffusivity: dt unbounded")
        return float(dt)

    # ------------------------------------------------------------------ #
    def rhs_fluxes(
        self, c: np.ndarray, inlet_profile: np.ndarray
    ) -> np.ndarray:
        """Net flux divergence -> dc/dt array (before the dt multiply)."""
        nx, ny = self.mesh.dims
        dx, dy = self.dx, self.dy

        # ---- advective fluxes through vertical faces (per unit depth) ----
        # interior east faces i=1..nx-1 between cells i-1 and i
        flux_x = np.empty((nx + 1, ny))
        flux_x[1:-1, :] = (
            self._ue_pos[1:-1, :] * c[:-1, :] + self._ue_neg[1:-1, :] * c[1:, :]
        )
        # inlet face: upwind value is the injected profile (u >= 0 there)
        flux_x[0, :] = (
            self._ue_pos[0, :] * inlet_profile + self._ue_neg[0, :] * c[0, :]
        )
        # outlet face: upwind from the interior on outflow
        flux_x[-1, :] = self._ue_pos[-1, :] * c[-1, :]  # no backflow dye

        # ---- advective fluxes through horizontal faces ----
        flux_y = np.zeros((nx, ny + 1))
        flux_y[:, 1:-1] = (
            self._vn_pos[:, 1:-1] * c[:, :-1] + self._vn_neg[:, 1:-1] * c[:, 1:]
        )
        # walls (j=0 and j=ny) carry zero normal velocity by construction

        rate = -(
            (flux_x[1:, :] - flux_x[:-1, :]) / dx
            + (flux_y[:, 1:] - flux_y[:, :-1]) / dy
        )

        # ---- diffusive fluxes (two-point, fluid-fluid faces only) ----
        if self.diffusivity > 0:
            gx = np.zeros((nx + 1, ny))
            gx[1:-1, :] = np.where(
                self._diff_x, (c[1:, :] - c[:-1, :]) / dx, 0.0
            )
            gy = np.zeros((nx, ny + 1))
            gy[:, 1:-1] = np.where(
                self._diff_y, (c[:, 1:] - c[:, :-1]) / dy, 0.0
            )
            rate += self.diffusivity * (
                (gx[1:, :] - gx[:-1, :]) / dx + (gy[:, 1:] - gy[:, :-1]) / dy
            )

        rate[self.solid] = 0.0
        return rate

    def step(
        self,
        c: np.ndarray,
        dt: float,
        inlet_profile_fn: Callable[[float], np.ndarray],
        t: float,
    ) -> float:
        """Advance ``c`` in place by ``dt`` (substepping for stability).

        Returns the new physical time.  ``inlet_profile_fn(t)`` must return
        the (ny,) dye concentration profile applied at the inlet at time t.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        remaining = dt
        while remaining > 1e-15:
            sub = min(self.stable_dt, remaining)
            profile = inlet_profile_fn(t)
            c += sub * self.rhs_fluxes(c, profile)
            t += sub
            remaining -= sub
        return t

    def initial_condition(self) -> np.ndarray:
        """Zero dye everywhere (clean channel)."""
        return np.zeros(self.mesh.dims)

    def total_dye(self, c: np.ndarray) -> float:
        """Integral of c over fluid cells (conservation diagnostics)."""
        return float(c[self.fluid].sum() * self.mesh.cell_volume)
