"""EnSight-Gold-like per-timestep output, for the *classical* baseline only.

The paper's comparison point ("classical" in Fig. 6) runs every simulation
with the Code_Saturne EnSight Gold writer pushing each timestep to the
Lustre filesystem, then reads the whole ensemble back to compute the
statistics postmortem.  This module provides the equivalent: a binary
per-(simulation, timestep) file writer with byte accounting, and a
postmortem reader that streams the files back for a two-pass analysis.

The in-transit path never imports this module — that is the point.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterator, List, Tuple

import numpy as np

_MAGIC = b"RPRO"
_HEADER = struct.Struct("<4sqqq")  # magic, simulation_id, timestep, ncells


class EnsightLikeWriter:
    """Writes one binary file per (simulation, timestep) under a case dir."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.bytes_written = 0
        self.files_written = 0

    def path_for(self, simulation_id: int, timestep: int) -> Path:
        return self.directory / f"sim{simulation_id:06d}_step{timestep:05d}.bin"

    def write(self, simulation_id: int, timestep: int, field: np.ndarray) -> Path:
        """Persist one field; returns the file path."""
        field = np.ascontiguousarray(field, dtype=np.float64).ravel()
        path = self.path_for(simulation_id, timestep)
        with open(path, "wb") as fh:
            fh.write(_HEADER.pack(_MAGIC, simulation_id, timestep, field.size))
            fh.write(field.tobytes())
        self.bytes_written += _HEADER.size + field.nbytes
        self.files_written += 1
        return path


class PostmortemReader:
    """Streams ensemble files back from disk for a two-pass analysis."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"no ensemble directory {self.directory}")
        self.bytes_read = 0

    def list_files(self) -> List[Path]:
        return sorted(self.directory.glob("sim*_step*.bin"))

    def read(self, path: os.PathLike) -> Tuple[int, int, np.ndarray]:
        """Read one file -> (simulation_id, timestep, field)."""
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            magic, sim_id, timestep, ncells = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise ValueError(f"{path} is not an ensemble file")
            payload = fh.read(ncells * 8)
        self.bytes_read += len(header) + len(payload)
        return int(sim_id), int(timestep), np.frombuffer(payload, dtype=np.float64)

    def read_simulation(self, simulation_id: int) -> np.ndarray:
        """All timesteps of one simulation as an (nsteps, ncells) stack."""
        paths = sorted(self.directory.glob(f"sim{simulation_id:06d}_step*.bin"))
        if not paths:
            raise FileNotFoundError(f"no files for simulation {simulation_id}")
        fields = []
        for p in paths:
            _, _, field = self.read(p)
            fields.append(field)
        return np.vstack(fields)

    def __iter__(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        for path in self.list_files():
            yield self.read(path)
