"""The paper's use case: dye injection into a tube-bundle water channel.

Water flows left to right between a staggered bundle of tubes (Fig. 5 of
the paper).  Each ensemble member injects dye along the inlet through two
independent injectors (upper and lower), each controlled by three varying
parameters — concentration, width, and duration — for the paper's total of
six inputs (Sec. 5.2).  The flow itself is frozen and shared by every
member; only the scalar transport differs, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.mesh import StructuredMesh
from repro.sampling import ParameterSpace, Uniform
from repro.solver.advect import AdvectionDiffusion
from repro.solver.flow import Obstacle, StreamfunctionFlow, solve_streamfunction
from repro.solver.simulation import ScalarSimulation

#: Paper ordering of the six varying parameters (Sec. 5.2).
TUBE_BUNDLE_PARAMETER_NAMES = (
    "upper_concentration",
    "lower_concentration",
    "upper_width",
    "lower_width",
    "upper_duration",
    "lower_duration",
)


def tube_bundle_parameter_space() -> ParameterSpace:
    """The 6-parameter space of the study.

    Concentrations in [0.2, 1] (dye units), widths in [0.05, 0.35] (fraction
    of channel height per injector), durations in [0.2, 1] (fraction of the
    simulated time during which the injector is on).
    """
    return ParameterSpace(
        names=TUBE_BUNDLE_PARAMETER_NAMES,
        distributions=(
            Uniform(0.2, 1.0),
            Uniform(0.2, 1.0),
            Uniform(0.05, 0.35),
            Uniform(0.05, 0.35),
            Uniform(0.2, 1.0),
            Uniform(0.2, 1.0),
        ),
    )


@dataclass(frozen=True)
class InjectionParameters:
    """One member's injection settings, decoded from a parameter vector."""

    upper_concentration: float
    lower_concentration: float
    upper_width: float
    lower_width: float
    upper_duration: float
    lower_duration: float

    @classmethod
    def from_vector(cls, x: Sequence[float]) -> "InjectionParameters":
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (6,):
            raise ValueError("tube-bundle members take exactly 6 parameters")
        return cls(*[float(v) for v in x])


def _staggered_bundle(
    length: float, height: float, ncols: int, nrows: int, tube_frac: float
) -> List[Obstacle]:
    """Staggered array of square tubes filling the middle of the channel."""
    obstacles: List[Obstacle] = []
    x_span = (0.25 * length, 0.75 * length)
    tube = tube_frac * height / nrows
    for col in range(ncols):
        xc = x_span[0] + (col + 0.5) * (x_span[1] - x_span[0]) / ncols
        offset = 0.5 if col % 2 else 0.0
        for row in range(nrows):
            yc = (row + 0.5 + offset) * height / nrows
            if yc + tube / 2 >= height or yc - tube / 2 <= 0:
                continue
            obstacles.append(
                Obstacle(xc - tube / 2, yc - tube / 2, xc + tube / 2, yc + tube / 2)
            )
    return obstacles


class TubeBundleCase:
    """Geometry + frozen flow + member factory for the sensitivity study.

    Parameters
    ----------
    nx, ny:
        Grid resolution (the paper used 10M hexahedra; defaults here are
        laptop-scale while preserving the geometry and physics).
    ntimesteps:
        Number of *output* timesteps per simulation (paper: 100).
    total_time:
        Physical duration simulated; the inter-output interval is
        ``total_time / ntimesteps`` and the integrator substeps internally.
    """

    def __init__(
        self,
        nx: int = 96,
        ny: int = 48,
        ntimesteps: int = 100,
        total_time: float = 2.0,
        length: float = 2.0,
        height: float = 1.0,
        diffusivity: float = 5e-4,
        tube_columns: int = 4,
        tube_rows: int = 4,
        tube_frac: float = 0.45,
        inflow_speed: float = 1.0,
    ):
        if ntimesteps < 1:
            raise ValueError("ntimesteps must be >= 1")
        self.mesh = StructuredMesh(dims=(nx, ny), lengths=(length, height))
        self.ntimesteps = int(ntimesteps)
        self.total_time = float(total_time)
        self.obstacles = _staggered_bundle(length, height, tube_columns, tube_rows, tube_frac)
        self.flow: StreamfunctionFlow = solve_streamfunction(
            self.mesh, self.obstacles, inflow_speed=inflow_speed
        )
        self.integrator = AdvectionDiffusion(self.flow, diffusivity=diffusivity)
        self.height = float(height)
        # injector centre lines: upper at 3/4 H, lower at 1/4 H (two
        # independent injection surfaces along the inlet, Sec. 5.2)
        self.upper_center = 0.75 * height
        self.lower_center = 0.25 * height
        self._y = self.mesh.axis_coordinates(1)

    # ------------------------------------------------------------------ #
    @property
    def ncells(self) -> int:
        return self.mesh.ncells

    @property
    def output_interval(self) -> float:
        return self.total_time / self.ntimesteps

    def inlet_profile(self, params: InjectionParameters, t: float) -> np.ndarray:
        """Dye concentration along the inlet at physical time ``t``.

        Each injector contributes its concentration over a band of
        ``width * height`` centred on its injection surface while
        ``t < duration * total_time``; contributions add where bands
        overlap (they cannot with the default ranges).
        """
        profile = np.zeros_like(self._y)
        if t < params.upper_duration * self.total_time:
            half = 0.5 * params.upper_width * self.height
            band = np.abs(self._y - self.upper_center) <= half
            profile[band] += params.upper_concentration
        if t < params.lower_duration * self.total_time:
            half = 0.5 * params.lower_width * self.height
            band = np.abs(self._y - self.lower_center) <= half
            profile[band] += params.lower_concentration
        return profile

    def simulation(
        self, parameters: Sequence[float], simulation_id: int = 0
    ) -> ScalarSimulation:
        """Build one ensemble member for a 6-entry parameter vector."""
        params = InjectionParameters.from_vector(parameters)
        case = self

        def profile_fn(t: float) -> np.ndarray:
            return case.inlet_profile(params, t)

        return ScalarSimulation(
            integrator=self.integrator,
            inlet_profile_fn=profile_fn,
            ntimesteps=self.ntimesteps,
            output_interval=self.output_interval,
            simulation_id=simulation_id,
        )

    def parameter_space(self) -> ParameterSpace:
        return tube_bundle_parameter_space()

    # ------------------------------------------------------------------ #
    def bytes_per_timestep(self) -> int:
        """Size of one member's one-timestep output (float64 field)."""
        return self.ncells * 8

    def study_bytes(self, ngroups: int) -> int:
        """Total ensemble bytes a classical study would write to disk.

        This is the quantity the paper reports as 48 TB for 8000 runs of
        10M cells x 100 steps.
        """
        group_size = len(TUBE_BUNDLE_PARAMETER_NAMES) + 2
        return ngroups * group_size * self.ntimesteps * self.bytes_per_timestep()
