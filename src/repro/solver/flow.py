"""Steady incompressible flow from a streamfunction Laplace solve.

The velocity field is derived from a streamfunction psi defined on cell
*corners* of a structured 2-D mesh:

    u_face_east(i, j)  =  (psi[i+1, j+1] - psi[i+1, j]) / dy
    v_face_north(i, j) = -(psi[i+1, j+1] - psi[i,   j+1]) / dx

so the discrete divergence of every cell is identically zero — mass
conservation holds to machine precision, which the upwind transport step
relies on (no spurious sources/sinks of dye).

psi solves Laplace's equation with Dirichlet conditions: 0 on the bottom
wall, 1 on the top wall (unit volume flux through the channel), linear in
y on inlet and outlet (uniform far-field inflow), and a constant on each
obstacle (tube) equal to the normalized height of its centre — obstacles
are streamlines, so no flow penetrates them.  Faces whose two corners both
lie on the same obstacle therefore carry exactly zero velocity.

This collapses the paper's 4000-timestep Code_Saturne pre-run to a single
sparse solve: only the *steady* flow is ever used by the study, and the
scalar transport below is the part the 8000 ensemble members actually
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.mesh import StructuredMesh


@dataclass(frozen=True)
class Obstacle:
    """Axis-aligned rectangular tube in the bundle, in physical coordinates."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise ValueError("obstacle must have positive extent")

    @property
    def center_y(self) -> float:
        return 0.5 * (self.y0 + self.y1)

    def contains_cells(self, mesh: StructuredMesh) -> np.ndarray:
        """Boolean (nx, ny) mask of cells whose centres lie inside."""
        xc = mesh.axis_coordinates(0)
        yc = mesh.axis_coordinates(1)
        in_x = (xc >= self.x0) & (xc <= self.x1)
        in_y = (yc >= self.y0) & (yc <= self.y1)
        return np.outer(in_x, in_y)


class StreamfunctionFlow:
    """Frozen velocity field for a channel with obstacles.

    Attributes
    ----------
    u_east:
        (nx+1, ny) normal velocities through vertical faces; ``u_east[i]``
        is the face between cell columns i-1 and i (0 = inlet, nx = outlet).
    v_north:
        (nx, ny+1) normal velocities through horizontal faces; ``v_north[:, j]``
        is the face between cell rows j-1 and j (0 = bottom wall, ny = top).
    solid:
        (nx, ny) boolean mask of obstacle (non-fluid) cells.
    """

    def __init__(
        self,
        mesh: StructuredMesh,
        psi: np.ndarray,
        solid: np.ndarray,
        inflow_speed: float,
    ):
        if mesh.ndim != 2:
            raise ValueError("StreamfunctionFlow is 2-D")
        nx, ny = mesh.dims
        if psi.shape != (nx + 1, ny + 1):
            raise ValueError("psi must live on cell corners (nx+1, ny+1)")
        self.mesh = mesh
        self.psi = psi
        self.solid = np.asarray(solid, dtype=bool)
        self.inflow_speed = float(inflow_speed)
        dx, dy = mesh.spacing
        # face-normal velocities from corner streamfunction differences
        self.u_east = (psi[:, 1:] - psi[:, :-1]) / dy * inflow_speed * mesh.lengths[1]
        self.v_north = -(psi[1:, :] - psi[:-1, :]) / dx * inflow_speed * mesh.lengths[1]

    # ------------------------------------------------------------------ #
    @property
    def max_speed(self) -> float:
        return float(max(np.abs(self.u_east).max(), np.abs(self.v_north).max()))

    def cell_velocity(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cell-centred (u, v) by averaging face values (for rendering)."""
        u = 0.5 * (self.u_east[:-1, :] + self.u_east[1:, :])
        v = 0.5 * (self.v_north[:, :-1] + self.v_north[:, 1:])
        return u, v

    def divergence(self) -> np.ndarray:
        """Discrete per-cell divergence — zero to machine precision."""
        dx, dy = self.mesh.spacing
        div_u = (self.u_east[1:, :] - self.u_east[:-1, :]) * dy
        div_v = (self.v_north[:, 1:] - self.v_north[:, :-1]) * dx
        return div_u + div_v


def solve_streamfunction(
    mesh: StructuredMesh,
    obstacles: Sequence[Obstacle] = (),
    inflow_speed: float = 1.0,
) -> StreamfunctionFlow:
    """Solve Laplace(psi) = 0 on the corner grid and build the flow field.

    Sparse 5-point Laplacian over free corners; Dirichlet rows for walls,
    inlet/outlet, and obstacle corner sets.  Cost: one ``spsolve`` on a
    matrix of ~(nx+1)(ny+1) unknowns.
    """
    if mesh.ndim != 2:
        raise ValueError("solve_streamfunction requires a 2-D mesh")
    nx, ny = mesh.dims
    height = mesh.lengths[1]
    ncx, ncy = nx + 1, ny + 1
    n_nodes = ncx * ncy

    # corner coordinates
    xs = mesh.origin[0] + np.arange(ncx) * mesh.spacing[0]
    ys = mesh.origin[1] + np.arange(ncy) * mesh.spacing[1]
    ygrid = np.broadcast_to(ys, (ncx, ncy))

    # Dirichlet values; NaN marks free nodes
    dirichlet = np.full((ncx, ncy), np.nan)
    dirichlet[:, 0] = 0.0  # bottom wall
    dirichlet[:, -1] = 1.0  # top wall
    y_norm = (ys - mesh.origin[1]) / height
    dirichlet[0, :] = y_norm  # inlet: uniform inflow
    dirichlet[-1, :] = y_norm  # outlet

    solid = np.zeros((nx, ny), dtype=bool)
    for obs in obstacles:
        cells = obs.contains_cells(mesh)
        solid |= cells
        # all corners of obstacle cells get the obstacle's streamline value
        ci, cj = np.nonzero(cells)
        if ci.size == 0:
            continue
        psi_obs = (obs.center_y - mesh.origin[1]) / height
        for di in (0, 1):
            for dj in (0, 1):
                dirichlet[ci + di, cj + dj] = psi_obs

    fixed = ~np.isnan(dirichlet)
    free_idx = np.full(n_nodes, -1, dtype=np.int64)
    free_nodes = np.nonzero(~fixed.ravel())[0]
    free_idx[free_nodes] = np.arange(free_nodes.size)

    if free_nodes.size == 0:
        psi = dirichlet.copy()
        return StreamfunctionFlow(mesh, psi, solid, inflow_speed)

    # assemble 5-point Laplacian over free nodes (anisotropic spacings)
    dx, dy = mesh.spacing
    wx, wy = 1.0 / dx**2, 1.0 / dy**2
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs = np.zeros(free_nodes.size)
    fixed_flat = fixed.ravel()
    dir_flat = dirichlet.ravel()

    ii, jj = np.unravel_index(free_nodes, (ncx, ncy))
    for node, (i, j), row in zip(free_nodes, zip(ii, jj), range(free_nodes.size)):
        diag = 2.0 * (wx + wy)
        rows.append(row)
        cols.append(row)
        vals.append(diag)
        for (ni, nj), w in (
            ((i - 1, j), wx),
            ((i + 1, j), wx),
            ((i, j - 1), wy),
            ((i, j + 1), wy),
        ):
            nnode = ni * ncy + nj
            if fixed_flat[nnode]:
                rhs[row] += w * dir_flat[nnode]
            else:
                rows.append(row)
                cols.append(int(free_idx[nnode]))
                vals.append(-w)

    lap = sp.csr_matrix(
        (vals, (rows, cols)), shape=(free_nodes.size, free_nodes.size)
    )
    solution = spla.spsolve(lap, rhs)

    psi = dirichlet.copy()
    psi.ravel()[free_nodes] = solution
    return StreamfunctionFlow(mesh, psi, solid, inflow_speed)
