"""3-D tube-bundle case: hexahedral dye fields like the paper's mesh.

Same six injection parameters as the 2-D case; the spanwise direction is
resolved (dye diffuses in z and the injectors can be spanwise-confined),
so every ensemble member produces true hexahedral (nx, ny, nz) fields —
the shape the paper streams 48 TB of.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sampling import ParameterSpace
from repro.solver.advect3d import AdvectionDiffusion3D
from repro.solver.flow import solve_streamfunction
from repro.solver.simulation import ScalarSimulation
from repro.solver.tube_bundle import (
    InjectionParameters,
    TubeBundleCase,
    tube_bundle_parameter_space,
)


class TubeBundleCase3D:
    """Extruded tube-bundle study case producing hexahedral fields.

    Parameters mirror :class:`TubeBundleCase` plus the spanwise shape.
    ``injector_span`` confines injection to the central fraction of the
    depth, so dye genuinely spreads in z by diffusion (a purely-uniform
    injection would make z a redundant axis).
    """

    def __init__(
        self,
        nx: int = 48,
        ny: int = 24,
        nz: int = 8,
        ntimesteps: int = 10,
        total_time: float = 1.5,
        length: float = 2.0,
        height: float = 1.0,
        depth: float = 0.5,
        diffusivity: float = 5e-4,
        injector_span: float = 0.5,
        **flow_kwargs,
    ):
        if ntimesteps < 1:
            raise ValueError("ntimesteps must be >= 1")
        if not 0 < injector_span <= 1.0:
            raise ValueError("injector_span must be in (0, 1]")
        # reuse the 2-D case for geometry + frozen flow
        base = TubeBundleCase(
            nx=nx, ny=ny, ntimesteps=ntimesteps, total_time=total_time,
            length=length, height=height, diffusivity=diffusivity,
            **flow_kwargs,
        )
        self._base = base
        self.flow = base.flow
        self.obstacles = base.obstacles
        self.integrator = AdvectionDiffusion3D(
            base.flow, nz=nz, depth=depth, diffusivity=diffusivity
        )
        self.mesh = self.integrator.mesh
        self.ntimesteps = int(ntimesteps)
        self.total_time = float(total_time)
        self.height = float(height)
        self.depth = float(depth)
        self.injector_span = float(injector_span)
        self._y = base._y
        self._z = self.mesh.axis_coordinates(2)
        self.upper_center = base.upper_center
        self.lower_center = base.lower_center

    # ------------------------------------------------------------------ #
    @property
    def ncells(self) -> int:
        return self.mesh.ncells

    @property
    def output_interval(self) -> float:
        return self.total_time / self.ntimesteps

    def inlet_profile(self, params: InjectionParameters, t: float) -> np.ndarray:
        """(ny, nz) inlet dye concentration at time t."""
        profile_y = self._base.inlet_profile(params, t)  # (ny,)
        half_span = 0.5 * self.injector_span * self.depth
        span = np.abs(self._z - 0.5 * self.depth) <= half_span  # (nz,)
        return np.outer(profile_y, span.astype(np.float64))

    def simulation(
        self, parameters: Sequence[float], simulation_id: int = 0
    ) -> ScalarSimulation:
        params = InjectionParameters.from_vector(parameters)
        case = self

        def profile_fn(t: float) -> np.ndarray:
            return case.inlet_profile(params, t)

        return ScalarSimulation(
            integrator=self.integrator,
            inlet_profile_fn=profile_fn,
            ntimesteps=self.ntimesteps,
            output_interval=self.output_interval,
            simulation_id=simulation_id,
        )

    def parameter_space(self) -> ParameterSpace:
        return tube_bundle_parameter_space()

    def bytes_per_timestep(self) -> int:
        return self.ncells * 8

    def study_bytes(self, ngroups: int) -> int:
        return ngroups * 8 * self.ntimesteps * self.bytes_per_timestep()
