"""Concurrent driver: real threads, blocking bounded channels, wall-clock.

This runtime demonstrates the deployment shape of the paper inside one
process: each server rank runs its own polling thread (rank state is only
ever touched by that thread — the same share-nothing property MPI gives
the real Melissa), and simulation groups execute on a bounded worker pool
(the "machine" capacity).  Back-pressure is real: when the byte-bounded
channels fill up, group workers spin-wait on their outbox exactly like
ZeroMQ-blocked simulations.

Statistics produced here are bit-identical to the sequential runtime up
to floating-point reassociation *per rank* — and since each (cell,
timestep) lives on exactly one rank and groups commute, results match the
sequential driver to tight tolerance; the integration tests assert it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional

from repro.core.config import StudyConfig
from repro.core.group import GroupExecutor, GroupState, SimulationFactory, SimulationGroup
from repro.core.results import StudyResults
from repro.core.server import MelissaServer
from repro.faults import FaultPlan
from repro.sampling.pickfreeze import draw_design
from repro.transport.channel import ChannelClosed
from repro.transport.router import Router


class ThreadedRuntime:
    """Thread-parallel execution of one study.

    Parameters
    ----------
    max_concurrent_groups:
        Worker-pool size — the stand-in for "how many groups the machine
        runs at once".
    poll_interval:
        Server-rank receive timeout (seconds); small values trade CPU for
        latency.
    """

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        max_concurrent_groups: int = 4,
        poll_interval: float = 0.01,
    ):
        if max_concurrent_groups < 1:
            raise ValueError("max_concurrent_groups must be >= 1")
        self.config = config
        self.factory = factory
        self.max_concurrent_groups = max_concurrent_groups
        self.poll_interval = poll_interval
        self.design = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
        self.server = MelissaServer(config)
        self.router = Router(
            self.server.partition,
            channel_capacity_bytes=config.channel_capacity_bytes,
        )
        self._stop = threading.Event()
        self._errors: List[BaseException] = []
        self._error_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def run(self, timeout: float = 300.0) -> StudyResults:
        """Execute all groups; returns assembled results."""
        server_threads = [
            threading.Thread(
                target=self._serve_rank, args=(rank_idx,), name=f"server-{rank_idx}"
            )
            for rank_idx in range(self.config.server_ranks)
        ]
        for t in server_threads:
            t.start()

        work: "queue.Queue[int]" = queue.Queue()
        for group_id in range(self.config.ngroups):
            work.put(group_id)
        workers = [
            threading.Thread(target=self._work_groups, args=(work,), name=f"worker-{i}")
            for i in range(self.max_concurrent_groups)
        ]
        deadline = time.monotonic() + timeout
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                self._stop.set()
                raise TimeoutError("threaded study did not finish in time")

        # groups done: wait for the server to drain every channel
        while not self._drained():
            if time.monotonic() > deadline:
                self._stop.set()
                raise TimeoutError("server did not drain in time")
            time.sleep(self.poll_interval)
        self._stop.set()
        for t in server_threads:
            t.join(timeout=10.0)
        if self._errors:
            raise self._errors[0]
        return StudyResults.from_server(
            self.server, parameter_names=tuple(self.config.space.names)
        )

    # ------------------------------------------------------------------ #
    def _serve_rank(self, rank_idx: int) -> None:
        """One server rank's poll loop (sole owner of that rank's state)."""
        rank = self.server.ranks[rank_idx]
        channel = self.router.inbound[rank_idx]
        try:
            while not (self._stop.is_set() and channel.pending_messages == 0):
                try:
                    msg = channel.recv(timeout=self.poll_interval)
                except TimeoutError:
                    continue
                except ChannelClosed:
                    break
                rank.handle(msg, time.monotonic())
        except BaseException as exc:  # noqa: BLE001 - surface to caller
            with self._error_lock:
                self._errors.append(exc)
            self._stop.set()

    def _work_groups(self, work: "queue.Queue[int]") -> None:
        """Worker: take group ids and run each to completion."""
        try:
            while not self._stop.is_set():
                try:
                    group_id = work.get_nowait()
                except queue.Empty:
                    return
                executor = GroupExecutor(
                    SimulationGroup.from_design(self.design, group_id),
                    self.factory,
                    self.config,
                    self.router,
                )
                executor.initialize()
                while executor.state != GroupState.FINISHED:
                    state = executor.process_step()
                    if state == GroupState.BLOCKED:
                        # ZeroMQ-style suspension: buffers full, wait
                        time.sleep(self.poll_interval)
                    if self._stop.is_set():
                        return
        except BaseException as exc:  # noqa: BLE001
            with self._error_lock:
                self._errors.append(exc)
            self._stop.set()

    def _drained(self) -> bool:
        channels_empty = all(
            ch.pending_messages == 0 for ch in self.router.inbound.values()
        )
        staging_empty = all(r.staged_entries == 0 for r in self.server.ranks)
        return channels_empty and staging_empty
