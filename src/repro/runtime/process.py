"""Process-parallel driver: true multi-core execution of one study.

The paper's server gets its parallelism from MPI: every server rank owns
a cell partition and processes messages with purely local state.  The
GIL-bound :class:`~repro.runtime.threaded.ThreadedRuntime` demonstrates
the concurrency structure but cannot use more than one core for the
statistics hot path.  :class:`ProcessRuntime` restores the share-nothing
property with ``multiprocessing``:

* each :class:`~repro.core.server.ServerRank` runs in its own worker
  process, fed by a dedicated per-rank queue (the ZeroMQ PULL socket of
  the paper);
* simulation groups execute on a pool of worker processes that pull
  group ids from a shared work queue and push field messages through a
  queue-backed router facade;
* when all groups finish, each server worker ships its rank state
  (the same payload a checkpoint stores) back to the parent, which
  reassembles a :class:`~repro.core.server.MelissaServer` and builds the
  results exactly like the other runtimes.

The runtime uses the ``fork`` start method so arbitrary simulation
factories (closures included) are inherited rather than pickled; only
messages and final rank states cross process boundaries.  Statistics
match the sequential driver to floating-point reassociation, as with the
threaded runtime — the parity tests assert it.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time
import traceback
from typing import List, Optional, Set

import numpy as np

from repro.core.config import StudyConfig
from repro.core.diagnostics import unfinished_study_message
from repro.core.group import GroupExecutor, GroupState, SimulationFactory, SimulationGroup
from repro.core.results import StudyResults
from repro.core.server import MelissaServer, ServerRank
from repro.mesh.partition import BlockPartition
from repro.sampling.pickfreeze import draw_design
from repro.transport.message import ConnectionReply, ConnectionRequest, split_by_partition


class _QueueRouter:
    """Client-side router facade over the per-rank message queues.

    Implements the slice of the :class:`~repro.transport.router.Router`
    API that :class:`~repro.core.group.GroupExecutor` uses: the
    connection handshake plus :meth:`deliver` with back-pressure.  Like
    the in-process router it splits messages straddling a server-partition
    boundary along the fenceposts.
    """

    def __init__(self, server_partition: BlockPartition, rank_queues):
        self.server_partition = server_partition
        self._queues = rank_queues
        self._connected: Set[int] = set()

    def connect(self, request: ConnectionRequest) -> ConnectionReply:
        if request.ncells != self.server_partition.ncells:
            raise ValueError(
                f"group {request.group_id} has {request.ncells} cells, "
                f"server partitions {self.server_partition.ncells}"
            )
        self._connected.add(request.group_id)
        return ConnectionReply(
            nranks_server=self.server_partition.nranks,
            offsets=tuple(int(o) for o in self.server_partition.offsets),
        )

    def is_connected(self, group_id: int) -> bool:
        return group_id in self._connected

    def disconnect(self, group_id: int) -> None:
        self._connected.discard(group_id)

    def deliver(self, msg, blocking: bool = False) -> bool:
        chunks = split_by_partition(msg, self.server_partition)
        if blocking:
            for server_rank, chunk in chunks:
                self._queues[server_rank].put(chunk)
            return True
        # all-or-nothing probe first (approximate for mp queues), so the
        # caller's whole-message retry cannot re-send landed chunks; a
        # lost race delivers a duplicate chunk, which replay protection
        # discards on the server side
        if len(chunks) > 1 and any(self._queues[rank].full() for rank, _ in chunks):
            return False
        for server_rank, chunk in chunks:
            try:
                self._queues[server_rank].put_nowait(chunk)
            except _queue.Full:
                return False
        return True


def _server_worker(rank_idx, config, inbox, results, errors, beats, beat_interval):
    """Own one ServerRank: drain the inbox, then ship the rank state.

    The rank-local reductions run HERE, in the worker, before shipping:
    the partition's index/variance/mean maps (batched per timestep) and
    the rank's convergence scalar.  The parent then only concatenates
    maps and max-reduces scalars instead of redoing every correlation in
    serial — the two reductions that used to dominate post-study time.

    While draining, the worker emits :class:`Heartbeat` beacons on
    ``beats`` every ``beat_interval`` seconds so the parent can tell a
    dead rank worker from a slow one and fail fast (Sec. 4.2.2's
    launcher-side liveness, in-host edition).
    """
    from repro.transport.message import Heartbeat

    sender = f"server-rank-{rank_idx}"
    try:
        partition = BlockPartition(config.ncells, config.server_ranks)
        rank = ServerRank(rank_idx, config, partition)
        last_beat = time.monotonic()
        while True:
            try:
                msg = inbox.get(timeout=beat_interval)
            except _queue.Empty:
                beats.put(Heartbeat(sender=sender, time=time.monotonic()))
                last_beat = time.monotonic()
                continue
            if msg is None:
                break
            rank.handle(msg, time.monotonic())
            now = time.monotonic()
            if now - last_beat >= beat_interval:
                beats.put(Heartbeat(sender=sender, time=now))
                last_beat = now
        maps = rank.index_maps()
        width = rank.sobol.max_interval_width()
        results.put((rank_idx, rank.checkpoint_state(), maps, width))
    except BaseException:  # noqa: BLE001 - surface to the parent
        errors.put(f"server rank {rank_idx}:\n{traceback.format_exc()}")


def _group_worker(config, factory, design, rank_queues, work, errors, progress,
                  poll_interval):
    """Run groups to completion, one at a time, until the work queue drains.

    Every finished group is reported on ``progress`` so a study-level
    timeout can name exactly which groups never completed.
    """
    try:
        partition = BlockPartition(config.ncells, config.server_ranks)
        router = _QueueRouter(partition, rank_queues)
        while True:
            group_id = work.get()
            if group_id is None:
                break
            executor = GroupExecutor(
                SimulationGroup.from_design(design, group_id),
                factory,
                config,
                router,
            )
            executor.initialize()
            while executor.state != GroupState.FINISHED:
                state = executor.process_step()
                if state == GroupState.BLOCKED:
                    # ZeroMQ-style suspension: rank queue full, wait
                    time.sleep(poll_interval)
            progress.put(group_id)
    except BaseException:  # noqa: BLE001
        errors.put(f"group worker:\n{traceback.format_exc()}")


class ProcessRuntime:
    """Multi-core execution of one study on ``multiprocessing`` workers.

    Parameters
    ----------
    max_concurrent_groups:
        Size of the group-worker pool (the "machine" capacity).
    queue_depth:
        Messages buffered per server-rank queue before senders block.
        ``None`` derives a depth from ``config.channel_capacity_bytes``
        (approximating the byte budget in whole messages) or leaves the
        queue unbounded when the config does not bound buffers either.
    poll_interval:
        Sleep while a group is suspended on full buffers (seconds).

    Notes
    -----
    Always uses the ``fork`` start method so closure-based simulation
    factories are inherited, not pickled; platforms without ``fork``
    (Windows) are rejected at construction.
    """

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        max_concurrent_groups: int = 4,
        queue_depth: Optional[int] = None,
        poll_interval: float = 0.005,
        heartbeat_interval: Optional[float] = None,
    ):
        if max_concurrent_groups < 1:
            raise ValueError("max_concurrent_groups must be >= 1")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "ProcessRuntime requires the fork start method (Linux/macOS): "
                "simulation factories (closures) are inherited, not pickled"
            )
        self.config = config
        self.factory = factory
        self.max_concurrent_groups = max_concurrent_groups
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            config.heartbeat_interval if heartbeat_interval is None
            else heartbeat_interval
        )
        self._ctx = mp.get_context("fork")
        self.design = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
        self.partition = BlockPartition(config.ncells, config.server_ranks)
        if queue_depth is None and config.channel_capacity_bytes is not None:
            # approximate the byte budget in whole two-stage messages
            slice_cells = max(
                1,
                config.ncells
                // max(config.server_ranks, config.client_ranks),
            )
            message_bytes = config.group_size * slice_cells * 8
            queue_depth = max(2, config.channel_capacity_bytes // message_bytes)
        self.queue_depth = queue_depth

    # ------------------------------------------------------------------ #
    def run(self, timeout: float = 300.0) -> StudyResults:
        """Execute all groups; returns assembled results.

        ``timeout`` bounds the WHOLE study — group execution, queue
        drains, and rank-state collection share one deadline — and a
        breach raises a :class:`TimeoutError` naming the unfinished
        groups and unreported server ranks.  A server-rank worker that
        dies (its heartbeat goes silent and the process is gone) fails
        the study immediately instead of hanging until the deadline.
        """
        # warm the compiled-kernel cache in the parent BEFORE forking: on
        # a cold cache every rank worker would otherwise race into its own
        # duplicate C compile during its first fold
        from repro.kernels import resolve_spec, warm_compiled_backends

        if resolve_spec(self.config.kernel) in ("auto", "cext"):
            warm_compiled_backends()
        ctx = self._ctx
        depth = 0 if self.queue_depth is None else int(self.queue_depth)
        rank_queues = [ctx.Queue(maxsize=depth) for _ in range(self.config.server_ranks)]
        results_q = ctx.Queue()
        errors_q = ctx.Queue()
        beats_q = ctx.Queue()
        progress_q = ctx.Queue()

        servers = [
            ctx.Process(
                target=_server_worker,
                args=(r, self.config, rank_queues[r], results_q, errors_q,
                      beats_q, self.heartbeat_interval),
                name=f"server-{r}",
                daemon=True,
            )
            for r in range(self.config.server_ranks)
        ]
        work = ctx.Queue()
        for group_id in range(self.config.ngroups):
            work.put(group_id)
        nworkers = min(self.max_concurrent_groups, self.config.ngroups)
        for _ in range(nworkers):
            work.put(None)  # one poison pill per worker
        workers = [
            ctx.Process(
                target=_group_worker,
                args=(
                    self.config, self.factory, self.design, rank_queues,
                    work, errors_q, progress_q, self.poll_interval,
                ),
                name=f"group-worker-{i}",
                daemon=True,
            )
            for i in range(nworkers)
        ]

        deadline = time.monotonic() + timeout
        procs = servers + workers
        self._done_groups = set()
        self._last_beat = {r: time.monotonic() for r in range(len(servers))}
        states = {}
        rank_maps = {}
        rank_widths = {}
        try:
            for proc in procs:
                proc.start()
            for worker in workers:
                # join in short slices so a worker or server-rank failure
                # surfaces immediately instead of after the full timeout
                while True:
                    self._check_errors(errors_q)
                    self._drain_progress(progress_q, beats_q)
                    self._check_server_liveness(servers, states)
                    worker.join(timeout=min(0.25, max(0.0, deadline - time.monotonic())))
                    if not worker.is_alive():
                        break
                    if time.monotonic() >= deadline:
                        raise TimeoutError(self._timeout_message(timeout, states))
                if worker.exitcode not in (0, None):
                    self._check_errors(errors_q)
                    raise RuntimeError(
                        f"group worker died with exit code {worker.exitcode}"
                    )
            # all groups done and their messages flushed: stop the ranks
            for q in rank_queues:
                q.put(None)
            while len(states) < len(servers):
                self._check_errors(errors_q)
                self._drain_progress(progress_q, beats_q)
                self._check_server_liveness(servers, states)
                try:
                    rank_idx, state, maps, width = results_q.get(
                        timeout=min(0.25, max(0.05, deadline - time.monotonic()))
                    )
                except _queue.Empty:
                    if time.monotonic() > deadline:
                        raise TimeoutError(self._timeout_message(timeout, states))
                    continue
                states[rank_idx] = state
                rank_maps[rank_idx] = maps
                rank_widths[rank_idx] = width
            for proc in servers:
                proc.join(timeout=10.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
        self._check_errors(errors_q)

        server = MelissaServer(self.config)
        for rank in server.ranks:
            rank.restore_state(states[rank.rank])
        self.server = server
        # max-reduce the per-worker convergence scalars (NaN ranks carry
        # no meaningful cells and are skipped, matching
        # MelissaServer.max_interval_width)
        widths = [rank_widths[r] for r in sorted(rank_widths)]
        valid = [w for w in widths if not np.isnan(w)]
        max_width = max(valid) if valid else float("inf")
        return StudyResults.from_server(
            server,
            parameter_names=tuple(self.config.space.names),
            rank_maps=[rank_maps[r] for r in sorted(rank_maps)],
            max_interval_width=max_width,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_errors(errors_q) -> None:
        failures: List[str] = []
        while True:
            try:
                failures.append(errors_q.get_nowait())
            except _queue.Empty:
                break
        if failures:
            raise RuntimeError("worker failure:\n" + "\n".join(failures))

    def _drain_progress(self, progress_q, beats_q) -> None:
        """Fold completed-group reports and rank heartbeats into state."""
        while True:
            try:
                self._done_groups.add(progress_q.get_nowait())
            except _queue.Empty:
                break
        while True:
            try:
                beat = beats_q.get_nowait()
            except _queue.Empty:
                break
            rank_idx = int(beat.sender.rsplit("-", 1)[1])
            self._last_beat[rank_idx] = time.monotonic()

    def _check_server_liveness(self, servers, states) -> None:
        """Fail fast on a dead server-rank worker (Heartbeat gone silent).

        A rank whose heartbeat is stale is only fatal when its process is
        actually gone — a rank buried in a long fold is slow, not dead.
        """
        stale_after = max(4 * self.heartbeat_interval, 2.0)
        now = time.monotonic()
        for rank_idx, proc in enumerate(servers):
            if rank_idx in states or proc.is_alive() or proc.exitcode is None:
                continue
            silence = now - self._last_beat.get(rank_idx, now)
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"server rank {rank_idx} worker died (exit code "
                    f"{proc.exitcode}, last heartbeat {silence:.1f}s ago) "
                    "before reporting its state; failing fast instead of "
                    "waiting for the study timeout"
                )
            # clean exit: its result may still be in the pipe — give it a
            # heartbeat-staleness grace period before declaring it lost
            if silence > stale_after:
                raise RuntimeError(
                    f"server rank {rank_idx} worker exited without reporting "
                    f"its state (heartbeat silent for {silence:.1f}s)"
                )

    def _timeout_message(self, timeout: float, states) -> str:
        return unfinished_study_message(
            "process", timeout, self.config.ngroups, self._done_groups, (),
            self.config.server_ranks, states,
        )
