"""Study drivers.

The Melissa logic (:mod:`repro.core`) is pure bookkeeping over message
streams; a *runtime* supplies the execution model:

* :class:`SequentialRuntime` — deterministic virtual-time driver.  All
  components are stepped from one loop, faults are injected from a
  :class:`repro.faults.FaultPlan`, and any run is exactly reproducible.
  This is the workhorse for tests, examples, and the real (small-scale)
  end-to-end benchmarks.
* :class:`ThreadedRuntime` — concurrent driver: server ranks and groups
  run on real threads with blocking bounded channels and wall-clock
  heartbeats, demonstrating that the same core logic is thread-safe under
  true asynchrony (the paper's deployment shape, scaled into a process).
* :class:`ProcessRuntime` — multi-core driver: every server rank lives in
  its own ``multiprocessing`` worker fed by a per-rank queue and groups
  run on a process pool — the share-nothing layout the paper gets from
  MPI, without the GIL ceiling of the threaded driver.
* :class:`DistributedRuntime` — socket driver: server ranks and group
  workers are independent OS processes connected over TCP through
  :mod:`repro.net` (the paper's ZeroMQ deployment shape).  The class
  runs the loopback single-host arrangement; the same processes span
  machines via the CLI (``repro serve`` / ``repro work`` /
  ``repro launch``).
"""

from repro.runtime.distributed import DistributedRuntime
from repro.runtime.process import ProcessRuntime
from repro.runtime.sequential import SequentialRuntime
from repro.runtime.threaded import ThreadedRuntime

__all__ = [
    "DistributedRuntime",
    "ProcessRuntime",
    "SequentialRuntime",
    "ThreadedRuntime",
]
