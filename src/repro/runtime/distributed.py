"""Distributed driver: server ranks and group workers as OS processes.

This is the deployment shape of the paper — independent processes
connected only by sockets — driven end to end.  Two modes share all of
the machinery in :mod:`repro.net`:

* **loopback** (this class): :meth:`DistributedRuntime.run` forks every
  ``repro serve``-equivalent rank process and ``repro work``-equivalent
  group worker on this host, connects them over 127.0.0.1 TCP, and
  assembles :class:`~repro.core.results.StudyResults` exactly like the
  other runtimes.  ``SensitivityStudy.run(runtime="distributed")`` lands
  here; it is what tests and CI exercise.
* **multi-host** (the CLI): ``repro launch`` runs only the coordinator;
  ``repro serve --rank K`` / ``repro work`` processes started on any
  machine dial in.  Same wire protocol, same coordinator — the loopback
  mode is literally the multi-host mode with the fork shortcut.

Statistics parity: each (cell, timestep) lives on exactly one rank and
group folds commute, so results match the sequential driver to tight
floating-point tolerance; the integration tests assert rtol 1e-10.

Fault paths (Sec. 4.2):

* a killed group worker drops its control connection; the coordinator
  resubmits the in-flight group, ranks forget its staged partials, and
  replay protection keeps the statistics exact (Sec. 4.2.1/4.2.2) —
  asserted by the kill test;
* a dead or hung *server rank* is caught by the supervisor (lost control
  connection or stale heartbeat), SIGKILLed, and respawned from its
  per-rank checkpoint (Sec. 4.2.3); the replacement publishes a fresh
  data address, the coordinator requeues whatever the restored state is
  missing, and workers reconnect and re-run — the chaos suite asserts
  rtol 1e-10 parity through a mid-study SIGKILL.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import threading
from typing import List, Optional

import numpy as np

from repro.core.config import StudyConfig
from repro.core.group import SimulationFactory
from repro.core.launcher import RankRespawnPolicy
from repro.core.results import StudyResults
from repro.core.server import MelissaServer
from repro.faults import FaultPlan
from repro.net.coordinator import Coordinator
from repro.net.serve import run_server_rank
from repro.net.supervisor import PoolSupervisor, RankSupervisor
from repro.net.worker import run_worker
from repro.sampling.pickfreeze import draw_design
from repro.scheduler.policy import ElasticPoolPolicy, SchedulingPolicy
from repro import telemetry as _telemetry
from repro.telemetry.aggregate import StudyTelemetry
from repro.telemetry.exporters import MetricsFileWriter, MetricsHTTPServer
from repro.telemetry.tracer import Tracer


class DistributedRuntime:
    """Socket-transport execution of one study (loopback convenience).

    Parameters
    ----------
    nworkers:
        Group-worker process count (the "machine" capacity).
    host, port:
        Coordinator bind address (port 0 = ephemeral); rank data
        listeners bind ephemeral ports on the same interface.
    checkpoint_dir:
        When set, every rank process checkpoints/restores its own file
        there on ``config.checkpoint_interval`` cadence.
    fault_kill_after:
        Test hook forwarded to the coordinator: SIGKILL the worker that
        receives the Nth group assignment, exercising resubmission.
    supervise:
        Run the launcher protocol for server ranks (Sec. 4.2.3): a dead
        or silent rank process is killed and respawned from its
        checkpoint (up to ``config.max_rank_respawns`` times per rank)
        instead of failing the study.  On by default.
    rank_timeout:
        Heartbeat staleness (seconds) before a silent rank is declared a
        zombie; defaults to ``config.server_timeout``.
    fault_plan:
        Server-rank and group-worker faults to inject into the forked
        serve/work processes (crash/zombie/straggler specs from
        :mod:`repro.faults`); group faults are rejected — they need the
        virtual-time driver.  Respawned/elastic replacement processes
        always run clean.
    transport:
        Convenience override of ``config.transport`` for this loopback
        deployment: "auto" (negotiate shared memory per channel, fall
        back to TCP), "tcp", or "shm".

    Scheduling: ``config.scheduling`` (a
    :class:`~repro.scheduler.policy.SchedulingConfig` or spec string)
    attaches the coordinator-side policy layer — speculative re-execution
    of straggler groups, work stealing, and elastic pool resize (extra
    workers forked on queue depth, retired when it drains).
    """

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        nworkers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.005,
        heartbeat_interval: Optional[float] = None,
        checkpoint_dir=None,
        fault_kill_after: Optional[int] = None,
        supervise: bool = True,
        rank_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: bool = False,
        trace_file=None,
        metrics_file=None,
        metrics_port: Optional[int] = None,
        metrics_interval: float = 1.0,
        transport: Optional[str] = None,
    ):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        if transport is not None:
            # convenience override for loopback runs: the forked rank and
            # worker processes inherit the config, so setting it here
            # reaches both ends of every channel negotiation.  A shallow
            # copy, not dataclasses.replace — __post_init__'s statistics
            # resolution is not idempotent.
            if transport not in ("auto", "tcp", "shm"):
                raise ValueError(
                    f"transport must be 'auto', 'tcp', or 'shm' — got "
                    f"{transport!r}"
                )
            config = copy.copy(config)
            config.transport = transport
        if fault_plan is not None and not fault_plan.socket_only:
            raise ValueError(
                "the distributed runtime injects faults into its real "
                "socket processes (server ranks and group workers) only; "
                "group faults and virtual-time ServerCrash specs need the "
                "sequential runtime"
            )
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "DistributedRuntime's loopback mode requires the fork start "
                "method (Linux/macOS): simulation factories (closures) are "
                "inherited, not pickled; on other platforms run the CLI "
                "processes (repro serve / repro work / repro launch) instead"
            )
        self.config = config
        self.factory = factory
        self.nworkers = nworkers
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            config.heartbeat_interval if heartbeat_interval is None
            else heartbeat_interval
        )
        self.checkpoint_dir = checkpoint_dir
        self.fault_kill_after = fault_kill_after
        self.supervise = supervise
        self.rank_timeout = (
            config.server_timeout if rank_timeout is None else rank_timeout
        )
        self.fault_plan = fault_plan
        # any telemetry surface implies the telemetry layer itself
        self.telemetry_enabled = bool(
            telemetry or trace_file or metrics_file or metrics_port is not None
        )
        self.trace_file = trace_file
        self.metrics_file = metrics_file
        self.metrics_port = metrics_port
        self.metrics_interval = metrics_interval
        self.telemetry: Optional[StudyTelemetry] = None
        self.tracer: Optional[Tracer] = None
        self.metrics_server: Optional[MetricsHTTPServer] = None
        self._ctx = mp.get_context("fork")
        self._proc_lock = threading.Lock()
        self._stopping = False
        self.design = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
        self.coordinator: Optional[Coordinator] = None
        self.supervisor: Optional[RankSupervisor] = None
        self.scheduling_policy: Optional[SchedulingPolicy] = None
        self.pool: Optional[PoolSupervisor] = None
        self.server_procs: List = []
        self.worker_procs: List = []
        self._elastic_spawned = 0

    # ------------------------------------------------------------------ #
    def run(self, timeout: float = 300.0) -> StudyResults:
        """Spawn ranks + workers, coordinate, assemble results."""
        # warm the compiled-kernel cache before forking (same rationale as
        # ProcessRuntime: avoid duplicate C compiles in every rank)
        from repro.kernels import resolve_spec, warm_compiled_backends

        if resolve_spec(self.config.kernel) in ("auto", "cext"):
            warm_compiled_backends()

        supervisor = None
        if self.supervise:
            supervisor = RankSupervisor(
                spawner=self._respawn_rank,
                policy=RankRespawnPolicy(
                    nranks=self.config.server_ranks,
                    timeout=self.rank_timeout,
                    max_respawns=self.config.max_rank_respawns,
                ),
            )
        self.supervisor = supervisor
        policy = pool = None
        scheduling = self.config.scheduling
        if scheduling is not None and scheduling.enabled:
            policy = SchedulingPolicy(scheduling)
            if scheduling.elastic:
                pool = PoolSupervisor(
                    spawner=self._spawn_elastic_worker,
                    policy=ElasticPoolPolicy(scheduling),
                )
        self.scheduling_policy = policy
        self.pool = pool
        telemetry = tracer = None
        if self.telemetry_enabled:
            # enable before forking so rank/worker children inherit a live
            # registry for pre-negotiation instruments (dial retries)
            _telemetry.enable()
            tracer = Tracer()
            telemetry = StudyTelemetry(_telemetry.REGISTRY, tracer)
        self.telemetry = telemetry
        self.tracer = tracer
        coordinator = Coordinator(
            self.config,
            host=self.host,
            port=self.port,
            fault_kill_after=self.fault_kill_after,
            supervisor=supervisor,
            policy=policy,
            pool=pool,
            telemetry=telemetry,
            tracer=tracer,
        ).start()
        self.coordinator = coordinator
        metrics_writer = None
        if telemetry is not None:
            frame_fn = lambda: telemetry.view(coordinator.study_view())  # noqa: E731
            if self.metrics_file:
                metrics_writer = MetricsFileWriter(
                    self.metrics_file, frame_fn, interval=self.metrics_interval
                ).start()
            if self.metrics_port is not None:
                self.metrics_server = MetricsHTTPServer(
                    frame_fn, host=self.host, port=self.metrics_port
                ).start()
        ctx = self._ctx
        self.server_procs = [
            self._rank_process(rank, fault_plan=self.fault_plan)
            for rank in range(self.config.server_ranks)
        ]
        nworkers = min(self.nworkers, self.config.ngroups)
        worker_faults = (
            self.fault_plan
            if self.fault_plan is not None and self.fault_plan.has_worker_faults
            else None
        )
        self.worker_procs = [
            ctx.Process(
                target=run_worker,
                args=(self.config, self.factory, coordinator.address),
                kwargs={
                    "name": f"worker-{i}",
                    "poll_interval": self.poll_interval,
                    "heartbeat_interval": self.heartbeat_interval,
                    "design": self.design,
                    "fault_plan": worker_faults,
                    "worker_index": i,
                },
                name=f"repro-work-{i}",
                daemon=True,
            )
            for i in range(nworkers)
        ]
        try:
            for proc in self.server_procs + self.worker_procs:
                proc.start()
            coordinator.wait(timeout=timeout)
            for proc in self._all_procs():
                proc.join(timeout=10.0)
        finally:
            coordinator.close()
            # bar further spawns BEFORE the terminate sweep: a respawn or
            # elastic fork racing shutdown would otherwise start after the
            # snapshot and leak a process that keeps re-dialing recycled
            # coordinator ports into whatever binds them next
            with self._proc_lock:
                self._stopping = True
            for proc in self._all_procs():
                if proc.is_alive():
                    proc.terminate()
            for proc in self._all_procs():
                if proc.pid is not None:
                    proc.join(timeout=5.0)
            if metrics_writer is not None:
                metrics_writer.close()
            if self.metrics_server is not None:
                self.metrics_server.close()
                self.metrics_server = None
        if tracer is not None:
            with tracer.span("assemble results", "coordinator",
                             tid="coordinator"):
                results = assemble_results(self.config, coordinator,
                                           runtime=self)
            if self.trace_file:
                tracer.write(self.trace_file)
            return results
        return assemble_results(self.config, coordinator, runtime=self)

    # ------------------------------------------------------------------ #
    def _rank_process(self, rank: int, fault_plan: Optional[FaultPlan],
                      env_fault: bool = True):
        return self._ctx.Process(
            target=run_server_rank,
            args=(rank, self.config, self.coordinator.address),
            kwargs={
                "data_host": self.host,
                "checkpoint_dir": self.checkpoint_dir,
                "poll_interval": self.poll_interval,
                "heartbeat_interval": self.heartbeat_interval,
                "fault_plan": fault_plan,
                "env_fault": env_fault,
                # loopback ranks all share this host: clamp auto fold
                # threads so co-located ranks don't oversubscribe cores
                "local_ranks": self.config.server_ranks,
            },
            name=f"repro-serve-{rank}",
            daemon=True,
        )

    def _spawn_elastic_worker(self, index: int) -> None:
        """Pool-supervisor spawner: fork one extra group worker.

        Elastic workers always run clean (no fault plan, no env fault) —
        they are the remedy, not the disease — and register retirable so
        the coordinator can drain them once the queue empties.
        """
        proc = self._ctx.Process(
            target=run_worker,
            args=(self.config, self.factory, self.coordinator.address),
            kwargs={
                "name": f"elastic-{index}",
                "poll_interval": self.poll_interval,
                "heartbeat_interval": self.heartbeat_interval,
                "design": self.design,
                "env_fault": False,
                "elastic": True,
            },
            name=f"repro-work-elastic-{index}",
            daemon=True,
        )
        with self._proc_lock:
            if self._stopping:
                return
            self.worker_procs.append(proc)
            self._elastic_spawned += 1
            proc.start()

    def _respawn_rank(self, rank: int) -> None:
        """Supervisor spawner: fork a clean replacement serve process.

        The replacement restores the rank's checkpoint (when the runtime
        checkpoints at all) and re-registers; it never re-applies the
        fault plan — a fault models one intermittent failure, not a
        permanently broken host.
        """
        proc = self._rank_process(rank, fault_plan=None, env_fault=False)
        with self._proc_lock:
            if self._stopping:
                return
            self.server_procs.append(proc)
            proc.start()

    def _all_procs(self) -> List:
        with self._proc_lock:
            return list(self.server_procs) + list(self.worker_procs)


def assemble_results(
    config: StudyConfig, coordinator: Coordinator, runtime=None
) -> StudyResults:
    """Results from a completed coordinator (loopback or CLI launch).

    Identical shape to the process runtime's parent-side reduction: the
    ranks already computed their index maps and convergence scalar; here
    we only restore states, concatenate, and max-reduce.
    """
    server = MelissaServer(config)
    for rank in server.ranks:
        rank.restore_state(coordinator.rank_states[rank.rank])
    if runtime is not None:
        runtime.server = server
    widths = [coordinator.rank_widths[r] for r in sorted(coordinator.rank_widths)]
    valid = [w for w in widths if not np.isnan(w)]
    return StudyResults.from_server(
        server,
        parameter_names=tuple(config.space.names),
        rank_maps=[coordinator.rank_maps[r] for r in sorted(coordinator.rank_maps)],
        max_interval_width=max(valid) if valid else float("inf"),
        abandoned_groups=sorted(coordinator.abandoned),
    )
