"""Distributed driver: server ranks and group workers as OS processes.

This is the deployment shape of the paper — independent processes
connected only by sockets — driven end to end.  Two modes share all of
the machinery in :mod:`repro.net`:

* **loopback** (this class): :meth:`DistributedRuntime.run` forks every
  ``repro serve``-equivalent rank process and ``repro work``-equivalent
  group worker on this host, connects them over 127.0.0.1 TCP, and
  assembles :class:`~repro.core.results.StudyResults` exactly like the
  other runtimes.  ``SensitivityStudy.run(runtime="distributed")`` lands
  here; it is what tests and CI exercise.
* **multi-host** (the CLI): ``repro launch`` runs only the coordinator;
  ``repro serve --rank K`` / ``repro work`` processes started on any
  machine dial in.  Same wire protocol, same coordinator — the loopback
  mode is literally the multi-host mode with the fork shortcut.

Statistics parity: each (cell, timestep) lives on exactly one rank and
group folds commute, so results match the sequential driver to tight
floating-point tolerance; the integration tests assert rtol 1e-10.

Fault path: a killed group worker drops its control connection; the
coordinator resubmits the in-flight group, ranks forget its staged
partials, and replay protection keeps the statistics exact
(Sec. 4.2.1/4.2.2) — asserted by the kill test.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional

import numpy as np

from repro.core.config import StudyConfig
from repro.core.group import SimulationFactory
from repro.core.results import StudyResults
from repro.core.server import MelissaServer
from repro.net.coordinator import Coordinator
from repro.net.serve import run_server_rank
from repro.net.worker import run_worker
from repro.sampling.pickfreeze import draw_design


class DistributedRuntime:
    """Socket-transport execution of one study (loopback convenience).

    Parameters
    ----------
    nworkers:
        Group-worker process count (the "machine" capacity).
    host, port:
        Coordinator bind address (port 0 = ephemeral); rank data
        listeners bind ephemeral ports on the same interface.
    checkpoint_dir:
        When set, every rank process checkpoints/restores its own file
        there on ``config.checkpoint_interval`` cadence.
    fault_kill_after:
        Test hook forwarded to the coordinator: SIGKILL the worker that
        receives the Nth group assignment, exercising resubmission.
    """

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        nworkers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.005,
        heartbeat_interval: Optional[float] = None,
        checkpoint_dir=None,
        fault_kill_after: Optional[int] = None,
    ):
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "DistributedRuntime's loopback mode requires the fork start "
                "method (Linux/macOS): simulation factories (closures) are "
                "inherited, not pickled; on other platforms run the CLI "
                "processes (repro serve / repro work / repro launch) instead"
            )
        self.config = config
        self.factory = factory
        self.nworkers = nworkers
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            config.heartbeat_interval if heartbeat_interval is None
            else heartbeat_interval
        )
        self.checkpoint_dir = checkpoint_dir
        self.fault_kill_after = fault_kill_after
        self._ctx = mp.get_context("fork")
        self.design = draw_design(
            config.space, config.ngroups, seed=config.seed,
            method=config.sampling_method,
        )
        self.coordinator: Optional[Coordinator] = None
        self.server_procs: List = []
        self.worker_procs: List = []

    # ------------------------------------------------------------------ #
    def run(self, timeout: float = 300.0) -> StudyResults:
        """Spawn ranks + workers, coordinate, assemble results."""
        # warm the compiled-kernel cache before forking (same rationale as
        # ProcessRuntime: avoid duplicate C compiles in every rank)
        from repro.kernels import resolve_spec, warm_compiled_backends

        if resolve_spec(self.config.kernel) in ("auto", "cext"):
            warm_compiled_backends()

        coordinator = Coordinator(
            self.config,
            host=self.host,
            port=self.port,
            fault_kill_after=self.fault_kill_after,
        ).start()
        self.coordinator = coordinator
        ctx = self._ctx
        self.server_procs = [
            ctx.Process(
                target=run_server_rank,
                args=(rank, self.config, coordinator.address),
                kwargs={
                    "data_host": self.host,
                    "checkpoint_dir": self.checkpoint_dir,
                    "poll_interval": self.poll_interval,
                    "heartbeat_interval": self.heartbeat_interval,
                },
                name=f"repro-serve-{rank}",
                daemon=True,
            )
            for rank in range(self.config.server_ranks)
        ]
        nworkers = min(self.nworkers, self.config.ngroups)
        self.worker_procs = [
            ctx.Process(
                target=run_worker,
                args=(self.config, self.factory, coordinator.address),
                kwargs={
                    "name": f"worker-{i}",
                    "poll_interval": self.poll_interval,
                    "heartbeat_interval": self.heartbeat_interval,
                    "design": self.design,
                },
                name=f"repro-work-{i}",
                daemon=True,
            )
            for i in range(nworkers)
        ]
        try:
            for proc in self.server_procs + self.worker_procs:
                proc.start()
            coordinator.wait(timeout=timeout)
            for proc in self.server_procs + self.worker_procs:
                proc.join(timeout=10.0)
        finally:
            coordinator.close()
            for proc in self.server_procs + self.worker_procs:
                if proc.is_alive():
                    proc.terminate()
        return assemble_results(self.config, coordinator, runtime=self)


def assemble_results(
    config: StudyConfig, coordinator: Coordinator, runtime=None
) -> StudyResults:
    """Results from a completed coordinator (loopback or CLI launch).

    Identical shape to the process runtime's parent-side reduction: the
    ranks already computed their index maps and convergence scalar; here
    we only restore states, concatenate, and max-reduce.
    """
    server = MelissaServer(config)
    for rank in server.ranks:
        rank.restore_state(coordinator.rank_states[rank.rank])
    if runtime is not None:
        runtime.server = server
    widths = [coordinator.rank_widths[r] for r in sorted(coordinator.rank_widths)]
    valid = [w for w in widths if not np.isnan(w)]
    return StudyResults.from_server(
        server,
        parameter_names=tuple(config.space.names),
        rank_maps=[coordinator.rank_maps[r] for r in sorted(coordinator.rank_maps)],
        max_interval_width=max(valid) if valid else float("inf"),
        abandoned_groups=sorted(coordinator.abandoned),
    )
