"""Deterministic virtual-time driver for a full Melissa study.

One loop owns the clock and steps, in order: the batch scheduler, the
launcher's submission pump, every running group executor (one timestep
per tick each), the server's message draining, and the periodic tasks
(heartbeats, timeout scans, zombie scans, checkpoints, convergence
checks, fault injection).  Because everything is driven from one place
with a virtual clock, runs are exactly reproducible — including the
fault-recovery paths, which is how the Sec. 4.2 protocols are tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.checkpoint import CheckpointManager
from repro.core.config import StudyConfig
from repro.core.convergence import ConvergenceController, ConvergenceDecision
from repro.core.group import (
    GroupCrashed,
    GroupExecutor,
    GroupState,
    SimulationFactory,
    SimulationGroup,
)
from repro.core.launcher import MelissaLauncher
from repro.core.results import StudyResults
from repro.core.server import MelissaServer
from repro.faults import FaultPlan
from repro.scheduler import BatchScheduler, JobState
from repro.transport.router import Router


@dataclass
class TimelineSample:
    """One observation of the campaign state (feeds Fig.-6-style plots)."""

    time: float
    running_groups: int
    pending_groups: int
    finished_groups: int
    nodes_in_use: int
    messages_processed: int


class StudyIncomplete(RuntimeError):
    """Raised when the virtual-time budget expires before completion."""


class _DuplicatingRouter(Router):
    """Router that delivers selected groups' messages twice (fault plan)."""

    def __init__(self, *args, duplicated_groups=frozenset(), **kwargs):
        super().__init__(*args, **kwargs)
        self._duplicated = set(duplicated_groups)

    def deliver(self, msg, blocking: bool = False) -> bool:
        ok = super().deliver(msg, blocking=blocking)
        if ok and msg.group_id in self._duplicated:
            super().deliver(msg, blocking=blocking)
        return ok


class SequentialRuntime:
    """Deterministic in-process execution of one study.

    Parameters
    ----------
    config:
        The study description.
    factory:
        Builds member simulations: ``factory(params_vector, sim_id)``.
    checkpoint_dir:
        Where server checkpoints go; required when the fault plan contains
        server crashes.  ``None`` disables checkpointing.
    fault_plan:
        Failures to inject (default: none).
    tick:
        Virtual seconds per loop iteration.
    steps_per_tick:
        Group timesteps attempted per tick (compute speed knob).
    """

    def __init__(
        self,
        config: StudyConfig,
        factory: SimulationFactory,
        checkpoint_dir=None,
        fault_plan: Optional[FaultPlan] = None,
        convergence: Optional[ConvergenceController] = None,
        tick: float = 1.0,
        steps_per_tick: int = 1,
    ):
        if tick <= 0 or steps_per_tick < 1:
            raise ValueError("tick must be > 0 and steps_per_tick >= 1")
        self.config = config
        self.factory = factory
        self.fault_plan = fault_plan or FaultPlan()
        self.tick = tick
        self.steps_per_tick = steps_per_tick
        self.scheduler = BatchScheduler(
            total_nodes=config.total_nodes, max_pending=config.max_pending_jobs
        )
        self.launcher = MelissaLauncher(config, self.scheduler)
        self.convergence = convergence or ConvergenceController(
            threshold=config.convergence_threshold
        )
        self.checkpoints = (
            CheckpointManager(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.fault_plan.server_crashes and self.checkpoints is None:
            raise ValueError("server-crash faults require a checkpoint_dir")

        self.server: Optional[MelissaServer] = None
        self.router: Optional[Router] = None
        self.executors: Dict[int, GroupExecutor] = {}
        self._job_of_group: Dict[int, int] = {}
        self.now = 0.0
        self.timeline: List[TimelineSample] = []
        self._last_checkpoint = 0.0
        self._last_convergence_check = 0.0
        self._server_crashes_fired = 0
        self._server_down = False
        self.stopped_early = False

    # ------------------------------------------------------------------ #
    def run(self, max_time: float = 1e7) -> StudyResults:
        """Drive the study to completion (or early convergence stop)."""
        self.launcher.submit_server(self.now)
        while self.now <= max_time:
            self._tick_once()
            if self._study_done():
                break
        else:
            raise StudyIncomplete(
                f"study not finished after {max_time} virtual seconds"
            )
        if self.server is None:
            raise StudyIncomplete("server never started")
        return StudyResults.from_server(
            self.server,
            parameter_names=tuple(self.config.space.names),
            abandoned_groups=self.launcher.abandoned_groups,
        )

    # ------------------------------------------------------------------ #
    def _tick_once(self) -> None:
        now = self.now
        # 1. scheduler decisions
        for job in self.scheduler.tick(now):
            self._on_job_started(job)
        # 2. launcher submission pump
        self.launcher.pump_submissions(now)
        # 3. fault: scheduled server crash
        crash = self.fault_plan.server_crash_due(now, self._server_crashes_fired)
        if crash is not None and self.server is not None and not self._server_down:
            self._server_crashes_fired += 1
            self._server_down = True  # heartbeats stop; launcher will notice
        # 4. step groups, 5. server drains
        if self.server is not None and not self._server_down:
            self._step_groups(now)
            self._drain_server(now)
            self.launcher.record_heartbeat(now)
            self._periodic_tasks(now)
        # 6. launcher-side server heartbeat check
        if self._server_down and self.launcher.server_timed_out(now):
            self._recover_server(now)
        self._sample_timeline(now)
        self.now = now + self.tick

    # ------------------------------------------------------------------ #
    def _on_job_started(self, job) -> None:
        payload = job.payload or {}
        if payload.get("kind") == "server":
            self._start_server()
        elif payload.get("kind") == "group":
            self._start_group(payload["group_id"], payload.get("attempt", 0), job)

    def _start_server(self) -> None:
        if self.checkpoints is not None and self.checkpoints.exists():
            self.server = self.checkpoints.restore(self.config)
        else:
            self.server = MelissaServer(self.config)
        self.router = _DuplicatingRouter(
            self.server.partition,
            channel_capacity_bytes=self.config.channel_capacity_bytes,
            duplicated_groups=self.fault_plan.duplicated_groups,
        )
        self._server_down = False
        # groups already integrated (restored checkpoint) are final
        self.launcher.mark_finished(self.server.finished_groups())

    def _start_group(self, group_id: int, attempt: int, job) -> None:
        if self.server is None or self.router is None or self._server_down:
            # job started while the server is down; it will be detected as
            # a zombie and restarted after recovery
            return
        group = SimulationGroup.from_design(self.launcher.design, group_id)
        crash = self.fault_plan.crash_for(group_id, attempt)
        straggler = self.fault_plan.straggler_for(group_id, attempt)
        executor = GroupExecutor(
            group,
            self.factory,
            self.config,
            self.router,
            fail_at_timestep=None if crash is None else crash.at_timestep,
            zombie=self.fault_plan.is_zombie(group_id, attempt),
            straggler_factor=1 if straggler is None else straggler.factor,
        )
        executor.initialize()
        self.executors[group_id] = executor
        self._job_of_group[group_id] = job.job_id

    # ------------------------------------------------------------------ #
    def _step_groups(self, now: float) -> None:
        # jobs the scheduler terminated (walltime kill, launcher cancel)
        # take their executor down with them — the process is gone; the
        # standard timeout/zombie detection then restarts the group
        # (Sec. 4.2.2: the protocol "is also effective when the batch
        # scheduler discards or kills the job").
        for group_id, executor in list(self.executors.items()):
            job_id = self._job_of_group.get(group_id)
            job = self.scheduler.jobs.get(job_id) if job_id is not None else None
            if job is not None and job.state.terminal and (
                executor.state not in (GroupState.FINISHED,)
            ):
                del self.executors[group_id]
                self._job_of_group.pop(group_id, None)
        for group_id, executor in list(self.executors.items()):
            if executor.state in (GroupState.FINISHED, GroupState.CRASHED):
                continue
            try:
                for _ in range(self.steps_per_tick):
                    state = executor.process_step()
                    if state != GroupState.RUNNING:
                        break
            except GroupCrashed:
                self._on_group_crash(group_id, now)
                continue
            if executor.state == GroupState.FINISHED:
                self._on_group_finished(group_id, now)

    def _on_group_crash(self, group_id: int, now: float) -> None:
        job_id = self._job_of_group.pop(group_id, None)
        if job_id is not None:
            job = self.scheduler.jobs.get(job_id)
            if job is not None and job.state == JobState.RUNNING:
                self.scheduler.fail(job_id, now)
        del self.executors[group_id]
        # note: the server has NOT been told; it will detect the silence
        # via the inter-message timeout, exactly as in the paper

    def _on_group_finished(self, group_id: int, now: float) -> None:
        job_id = self._job_of_group.pop(group_id, None)
        if job_id is not None:
            job = self.scheduler.jobs.get(job_id)
            if job is not None and job.state == JobState.RUNNING:
                self.scheduler.complete(job_id, now)
        del self.executors[group_id]

    def _drain_server(self, now: float) -> None:
        assert self.server is not None and self.router is not None
        for rank in self.server.ranks:
            channel = self.router.inbound[rank.rank]
            for msg in channel.drain():
                rank.handle(msg, now)

    # ------------------------------------------------------------------ #
    def _periodic_tasks(self, now: float) -> None:
        assert self.server is not None
        # group liveness: server-side inter-message timeout (Sec. 4.2.2)
        for group_id in self.server.check_timeouts(now, self.config.group_timeout):
            self._restart_group(group_id, now)
        # zombie scan: launcher-side startup timeout
        for group_id in self.launcher.detect_zombies(
            self.server.started_groups(), now
        ):
            self._restart_group(group_id, now)
        # completion bookkeeping
        self.launcher.mark_finished(self.server.finished_groups())
        # checkpoints
        if (
            self.checkpoints is not None
            and now - self._last_checkpoint >= self.config.checkpoint_interval
        ):
            self.checkpoints.save(self.server)
            self._last_checkpoint = now
        # convergence control
        if (
            self.config.convergence_threshold is not None
            and now - self._last_convergence_check
            >= self.config.convergence_check_interval
        ):
            self._last_convergence_check = now
            decision = self.convergence.assess(
                self.server.max_interval_width(),
                self.server.groups_integrated(),
                len(self.launcher.outstanding_groups),
            )
            if decision == ConvergenceDecision.STOP:
                self._stop_early(now)
            elif decision == ConvergenceDecision.EXTEND:
                # intervals still too wide and the planned groups are
                # exhausted: draw fresh rows on-the-fly (Sec. 4.1.5)
                self.launcher.extend_study(self.convergence.extend_batch, now)

    def _restart_group(self, group_id: int, now: float) -> None:
        executor = self.executors.pop(group_id, None)
        if executor is not None:
            self._job_of_group.pop(group_id, None)
        assert self.server is not None
        self.server.forget_group(group_id)
        self.launcher.restart_group(group_id, now)

    def _stop_early(self, now: float) -> None:
        """Convergence reached: cancel all outstanding work (Sec. 4.1.5)."""
        self.stopped_early = True
        for group_id, executor in list(self.executors.items()):
            job_id = self._job_of_group.pop(group_id, None)
            if job_id is not None:
                job = self.scheduler.jobs.get(job_id)
                if job is not None and not job.state.terminal:
                    self.scheduler.cancel(job_id, now)
            del self.executors[group_id]
        for job in list(self.scheduler.pending_jobs):
            self.scheduler.cancel(job.job_id, now)
        self.launcher.cancel_outstanding()

    # ------------------------------------------------------------------ #
    def _recover_server(self, now: float) -> None:
        """Heartbeat lost: the launcher kills and resubmits everything
        (Sec. 4.2.3); the server job restart restores the checkpoint."""
        finished = (
            self.checkpoints.restore(self.config).finished_groups()
            if self.checkpoints is not None and self.checkpoints.exists()
            else set()
        )
        self.executors.clear()
        self._job_of_group.clear()
        self.server = None
        self.router = None
        self.launcher.restart_server(finished, now)

    # ------------------------------------------------------------------ #
    def _study_done(self) -> bool:
        if self.stopped_early:
            return True
        done = (
            self.server is not None
            and not self._server_down
            and self.launcher.study_complete()
            and not self.executors
        )
        if done and self.convergence.extend_batch > 0:
            # the planned groups ran out before the intervals tightened:
            # grow the study instead of finishing (Sec. 4.1.5)
            decision = self.convergence.assess(
                self.server.max_interval_width(),
                self.server.groups_integrated(),
                0,
            )
            if decision == ConvergenceDecision.EXTEND:
                self.launcher.extend_study(self.convergence.extend_batch, self.now)
                return False
        return done

    def _sample_timeline(self, now: float) -> None:
        running = sum(
            1
            for e in self.executors.values()
            if e.state in (GroupState.RUNNING, GroupState.BLOCKED)
        )
        finished = (
            len(self.server.finished_groups()) if self.server is not None else 0
        )
        processed = (
            sum(r.messages_processed for r in self.server.ranks)
            if self.server is not None
            else 0
        )
        self.timeline.append(
            TimelineSample(
                time=now,
                running_groups=running,
                pending_groups=len(self.scheduler.pending_jobs),
                finished_groups=finished,
                nodes_in_use=self.scheduler.nodes_in_use,
                messages_processed=processed,
            )
        )
