#!/usr/bin/env python
"""Quickstart: in-transit Sobol' indices for the Ishigami function.

Runs a full Melissa-style study — launcher, batch scheduler, simulation
groups streaming to the in-transit server — on the classic Ishigami test
function, then compares the iteratively-computed indices against their
closed-form values and prints the Fisher-z confidence intervals.

    python examples/quickstart.py
"""

import numpy as np

from repro import SensitivityStudy
from repro.sobol import IshigamiFunction


def main() -> None:
    fn = IshigamiFunction()
    ngroups = 3000  # 3000 pick-freeze rows -> 3000 x (3+2) = 15000 runs

    print(f"Ishigami study: {ngroups} groups, {ngroups * 5} simulations")
    study = SensitivityStudy.for_function(fn, ngroups=ngroups, seed=42)
    results = study.run()

    print(f"\ngroups integrated : {results.groups_integrated}")
    print(f"messages processed: {results.provenance['messages_processed']}")
    print(f"intermediate files: 0 (that is the point)\n")

    print(f"{'parameter':<10} {'S (est)':>9} {'S (exact)':>10} "
          f"{'95% CI':>20} {'ST (est)':>9} {'ST (exact)':>10}")
    for k, name in enumerate(results.parameter_names):
        s = results.first_order[k, 0, 0]
        st = results.total_order[k, 0, 0]
        lo, hi = results.first_order_interval(k, 0)
        print(
            f"{name:<10} {s:9.4f} {fn.first_order[k]:10.4f} "
            f"[{lo.flat[0]:8.4f},{hi.flat[0]:8.4f}] "
            f"{st:9.4f} {fn.total_order[k]:10.4f}"
        )

    err_s = np.abs(results.first_order[:, 0, 0] - fn.first_order).max()
    err_st = np.abs(results.total_order[:, 0, 0] - fn.total_order).max()
    print(f"\nmax |error| first-order: {err_s:.4f}, total: {err_st:.4f}")
    interactions = results.interaction_residual_map(0)[0]
    print(f"interaction residual 1 - sum(S_k): {interactions:.4f} "
          f"(exact: {1.0 - fn.first_order.sum():.4f})")


if __name__ == "__main__":
    main()
