#!/usr/bin/env python
"""The paper's use case: dye injection into a tube-bundle water channel.

Runs a laptop-scale version of the Sec. 5.2 experiment — a pick-freeze
ensemble of convection-diffusion simulations on the frozen tube-bundle
flow, six varying injection parameters — and renders the ubiquitous
first-order Sobol' maps (Fig. 7) and the variance map (Fig. 8) at a late
timestep as ASCII heatmaps.

    python examples/tube_bundle_study.py
"""

import numpy as np

from repro import SensitivityStudy
from repro.report import render_field_slice
from repro.solver import TubeBundleCase


def main() -> None:
    case = TubeBundleCase(nx=48, ny=24, ntimesteps=10, total_time=1.5)
    ngroups = 40
    print(
        f"tube bundle: {case.ncells} cells, {case.ntimesteps} timesteps, "
        f"{ngroups} groups x 8 simulations = {ngroups * 8} runs"
    )
    bytes_avoided = case.study_bytes(ngroups)
    print(f"intermediate data avoided: {bytes_avoided / 1e6:.1f} MB "
          f"(the paper's campaign: 48 TB)\n")

    study = SensitivityStudy.for_tube_bundle(
        case, ngroups=ngroups, seed=7, server_ranks=4, client_ranks=2
    )
    results = study.run(steps_per_tick=2)
    print(results.summary(), "\n")

    # the paper shows timestep 80 of 100; use the same 80% mark
    step = int(0.8 * case.ntimesteps)
    dims = case.mesh.dims
    for k, name in enumerate(results.parameter_names):
        s_map = np.nan_to_num(results.first_order_map(k, step))
        print(render_field_slice(
            s_map, dims, width=48, height=12,
            title=f"\nFig.7-style first-order Sobol' map: {name} (t={step})",
        ))

    print(render_field_slice(
        results.variance[step], dims, width=48, height=12,
        title=f"\nFig.8-style variance map (t={step})",
    ))

    resid = np.nan_to_num(results.interaction_residual_map(step))
    var = results.variance[step]
    meaningful = var > 0.01 * np.nanmax(var)
    print(
        f"\ninteraction residual 1-sum(S) over meaningful cells: "
        f"mean {resid[meaningful].mean():.3f} "
        f"(small => first-order indices tell the whole story, Sec. 5.5)"
    )


if __name__ == "__main__":
    main()
