#!/usr/bin/env python
"""Convergence-driven early stopping (paper Sec. 3.4 / 4.1.5).

The server computes Fisher-z confidence intervals at every update; once
the widest interval over all parameters (and cells, and timesteps) drops
below a target, the launcher cancels every pending and running group —
no more compute is burned than the accuracy target requires.

This demo asks for a loose target so the 2000-group study stops early,
then reports how many groups were actually consumed and verifies the
final interval really is below the target.

    python examples/convergence_control.py
"""

from repro.core import StudyConfig
from repro.core.convergence import ConvergenceController
from repro.core.group import FunctionSimulation
from repro.runtime import SequentialRuntime
from repro.sobol import IshigamiFunction


def main() -> None:
    fn = IshigamiFunction()
    target = 0.25  # stop when every 95% CI is narrower than this

    config = StudyConfig(
        space=fn.space(), ngroups=2000, ntimesteps=1, ncells=1,
        server_ranks=1, client_ranks=1, seed=3,
        total_nodes=66, nodes_per_group=1, server_nodes=2,
        convergence_threshold=target, convergence_check_interval=2.0,
    )

    def factory(params, sim_id):
        return FunctionSimulation(fn, params, ntimesteps=1, simulation_id=sim_id)

    controller = ConvergenceController(threshold=target, min_groups=30)
    runtime = SequentialRuntime(config, factory, convergence=controller)
    results = runtime.run()

    print(f"convergence target (max CI width): {target}")
    print(f"stopped early                    : {runtime.stopped_early}")
    print(f"groups consumed                  : {results.groups_integrated} / 2000")
    print(f"groups cancelled                 : "
          f"{len(runtime.launcher.cancelled_groups)}")
    print(f"final max CI width               : {results.max_interval_width:.4f}")
    print("\nconvergence history (groups -> width):")
    for groups, width in controller.history:
        bar = "#" * int(min(width, 2.0) * 30)
        print(f"  {groups:5d}  {width:7.4f}  {bar}")

    assert results.max_interval_width <= target
    savings = 1.0 - results.groups_integrated / 2000
    print(f"\ncompute saved by stopping at the accuracy target: {savings:.0%}")


if __name__ == "__main__":
    main()
