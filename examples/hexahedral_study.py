#!/usr/bin/env python
"""3-D hexahedral study: the paper's mesh dimensionality, laptop-sized.

The paper computes ubiquitous Sobol' indices on 9.6M *hexahedra*; this
example runs the extruded 3-D tube-bundle case — true (nx, ny, nz) dye
fields, spanwise diffusion from a z-confined injector — through the same
in-transit pipeline, then slices the 3-D Sobol' maps at mid-depth and at
a side layer to show the spanwise structure.

    python examples/hexahedral_study.py
"""

import numpy as np

from repro import SensitivityStudy
from repro.report import ascii_heatmap
from repro.solver import TubeBundleCase3D


def main() -> None:
    case = TubeBundleCase3D(
        nx=32, ny=16, nz=6, ntimesteps=6, total_time=1.2, injector_span=0.5
    )
    ngroups = 12
    print(
        f"hexahedral study: {case.mesh.dims} = {case.ncells} cells, "
        f"{case.ntimesteps} timesteps, {ngroups} groups x 8 simulations"
    )
    print(f"ensemble bytes avoided: {case.study_bytes(ngroups) / 1e6:.1f} MB\n")

    study = SensitivityStudy.for_tube_bundle(
        case, ngroups=ngroups, seed=5, server_ranks=4, client_ranks=2
    )
    results = study.run(steps_per_tick=3)
    print(results.summary())

    step = case.ntimesteps - 1
    nz = case.mesh.dims[2]
    k = 0  # upper_concentration
    s_grid = case.mesh.to_grid(np.nan_to_num(results.first_order_map(k, step)))
    var_grid = case.mesh.to_grid(results.variance[step])

    print(ascii_heatmap(
        s_grid[:, :, nz // 2], width=32, height=12, vmin=0, vmax=1,
        title=f"\nS({results.parameter_names[k]}) at mid-depth (z={nz // 2})",
    ))
    print(ascii_heatmap(
        var_grid[:, :, nz // 2], width=32, height=12,
        title="\nVar(Y) at mid-depth",
    ))
    print(ascii_heatmap(
        var_grid[:, :, 0], width=32, height=12,
        title="\nVar(Y) at the side wall (z=0): dye arrives only by "
              "spanwise diffusion",
    ))

    mid = var_grid[:, :, nz // 2].max()
    side = var_grid[:, :, 0].max()
    print(f"\npeak variance mid-depth: {mid:.4f}, side wall: {side:.4f} "
          f"(ratio {mid / max(side, 1e-12):.1f}x)")


if __name__ == "__main__":
    main()
