#!/usr/bin/env python
"""Fault-tolerance demo: crashes, zombies, duplicates, a server failure.

Runs the same Ishigami study twice — once clean, once under an aggressive
fault plan (two group crashes, one zombie group, duplicated messages, and
a full Melissa Server crash recovered from checkpoint) — and shows that
the final statistics are *identical*: the Sec. 4.2 protocols (timeout
detection, kill-and-resubmit, discard-on-replay, checkpoint/restart) make
failures invisible to the science.

    python examples/fault_tolerant_study.py
"""

import tempfile

import numpy as np

from repro.core import StudyConfig
from repro.core.group import FunctionSimulation
from repro.faults import (
    DuplicateDelivery,
    FaultPlan,
    GroupCrash,
    GroupZombie,
    ServerCrash,
)
from repro.runtime import SequentialRuntime
from repro.sobol import IshigamiFunction


def make_config(fn):
    return StudyConfig(
        space=fn.space(), ngroups=60, ntimesteps=8, ncells=1,
        server_ranks=1, client_ranks=1, seed=11,
        group_timeout=20.0, zombie_timeout=20.0, server_timeout=12.0,
        checkpoint_interval=5.0, total_nodes=34,
    )


def factory_for(fn):
    def factory(params, sim_id):
        return FunctionSimulation(fn, params, ntimesteps=8, simulation_id=sim_id)
    return factory


def main() -> None:
    fn = IshigamiFunction()

    print("clean run...")
    clean = SequentialRuntime(make_config(fn), factory_for(fn)).run()

    plan = FaultPlan(
        group_crashes=[GroupCrash(group_id=3, at_timestep=4),
                       GroupCrash(group_id=17, at_timestep=0)],
        group_zombies=[GroupZombie(group_id=9)],
        duplicate_deliveries=[DuplicateDelivery(group_id=5)],
        server_crashes=[ServerCrash(at_time=9.0)],
    )
    print("faulted run: 2 group crashes, 1 zombie, duplicated messages, "
          "1 server crash...")
    with tempfile.TemporaryDirectory() as ckpt_dir:
        runtime = SequentialRuntime(
            make_config(fn), factory_for(fn),
            fault_plan=plan, checkpoint_dir=ckpt_dir,
        )
        faulted = runtime.run()

    print("\n--- recovery report -------------------------------------")
    print(f"groups integrated  : {faulted.groups_integrated} / 60")
    print(f"server restarts    : {runtime.launcher.server_restarts}")
    retried = [g for g, r in runtime.launcher.records.items() if r.retries]
    print(f"groups restarted   : {retried}")
    print(f"messages discarded : "
          f"{faulted.provenance['messages_discarded']} (replay protection)")

    diff = np.abs(faulted.first_order - clean.first_order).max()
    print("\n--- statistics integrity ---------------------------------")
    print(f"max |S_faulted - S_clean| = {diff:.2e}")
    assert diff < 1e-12, "fault recovery must not change the statistics"
    print("faulted and clean studies are statistically IDENTICAL.")
    print("\nfirst-order indices:", np.round(faulted.first_order[:, 0, 0], 4))
    print("exact              :", np.round(fn.first_order, 4))


if __name__ == "__main__":
    main()
