#!/usr/bin/env python
"""Replay of the paper's Curie campaign through the performance model.

Reproduces the two Sec. 5.3 experiments — Melissa Server on 15 nodes
(saturated, Fig. 6a/b) and on 32 nodes (healthy, Fig. 6c/d) — with the
calibrated discrete-event model, prints ASCII versions of the Fig. 6
panels, and the paper-vs-model summary table.

    python examples/curie_campaign.py
"""

from repro.perfmodel import (
    CampaignSimulator,
    classical_group_time,
    no_output_group_time,
    paper_campaign,
)
from repro.report import ascii_series, comparison_table


PAPER = {
    15: dict(wall_clock_hours=2.5, simulation_cpu_hours=56_487,
             server_cpu_hours=602, server_cpu_percent=1.0,
             peak_running_groups=56, peak_cores=28_912),
    32: dict(wall_clock_hours=1.45, simulation_cpu_hours=34_082,
             server_cpu_hours=742, server_cpu_percent=2.1,
             peak_running_groups=55, peak_cores=28_672),
}


def main() -> None:
    results = {}
    for nodes in (15, 32):
        result = CampaignSimulator(paper_campaign(nodes)).run()
        results[nodes] = result
        summary = result.summary()

        print("=" * 72)
        print(f"Melissa Server on {nodes} nodes "
              f"({'Fig. 6a/b' if nodes == 15 else 'Fig. 6c/d'})")
        print("=" * 72)
        print(ascii_series(
            result.times, result.running_groups,
            title=f"\nrunning simulation groups vs time (peak "
                  f"{summary['peak_running_groups']}, "
                  f"{summary['peak_cores']} cores)",
            ylabel="groups ", height=10,
        ))
        print(ascii_series(
            result.times, result.avg_group_seconds,
            title="\navg group execution time vs time "
                  f"(classical {classical_group_time(result.params):.0f}s, "
                  f"no-output {no_output_group_time(result.params):.0f}s)",
            ylabel="seconds ", height=10,
        ))
        entries = [
            (key, PAPER[nodes][key], summary[key]) for key in PAPER[nodes]
        ]
        print()
        print(comparison_table(entries, title=f"paper vs model ({nodes} nodes)"))
        print()

    speedup = (results[15].wall_clock_seconds / results[32].wall_clock_seconds)
    print("=" * 72)
    print(f"15 -> 32 node speed-up: model {speedup:.2f}x, paper ~1.72x")
    print(f"data streamed without touching disk: "
          f"{results[32].summary()['streamed_tb']:.1f} TB (paper: 48 TB)")
    print(f"server memory: {results[32].summary()['server_memory_gb']:.0f} GB "
          f"(paper: ~491 GB)")


if __name__ == "__main__":
    main()
