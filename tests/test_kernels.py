"""Co-moment kernel backends: parity, selection, fallback, autotune.

Every available backend must reproduce the scalar reference estimator to
rtol 1e-10 across the regimes that stress different code paths: ragged
micro-batches (force-folds and flush remainders), single-group folds
(batch_size=1, the degenerate contraction), and checkpoint round-trips
(state is backend-agnostic).  Selection covers the StudyConfig /
REPRO_KERNEL / auto precedence and the graceful fallback when an
optional backend (numba, cext) is missing on the host.
"""

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import (
    AutoKernel,
    EinsumKernel,
    available_backends,
    make_kernel,
    resolve_spec,
)
from repro.kernels import numba_backend
from repro.sobol.martinez import IterativeSobolEstimator, UbiquitousSobolField

RTOL = 1e-10
ATOL = 1e-12

BACKENDS = available_backends()


def random_stream(nparams, ntimesteps, ncells, ngroups, seed=0, loc=0.0, scale=1.0):
    rng = np.random.default_rng(seed)
    return rng.normal(loc=loc, scale=scale,
                      size=(ngroups, ntimesteps, nparams + 2, ncells))


def reference_forest(stream):
    ngroups, ntimesteps, m, ncells = stream.shape
    forest = [IterativeSobolEstimator(m - 2, (ncells,)) for _ in range(ntimesteps)]
    for g in range(ngroups):
        for t in range(ntimesteps):
            buf = stream[g, t]
            forest[t].update_group(buf[0], buf[1], list(buf[2:]))
    return forest


def assert_matches_reference(field, forest):
    for t in range(field.ntimesteps):
        np.testing.assert_allclose(
            field.first_order_all(t), forest[t].first_order(),
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            field.total_order_all(t), forest[t].total_order(),
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            field.variance_map(t), forest[t].output_variance,
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            field.mean_map(t), forest[t].output_mean, rtol=RTOL, atol=ATOL
        )


# --------------------------------------------------------------------- #
# parity: every backend x fold regimes
# --------------------------------------------------------------------- #
class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("nparams,ncells", [(2, 7), (6, 33), (1, 1), (9, 12)])
    def test_backend_matches_reference(self, backend, nparams, ncells):
        stream = random_stream(nparams, 2, ncells, 37, seed=nparams)
        field = UbiquitousSobolField(nparams, 2, ncells, kernel=backend)
        for g in range(37):
            for t in range(2):
                field.update_group_buffer(t, stream[g, t].copy())
        assert_matches_reference(field, reference_forest(stream))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ragged_micro_batches(self, backend):
        """Uneven arrival: force-folds via max_staged plus flush tails."""
        stream = random_stream(3, 4, 11, 29, seed=3)
        field = UbiquitousSobolField(
            3, 4, 11, kernel=backend, batch_size=8, max_staged=10
        )
        rng = np.random.default_rng(7)
        order = [(g, t) for g in range(29) for t in range(4)]
        rng.shuffle(order)
        for g, t in order:
            field.update_group_buffer(t, stream[g, t].copy())
        assert_matches_reference(field, reference_forest(stream))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_group_folds(self, backend):
        """batch_size=1: every fold is the degenerate one-slab batch."""
        stream = random_stream(2, 2, 5, 12, seed=11)
        field = UbiquitousSobolField(2, 2, 5, kernel=backend, batch_size=1)
        for g in range(12):
            for t in range(2):
                field.update_group_buffer(t, stream[g, t].copy())
        assert_matches_reference(field, reference_forest(stream))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_roundtrip_across_backends(self, backend):
        """State is backend-agnostic: fold on one backend, restore on
        another (and back), continue feeding, match the reference."""
        stream = random_stream(3, 2, 9, 30, seed=13)
        field = UbiquitousSobolField(3, 2, 9, kernel=backend)
        for g in range(14):
            for t in range(2):
                field.update_group_buffer(t, stream[g, t].copy())
        # restore onto the einsum baseline, then back onto the backend
        hop = UbiquitousSobolField.from_state_dict(
            field.state_dict(), kernel="einsum"
        )
        field = UbiquitousSobolField.from_state_dict(
            hop.state_dict(), kernel=backend
        )
        assert field.kernel_name in (backend, "einsum")
        for g in range(14, 30):
            for t in range(2):
                field.update_group_buffer(t, stream[g, t].copy())
        assert_matches_reference(field, reference_forest(stream))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merge_parity(self, backend):
        stream = random_stream(4, 2, 8, 40, seed=17)
        a = UbiquitousSobolField(4, 2, 8, kernel=backend)
        b = UbiquitousSobolField(4, 2, 8, kernel=backend)
        for g in range(40):
            for t in range(2):
                (a if g < 19 else b).update_group_buffer(t, stream[g, t].copy())
        a.merge(b)
        assert_matches_reference(a, reference_forest(stream))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_large_mean_stability(self, backend):
        """The exact-shift contraction stays Pebay-stable per backend."""
        stream = random_stream(3, 1, 6, 48, seed=5, loc=1e6, scale=1e-3)
        field = UbiquitousSobolField(3, 1, 6, kernel=backend)
        for g in range(48):
            field.update_group_buffer(0, stream[g, 0].copy())
        forest = reference_forest(stream)
        np.testing.assert_allclose(
            field.first_order_all(0), forest[0].first_order(),
            rtol=1e-7, atol=1e-7,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_noncontiguous_buffer_accepted(self, backend):
        """Strided views are staged via a contiguity copy, not rejected."""
        stream = random_stream(2, 1, 6, 10, seed=19)
        field = UbiquitousSobolField(2, 1, 6, kernel=backend)
        for g in range(10):
            transposed = np.asfortranarray(stream[g, 0])  # F-order view
            field.update_group_buffer(0, transposed)
        assert_matches_reference(field, reference_forest(stream))


# --------------------------------------------------------------------- #
# selection: precedence, env var, fallback, autotune
# --------------------------------------------------------------------- #
class TestSelection:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert resolve_spec(None) == "auto"
        assert resolve_spec("einsum") == "einsum"
        monkeypatch.setenv(kernels.ENV_VAR, "blas")
        assert resolve_spec(None) == "blas"
        assert resolve_spec("einsum") == "einsum"  # explicit beats env

    def test_env_var_reaches_field(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "einsum")
        field = UbiquitousSobolField(2, 1, 4)
        assert field.kernel_name == "einsum"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_spec("gpu")
        with pytest.raises(ValueError):
            UbiquitousSobolField(2, 1, 4, kernel="gpu")

    def test_config_validates_kernel(self):
        from repro.core.config import StudyConfig
        from repro.sampling import ParameterSpace, Uniform

        space = ParameterSpace(("a", "b"), (Uniform(0, 1), Uniform(0, 1)))
        with pytest.raises(ValueError):
            StudyConfig(space=space, ngroups=1, ntimesteps=1, ncells=4,
                        kernel="nonsense")
        cfg = StudyConfig(space=space, ngroups=1, ntimesteps=1, ncells=4,
                          kernel="einsum")
        assert cfg.kernel == "einsum"

    def test_einsum_always_available(self):
        assert "einsum" in BACKENDS
        assert isinstance(make_kernel("einsum", 3, 8, 64), EinsumKernel)

    def test_auto_tunes_to_available_backend(self):
        stream = random_stream(3, 1, 16, 24, seed=23)
        field = UbiquitousSobolField(3, 1, 16, kernel="auto", batch_size=8)
        assert field.kernel_name == "auto"  # not yet tuned
        for g in range(24):
            field.update_group_buffer(0, stream[g, 0].copy())
        field.flush()
        assert field.kernel_name in BACKENDS
        assert_matches_reference(field, reference_forest(stream))

    def test_auto_settles_on_einsum_for_tiny_folds(self):
        """A stream of nothing but sub-threshold folds locks in einsum."""
        from repro.kernels import _AUTOTUNE_SMALL_FOLD_LIMIT

        stream = random_stream(2, 1, 4, 40, seed=41)
        field = UbiquitousSobolField(2, 1, 4, kernel="auto", batch_size=2)
        for g in range(2 * _AUTOTUNE_SMALL_FOLD_LIMIT + 2):
            field.update_group_buffer(0, stream[g % 40, 0].copy())
        field.flush()
        assert field.kernel_name == "einsum"

    def test_auto_choice_cached_per_shape(self):
        key_stream = random_stream(2, 1, 8, 16, seed=29)
        a = UbiquitousSobolField(2, 1, 8, kernel="auto", batch_size=8)
        for g in range(16):
            a.update_group_buffer(0, key_stream[g, 0].copy())
        a.flush()
        chosen = a.kernel_name
        assert chosen in BACKENDS
        # a second field with the same (p, batch, block) shape reuses the
        # cached choice on its very first fold, without re-measuring
        b = UbiquitousSobolField(2, 1, 8, kernel="auto", batch_size=8)
        for g in range(8):
            b.update_group_buffer(0, key_stream[g, 0].copy())
        b.flush()
        assert b.kernel_name == chosen


# --------------------------------------------------------------------- #
# optional-backend fallback (numba is absent in the baked image)
# --------------------------------------------------------------------- #
class TestOptionalBackends:
    @pytest.mark.skipif(
        numba_backend.available(), reason="numba installed: no fallback here"
    )
    def test_numba_fallback_when_absent(self):
        """Requesting numba without numba warns and runs on einsum."""
        with pytest.warns(RuntimeWarning, match="numba"):
            field = UbiquitousSobolField(2, 1, 5, kernel="numba")
        assert field.kernel_name == "einsum"
        stream = random_stream(2, 1, 5, 20, seed=31)
        for g in range(20):
            field.update_group_buffer(0, stream[g, 0].copy())
        assert_matches_reference(field, reference_forest(stream))
        assert "numba" not in available_backends()

    @pytest.mark.skipif(
        not numba_backend.available(), reason="numba not installed"
    )
    def test_numba_parity(self):  # pragma: no cover - needs numba
        """With numba present the JIT backend must hit reference parity."""
        stream = random_stream(3, 2, 9, 25, seed=37)
        field = UbiquitousSobolField(3, 2, 9, kernel="numba")
        assert field.kernel_name == "numba"
        for g in range(25):
            for t in range(2):
                field.update_group_buffer(t, stream[g, t].copy())
        assert_matches_reference(field, reference_forest(stream))

    def test_cext_fallback_when_unbuildable(self, monkeypatch):
        """A host with no compiler degrades to einsum with a warning."""
        from repro.kernels import cext

        def no_compiler(*a, **k):
            raise RuntimeError("cext kernel unavailable: no compiler")

        monkeypatch.setattr(cext, "_load", no_compiler)
        with pytest.warns(RuntimeWarning, match="cext"):
            field = UbiquitousSobolField(2, 1, 5, kernel="cext")
        assert field.kernel_name == "einsum"


# --------------------------------------------------------------------- #
# end-to-end: kernel choice flows config -> server -> results
# --------------------------------------------------------------------- #
class TestStudyIntegration:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_study_results_invariant_to_backend(self, backend):
        from repro import SensitivityStudy
        from repro.sobol import IshigamiFunction

        def run(kern):
            study = SensitivityStudy.for_function(
                IshigamiFunction(), ngroups=120, seed=3, kernel=kern
            )
            return study.run()

        base = run("einsum")
        other = run(backend)
        np.testing.assert_allclose(
            other.first_order, base.first_order, rtol=1e-9
        )
        np.testing.assert_allclose(
            other.total_order, base.total_order, rtol=1e-9
        )
        assert other.max_interval_width == pytest.approx(
            base.max_interval_width, rel=1e-6, nan_ok=True
        )
