"""Tests for the calibrated campaign performance model.

The assertions encode the paper's Sec. 5.3/5.4 observations as *shape*
claims (who wins, roughly by how much, where the crossover falls) plus
the exact bookkeeping identities (memory, data volume, concurrency).
"""

import numpy as np
import pytest

from repro.perfmodel import (
    CampaignParameters,
    CampaignSimulator,
    classical_group_time,
    melissa_group_time_unblocked,
    no_output_group_time,
    paper_campaign,
)
from repro.perfmodel.baselines import classical_readback_seconds


@pytest.fixture(scope="module")
def run15():
    return CampaignSimulator(paper_campaign(15)).run()


@pytest.fixture(scope="module")
def run32():
    return CampaignSimulator(paper_campaign(32)).run()


class TestParameters:
    def test_paper_constants(self):
        p = paper_campaign(32)
        assert p.cores_per_group == 512
        assert p.server_cores == 512
        assert p.server_processes == 512
        assert p.max_concurrent_groups == 55
        assert paper_campaign(15).max_concurrent_groups == 56

    def test_memory_model_matches_paper(self):
        """Paper: ~491 GB server memory, 959 MB per process (512 procs)."""
        p = paper_campaign(32)
        assert p.server_memory_bytes / 1e9 == pytest.approx(491, rel=0.05)
        assert p.checkpoint_bytes_per_process / 1e6 == pytest.approx(959, rel=0.05)

    def test_streamed_data_magnitude(self):
        """Paper reports 48 TB treated; the float64 accounting gives 61 TB
        (the paper's figure is consistent with mixed precision) — same
        order, both utterly impractical to store."""
        p = paper_campaign(32)
        assert 40 < p.total_streamed_bytes / 1e12 < 70

    def test_checkpoint_time_model(self):
        """Paper: 2.75 s write, 7.24 s read per process."""
        p = paper_campaign(32)
        assert p.checkpoint_seconds_per_process == pytest.approx(2.75, rel=0.05)
        assert p.restart_read_seconds_per_process == pytest.approx(7.24, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignParameters(ngroups=0)
        with pytest.raises(ValueError):
            CampaignParameters(no_output_group_seconds=0)
        with pytest.raises(ValueError):
            CampaignSimulator(paper_campaign(32), dt=0)

    def test_baseline_ordering(self):
        p = paper_campaign(32)
        assert (
            no_output_group_time(p)
            < melissa_group_time_unblocked(p)
            < classical_group_time(p)
        )

    def test_classical_readback_is_expensive(self):
        # reading 60+ TB back at 150 GB/s costs ~7 minutes of pure I/O,
        # on top of writing it in the first place
        assert classical_readback_seconds(paper_campaign(32)) > 300


class TestCampaign15Nodes:
    """Fig. 6a/b: the undersized server saturates."""

    def test_all_groups_complete(self, run15):
        assert np.isfinite(run15.group_end).all()

    def test_peak_concurrency_matches_paper(self, run15):
        assert run15.peak_running_groups == 56
        assert run15.peak_cores == 28912  # paper's exact number

    def test_server_saturates_and_groups_stretch(self, run15):
        """Groups suspended 'up to doubling their execution time'."""
        unblocked = melissa_group_time_unblocked(run15.params)
        stretch = run15.group_exec_seconds.max() / unblocked
        assert 1.5 < stretch < 2.5
        assert run15.suspended_fraction > 0.3

    def test_group_time_exceeds_classical(self, run15):
        """Fig. 6b: saturated Melissa is slower than the classical line."""
        assert run15.group_exec_seconds.mean() > classical_group_time(run15.params)

    def test_buffer_fills(self, run15):
        assert run15.buffer_bytes.max() >= 0.9 * run15.params.buffer_capacity_bytes

    def test_wall_clock_ballpark(self, run15):
        """Paper: 2h30."""
        assert 1.9 < run15.wall_clock_seconds / 3600 < 2.9

    def test_server_share_small(self, run15):
        """Paper: ~1% of total CPU time."""
        assert 0.5 < run15.summary()["server_cpu_percent"] < 1.5


class TestCampaign32Nodes:
    """Fig. 6c/d: the right-sized server removes the bottleneck."""

    def test_peak_concurrency_matches_paper(self, run32):
        assert run32.peak_running_groups == 55
        assert run32.peak_cores == 28672  # paper's exact number

    def test_no_saturation(self, run32):
        assert run32.suspended_fraction < 0.05
        assert run32.buffer_bytes.max() < 0.5 * run32.params.buffer_capacity_bytes

    def test_melissa_beats_classical(self, run32):
        """Paper: 13% faster than classical, 18.5% slower than no-output."""
        avg = run32.group_exec_seconds.mean()
        assert avg < classical_group_time(run32.params)
        assert avg > no_output_group_time(run32.params)
        vs_classical = 1.0 - avg / classical_group_time(run32.params)
        assert 0.08 < vs_classical < 0.18  # paper: 0.13

    def test_wall_clock_ballpark(self, run32):
        """Paper: 1h27."""
        assert 1.0 < run32.wall_clock_seconds / 3600 < 1.8

    def test_simulation_cpu_hours_match_paper(self, run32):
        """Paper: 34 082 CPU hours for the simulations."""
        assert run32.simulation_cpu_hours == pytest.approx(34_082, rel=0.05)

    def test_server_share(self, run32):
        """Paper: 2.1% of total CPU time."""
        assert 1.4 < run32.summary()["server_cpu_percent"] < 2.8

    def test_message_rate(self, run32):
        """Paper: ~1000 messages/min per server process at peak."""
        rate = run32.messages_per_minute_per_server_process()
        assert 700 < rate < 1400


class TestCrossCampaign:
    def test_speedup_15_to_32(self, run15, run32):
        """Paper: wall-clock speed-up ~1.72 from 15 to 32 server nodes."""
        speedup = run15.wall_clock_seconds / run32.wall_clock_seconds
        assert 1.5 < speedup < 2.1

    def test_cpu_hours_reduction(self, run15, run32):
        """Paper: +1% resources on the server cut total CPU hours by ~40%."""
        total15 = run15.simulation_cpu_hours + run15.server_cpu_hours
        total32 = run32.simulation_cpu_hours + run32.server_cpu_hours
        reduction = 1.0 - total32 / total15
        assert 0.25 < reduction < 0.55

    def test_server_is_tiny_fraction_of_machine(self, run32):
        p = run32.params
        assert p.server_cores / p.available_cores < 0.02  # paper: ~1.8%

    def test_timeline_ramp_shape(self, run32):
        """Running groups ramp up, plateau at peak, then drain (Fig. 6c)."""
        rg = run32.running_groups
        peak = rg.max()
        first_peak = int(np.argmax(rg == peak))
        assert first_peak > 0  # there is a ramp
        assert (rg[:first_peak] <= peak).all()
        assert rg[-1] == 0  # drained at the end

    def test_sweep_monotone_wall_clock(self):
        """Ablation shape: more server nodes -> never slower, with
        diminishing returns once the bottleneck is gone."""
        walls = []
        for nodes in (8, 15, 24, 32, 48):
            res = CampaignSimulator(paper_campaign(nodes)).run()
            walls.append(res.wall_clock_seconds)
        assert all(a >= b * 0.999 for a, b in zip(walls, walls[1:]))
        # saturated region improves a lot; unsaturated region barely moves
        assert walls[0] / walls[3] > 1.5
        assert walls[3] / walls[4] < 1.05
