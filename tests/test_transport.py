"""Tests for messages, bounded channels, and the router/handshake."""

import threading
import time

import numpy as np
import pytest

from repro.mesh.partition import BlockPartition
from repro.transport import (
    BoundedChannel,
    ChannelClosed,
    ConnectionReply,
    ConnectionRequest,
    FieldMessage,
    Router,
    redistribution_plan,
)


class TestFieldMessage:
    def make(self, **kw):
        args = dict(
            group_id=3, member=1, timestep=5, cell_lo=10, cell_hi=14,
            data=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        args.update(kw)
        return FieldMessage(**args)

    def test_roundtrip_bytes(self):
        msg = self.make()
        back = FieldMessage.from_bytes(msg.to_bytes())
        assert back.group_id == 3 and back.member == 1 and back.timestep == 5
        assert (back.cell_lo, back.cell_hi) == (10, 14)
        np.testing.assert_array_equal(back.data, msg.data)

    def test_nbytes_matches_wire(self):
        msg = self.make()
        assert msg.nbytes == len(msg.to_bytes())

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            self.make(data=np.zeros(3))

    def test_negative_ids(self):
        with pytest.raises(ValueError):
            self.make(timestep=-1)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            FieldMessage.from_bytes(b"\x00" * 100)

    def test_2d_data_rejected(self):
        with pytest.raises(ValueError):
            FieldMessage(0, 0, 0, 0, 4, np.zeros((2, 2)))


class TestConnectionReply:
    def test_fencepost_validation(self):
        ConnectionReply(nranks_server=2, offsets=(0, 5, 10))
        with pytest.raises(ValueError):
            ConnectionReply(nranks_server=2, offsets=(0, 10))


class TestBoundedChannel:
    def msg(self, n=8):
        return FieldMessage(0, 0, 0, 0, n, np.zeros(n))

    def test_fifo_order(self):
        ch = BoundedChannel()
        for i in range(5):
            ch.try_send(("m", i))
        assert [m[1] for m in ch.drain()] == list(range(5))

    def test_try_send_respects_capacity(self):
        m = self.msg()
        ch = BoundedChannel(capacity_bytes=2 * m.nbytes)
        assert ch.try_send(m)
        assert ch.try_send(m)
        assert not ch.try_send(m)  # full
        assert ch.stats.send_blocks == 1
        ch.try_recv()
        assert ch.try_send(m)  # space freed

    def test_oversized_message_admitted_when_empty(self):
        big = FieldMessage(0, 0, 0, 0, 100, np.zeros(100))
        ch = BoundedChannel(capacity_bytes=8)
        assert ch.try_send(big)  # would deadlock forever otherwise
        assert not ch.try_send(big)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedChannel(capacity_bytes=0)

    def test_try_recv_empty(self):
        assert BoundedChannel().try_recv() is None

    def test_stats_accounting(self):
        m = self.msg()
        ch = BoundedChannel()
        ch.try_send(m)
        ch.try_send(m)
        assert ch.stats.messages_sent == 2
        assert ch.stats.bytes_sent == 2 * m.nbytes
        assert ch.stats.high_water_bytes == 2 * m.nbytes
        ch.drain()
        assert ch.stats.messages_received == 2
        assert ch.pending_bytes == 0

    def test_close_semantics(self):
        ch = BoundedChannel()
        ch.try_send("x")
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.try_send("y")
        assert ch.try_recv() == "x"  # drain allowed
        with pytest.raises(ChannelClosed):
            ch.try_recv()

    def test_blocking_send_wakes_on_recv(self):
        m = self.msg()
        ch = BoundedChannel(capacity_bytes=m.nbytes)
        ch.send(m)
        done = threading.Event()

        def sender():
            ch.send(m, timeout=5.0)  # blocks until reader drains
            done.set()

        t = threading.Thread(target=sender)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()
        ch.recv()
        t.join(timeout=5.0)
        assert done.is_set()
        assert ch.stats.blocked_seconds > 0

    def test_blocking_send_timeout(self):
        m = self.msg()
        ch = BoundedChannel(capacity_bytes=m.nbytes)
        ch.send(m)
        with pytest.raises(TimeoutError):
            ch.send(m, timeout=0.05)

    def test_blocking_recv_timeout(self):
        with pytest.raises(TimeoutError):
            BoundedChannel().recv(timeout=0.05)

    def test_recv_wakes_on_send(self):
        ch = BoundedChannel()
        result = []

        def receiver():
            result.append(ch.recv(timeout=5.0))

        t = threading.Thread(target=receiver)
        t.start()
        time.sleep(0.05)
        ch.send("hello")
        t.join(timeout=5.0)
        assert result == ["hello"]

    def test_control_messages_use_default_size(self):
        ch = BoundedChannel(capacity_bytes=100)
        assert ch.try_send("tiny")
        assert ch.pending_bytes == 64


class TestRouter:
    def make_router(self, ncells=20, nserver=3, capacity=None):
        return Router(BlockPartition(ncells, nserver), channel_capacity_bytes=capacity)

    def test_handshake(self):
        router = self.make_router()
        reply = router.connect(ConnectionRequest(group_id=1, ncells=20, nranks_client=2))
        assert reply.nranks_server == 3
        assert reply.offsets[0] == 0 and reply.offsets[-1] == 20
        assert router.is_connected(1)
        router.disconnect(1)
        assert not router.is_connected(1)

    def test_handshake_cell_mismatch(self):
        router = self.make_router()
        with pytest.raises(ValueError):
            router.connect(ConnectionRequest(group_id=1, ncells=99, nranks_client=2))

    def test_route_field_full_coverage(self):
        router = self.make_router(ncells=20, nserver=3)
        router.connect(ConnectionRequest(group_id=0, ncells=20, nranks_client=4))
        field = np.arange(20.0)
        undelivered = router.route_field(
            0, member=1, timestep=2, field_values=field,
            client_partition=BlockPartition(20, 4),
        )
        assert undelivered == []
        # reassemble from all server queues: must equal the original field
        rebuilt = np.full(20, np.nan)
        for rank, ch in router.inbound.items():
            for msg in ch.drain():
                assert router.server_partition.owner_of(msg.cell_lo) == rank
                rebuilt[msg.cell_lo : msg.cell_hi] = msg.data
        np.testing.assert_array_equal(rebuilt, field)

    def test_route_requires_connection(self):
        router = self.make_router()
        with pytest.raises(RuntimeError):
            router.route_field(5, 0, 0, np.zeros(20), BlockPartition(20, 2))

    def test_route_wrong_field_size(self):
        router = self.make_router()
        router.connect(ConnectionRequest(0, 20, 1))
        with pytest.raises(ValueError):
            router.route_field(0, 0, 0, np.zeros(7), BlockPartition(20, 1))

    def test_backpressure_returns_undelivered(self):
        router = self.make_router(ncells=20, nserver=1, capacity=100)
        router.connect(ConnectionRequest(0, 20, 1))
        part = BlockPartition(20, 1)
        field = np.zeros(20)
        assert router.route_field(0, 0, 0, field, part) == []  # fits (oversized-empty rule)
        undelivered = router.route_field(0, 0, 1, field, part)
        assert len(undelivered) == 1
        assert undelivered[0].timestep == 1
        # drain, then retry succeeds
        router.inbound[0].drain()
        assert router.deliver(undelivered[0])

    def test_deliver_splits_straddling_message(self):
        """A message spanning a partition boundary is split at the
        fenceposts instead of being routed whole by its first cell."""
        router = self.make_router(ncells=20, nserver=3)  # fenceposts 0,7,14,20
        msg = FieldMessage(group_id=0, member=0, timestep=0,
                          cell_lo=5, cell_hi=16, data=np.arange(11.0))
        assert router.deliver(msg)
        rebuilt = np.full(20, np.nan)
        for rank, ch in router.inbound.items():
            for got in ch.drain():
                lo, hi = router.server_partition.range_of(rank)
                assert lo <= got.cell_lo < got.cell_hi <= hi
                rebuilt[got.cell_lo:got.cell_hi] = got.data
        np.testing.assert_array_equal(rebuilt[5:16], np.arange(11.0))
        assert np.isnan(rebuilt[:5]).all() and np.isnan(rebuilt[16:]).all()

    def test_deliver_split_respects_backpressure(self):
        router = self.make_router(ncells=20, nserver=2, capacity=100)
        # fill rank 1's buffer so the second chunk cannot be delivered
        blocker = FieldMessage(0, 0, 0, 10, 20, np.zeros(10))
        assert router.deliver(blocker)
        straddle = FieldMessage(0, 0, 1, 5, 15, np.zeros(10))
        assert not router.deliver(straddle)
        for ch in router.inbound.values():
            ch.drain()
        assert router.deliver(straddle)  # retry after drain succeeds

    def test_deliver_out_of_range_rejected(self):
        router = self.make_router(ncells=20, nserver=2)
        msg = FieldMessage(0, 0, 0, 15, 25, np.zeros(10))
        with pytest.raises(ValueError):
            router.deliver(msg)

    def test_total_stats(self):
        router = self.make_router(ncells=20, nserver=2)
        router.connect(ConnectionRequest(0, 20, 1))
        router.route_field(0, 0, 0, np.zeros(20), BlockPartition(20, 1))
        stats = router.total_stats()
        assert stats["messages_sent"] == 2  # split across 2 server ranks
        assert stats["bytes_sent"] > 0

    def test_close(self):
        router = self.make_router()
        router.close()
        with pytest.raises(ChannelClosed):
            router.inbound[0].try_send("x")


class TestRedistributionPlan:
    def test_plan_alias(self):
        plan = redistribution_plan(BlockPartition(10, 2), BlockPartition(10, 5))
        assert len(plan) == 2
        # client rank 0 owns [0,5) -> server ranks 0,1,2 ([0,2),[2,4),[4,5))
        assert plan[0] == [(0, 0, 2), (1, 2, 4), (2, 4, 5)]
