"""Tests for launcher supervision, checkpointing, and convergence control."""

import numpy as np
import pytest

from repro.core import MelissaLauncher, MelissaServer, StudyConfig
from repro.core.checkpoint import CheckpointManager
from repro.core.convergence import ConvergenceController, ConvergenceDecision
from repro.core.launcher import LauncherEvent
from repro.sampling import ParameterSpace, Uniform
from repro.scheduler import BatchScheduler, JobState
from repro.transport.message import GroupFieldMessage


def make_config(ngroups=4, **kw):
    space = ParameterSpace(
        names=("a", "b"), distributions=(Uniform(0, 1), Uniform(0, 1))
    )
    defaults = dict(
        ntimesteps=2, ncells=4, server_ranks=1, client_ranks=1,
        nodes_per_group=2, server_nodes=1, total_nodes=16,
    )
    defaults.update(kw)
    return StudyConfig(space=space, ngroups=ngroups, **defaults)


def make_launcher(config=None):
    config = config or make_config()
    sched = BatchScheduler(config.total_nodes, max_pending=config.max_pending_jobs)
    return MelissaLauncher(config, sched), sched


class TestSubmission:
    def test_server_first(self):
        launcher, sched = make_launcher()
        assert launcher.pump_submissions(0.0) == []  # server not running yet
        launcher.submit_server(0.0)
        assert launcher.pump_submissions(0.0) == []  # still pending
        sched.tick(0.0)
        assert launcher.server_running
        submitted = launcher.pump_submissions(1.0)
        assert submitted == [0, 1, 2, 3]

    def test_submission_pacing(self):
        config = make_config(ngroups=10, max_pending_jobs=3)
        launcher, sched = make_launcher(config)
        launcher.submit_server(0.0)
        sched.tick(0.0)
        first = launcher.pump_submissions(1.0)
        assert len(first) == 3  # capped
        sched.tick(1.0)  # starts them, queue drains
        second = launcher.pump_submissions(2.0)
        assert len(second) == 3

    def test_design_reproducible(self):
        l1, _ = make_launcher()
        l2, _ = make_launcher()
        np.testing.assert_array_equal(l1.design.a, l2.design.a)


class TestGroupRestart:
    def start_all(self, launcher, sched):
        launcher.submit_server(0.0)
        sched.tick(0.0)
        launcher.pump_submissions(0.0)
        sched.tick(0.0)

    def test_restart_increments_attempt(self):
        launcher, sched = make_launcher()
        self.start_all(launcher, sched)
        old_job = launcher.records[1].job_id
        new_job = launcher.restart_group(1, 10.0)
        assert new_job is not None
        assert new_job.payload["attempt"] == 1
        assert sched.jobs[old_job].state == JobState.CANCELLED
        assert launcher.records[1].retries == 1

    def test_retry_budget_abandons(self):
        config = make_config(max_group_retries=2)
        launcher, sched = make_launcher(config)
        self.start_all(launcher, sched)
        assert launcher.restart_group(0, 1.0) is not None
        sched.tick(1.0)
        assert launcher.restart_group(0, 2.0) is not None
        sched.tick(2.0)
        assert launcher.restart_group(0, 3.0) is None  # budget exhausted
        assert launcher.records[0].abandoned
        assert launcher.abandoned_groups == [0]
        events = [e[1] for e in launcher.events]
        assert LauncherEvent.GROUP_ABANDONED in events

    def test_restart_finished_group_is_noop(self):
        launcher, sched = make_launcher()
        self.start_all(launcher, sched)
        launcher.mark_finished({2})
        assert launcher.restart_group(2, 5.0) is None
        assert launcher.records[2].retries == 0

    def test_study_complete(self):
        launcher, sched = make_launcher()
        assert not launcher.study_complete()
        launcher.mark_finished({0, 1, 2, 3})
        assert launcher.study_complete()


class TestZombieDetection:
    def test_zombie_flagged_after_timeout(self):
        config = make_config(zombie_timeout=100.0)
        launcher, sched = make_launcher(config)
        launcher.submit_server(0.0)
        sched.tick(0.0)
        launcher.pump_submissions(0.0)
        sched.tick(0.0)
        # nobody has sent anything yet
        assert launcher.detect_zombies(set(), now=50.0) == []
        zombies = launcher.detect_zombies(set(), now=101.0)
        assert zombies == [0, 1, 2, 3]
        # groups the server heard from are not zombies
        assert launcher.detect_zombies({0, 1, 2}, now=101.0) == [3]

    def test_pending_jobs_not_zombies(self):
        config = make_config(zombie_timeout=10.0, total_nodes=3)
        launcher, sched = make_launcher(config)  # room for 1 group only
        launcher.submit_server(0.0)
        sched.tick(0.0)
        launcher.pump_submissions(0.0)
        sched.tick(0.0)
        running = [j for j in sched.running_jobs if j.name.startswith("group")]
        assert len(running) == 1
        zombies = launcher.detect_zombies(set(), now=100.0)
        assert len(zombies) == 1  # only the running one


class TestServerSupervision:
    def test_heartbeat_timeout(self):
        config = make_config(server_timeout=60.0)
        launcher, sched = make_launcher(config)
        launcher.submit_server(0.0)
        launcher.record_heartbeat(100.0)
        assert not launcher.server_timed_out(150.0)
        assert launcher.server_timed_out(161.0)

    def test_server_restart_requeues_unfinished(self):
        launcher, sched = make_launcher()
        launcher.submit_server(0.0)
        sched.tick(0.0)
        launcher.pump_submissions(0.0)
        sched.tick(0.0)
        new_server = launcher.restart_server(finished_per_server={1, 3}, now=50.0)
        assert new_server.state == JobState.PENDING
        assert launcher.server_restarts == 1
        # old group jobs cancelled
        for record in launcher.records.values():
            assert record.job_id is None
        # groups 1 and 3 finished per checkpoint; 0 and 2 requeued
        assert launcher.records[1].finished and launcher.records[3].finished
        sched.tick(50.0)  # starts new server
        resubmitted = launcher.pump_submissions(51.0)
        assert resubmitted == [0, 2]


class TestCheckpointManager:
    def make_server_with_data(self, config):
        server = MelissaServer(config)
        rng = np.random.default_rng(0)
        for g in range(6):
            msg = GroupFieldMessage(g, 0, 0, 4, rng.normal(size=(4, 4)))
            server.handle(msg, 1.0)
        return server

    def test_save_restore_roundtrip(self, tmp_path):
        config = make_config()
        server = self.make_server_with_data(config)
        manager = CheckpointManager(tmp_path)
        paths = manager.save(server)
        assert len(paths) == config.server_ranks
        assert manager.exists()
        restored = manager.restore(config)
        np.testing.assert_array_equal(
            restored.first_order_map(0, 0), server.first_order_map(0, 0)
        )
        assert restored.started_groups() == server.started_groups()

    def test_restore_missing(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert not manager.exists()
        with pytest.raises(FileNotFoundError):
            manager.restore(make_config())

    def test_fingerprint_mismatch(self, tmp_path):
        config = make_config()
        manager = CheckpointManager(tmp_path)
        manager.save(self.make_server_with_data(config))
        other = make_config(ntimesteps=5)
        with pytest.raises(ValueError):
            manager.restore(other)

    def test_bytes_on_disk(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self.make_server_with_data(make_config()))
        assert manager.bytes_on_disk() > 0

    def test_general_stats_mismatch_fails_loudly(self, tmp_path):
        """A stats-disabled checkpoint must not silently zero the
        statistics of a stats-enabled study (fingerprint regression)."""
        config = make_config(statistics=[])
        manager = CheckpointManager(tmp_path)
        manager.save(self.make_server_with_data(config))
        enabled = make_config(statistics=["moments:order=2"])
        with pytest.raises(ValueError, match="statistics"):
            manager.restore(enabled)

    def test_v1_payload_migrates(self, tmp_path):
        """A format-1 checkpoint (old fingerprint + estimator-forest Sobol'
        state) restores through the migration shim."""
        import pickle

        from repro.core.checkpoint import downgrade_payload
        from repro.sobol.martinez import IterativeSobolEstimator

        config = make_config()
        server = self.make_server_with_data(config)
        manager = CheckpointManager(tmp_path)
        manager.save(server)
        # rewrite the rank file as a v1 payload: old fingerprint, legacy
        # general-statistics layout, and estimator-forest Sobol' state
        path = manager.rank_path(0)
        with open(path, "rb") as fh:
            payload = downgrade_payload(pickle.load(fh))
        v1_fp = payload["fingerprint"]
        assert v1_fp["version"] == 1
        rng = np.random.default_rng(1)
        forest = []
        for t in range(config.ntimesteps):
            est = IterativeSobolEstimator(config.nparams, (config.ncells,))
            for _ in range(6):
                est.update_group(
                    rng.normal(size=config.ncells), rng.normal(size=config.ncells),
                    [rng.normal(size=config.ncells) for _ in range(config.nparams)],
                )
            forest.append(est)
        payload["fingerprint"] = v1_fp
        payload["state"]["sobol"] = {
            "nparams": config.nparams,
            "ntimesteps": config.ntimesteps,
            "ncells": config.ncells,
            "estimators": [e.state_dict() for e in forest],
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        restored = manager.restore(config)
        np.testing.assert_allclose(
            restored.ranks[0].sobol.first_order_all(0),
            forest[0].first_order(),
            rtol=1e-10, atol=1e-12,
        )


class TestConvergenceController:
    def test_disabled_never_stops(self):
        ctrl = ConvergenceController(threshold=None)
        assert ctrl.assess(0.0001, 1000, 0) == ConvergenceDecision.CONTINUE
        assert not ctrl.converged

    def test_stop_when_tight(self):
        ctrl = ConvergenceController(threshold=0.1, min_groups=10)
        assert ctrl.assess(0.5, 50, 10) == ConvergenceDecision.CONTINUE
        assert ctrl.assess(0.05, 50, 10) == ConvergenceDecision.STOP
        assert ctrl.converged

    def test_min_groups_guard(self):
        ctrl = ConvergenceController(threshold=0.1, min_groups=100)
        assert ctrl.assess(0.01, 50, 10) == ConvergenceDecision.CONTINUE

    def test_extend_when_exhausted_and_wide(self):
        ctrl = ConvergenceController(threshold=0.01, extend_batch=50)
        assert ctrl.assess(0.5, 200, 0) == ConvergenceDecision.EXTEND
        ctrl2 = ConvergenceController(threshold=0.01, extend_batch=0)
        assert ctrl2.assess(0.5, 200, 0) == ConvergenceDecision.CONTINUE

    def test_history_recorded(self):
        ctrl = ConvergenceController(threshold=0.1)
        ctrl.assess(0.4, 10, 5)
        ctrl.assess(0.2, 20, 3)
        assert ctrl.history == [(10, 0.4), (20, 0.2)]
