"""CLI smoke tests + end-to-end higher-order server statistics.

The paper (Sec. 4.1) notes Melissa can be configured to compute other
iterative statistics on the A/B members — higher-order moments
(skewness, kurtosis), min/max, threshold exceedance.  The end-to-end test
here validates that path against batch NumPy/SciPy computations over the
actual member outputs.
"""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import StudyConfig
from repro.core.group import FunctionSimulation
from repro.runtime import SequentialRuntime
from repro.sobol import IshigamiFunction
from repro.stats import StatisticsConfig


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--groups", "150", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "groups integrated: 150" in out
        assert "x1" in out

    def test_campaign_runs(self, capsys):
        assert main(["campaign", "--server-nodes", "15"]) == 0
        out = capsys.readouterr().out
        assert "peak_running_groups" in out
        assert "56" in out

    def test_tube_runs(self, capsys):
        code = main([
            "tube", "--nx", "16", "--ny", "8", "--timesteps", "3",
            "--groups", "3", "--server-ranks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S map: upper_concentration" in out


class TestGeneralStatisticsEndToEnd:
    def run_study(self, statistics):
        fn = IshigamiFunction()
        config = StudyConfig(
            space=fn.space(), ngroups=120, ntimesteps=1, ncells=1,
            server_ranks=1, client_ranks=1, seed=6,
            statistics=statistics,
        )

        def factory(params, sim_id):
            return FunctionSimulation(fn, params, ntimesteps=1,
                                      simulation_id=sim_id)

        runtime = SequentialRuntime(config, factory)
        runtime.results = runtime.run()
        return runtime, fn, config

    def reference_ab_outputs(self, fn, config):
        """The A and B member outputs the server's general stats saw."""
        from repro.sampling import draw_design

        design = draw_design(config.space, config.ngroups, seed=config.seed)
        return np.concatenate([fn(design.a), fn(design.b)])

    def test_moments_match_batch(self):
        runtime, fn, config = self.run_study(
            ["moments:order=4", "extrema", "exceedance:thresholds=5.0"]
        )
        rank = runtime.server.ranks[0]
        moments = rank.stats.instances_at(0)[0]
        y = self.reference_ab_outputs(fn, config)
        assert moments.count == 2 * config.ngroups
        np.testing.assert_allclose(moments.mean, y.mean(), rtol=1e-10)
        np.testing.assert_allclose(moments.variance, y.var(ddof=1), rtol=1e-10)
        from scipy.stats import kurtosis, skew

        out = {key: value[0] for key, value in rank.stats.results().items()}
        np.testing.assert_allclose(out["skewness"], skew(y), rtol=1e-8)
        np.testing.assert_allclose(out["kurtosis"], kurtosis(y), rtol=1e-8)
        np.testing.assert_allclose(out["minimum"], y.min())
        np.testing.assert_allclose(out["maximum"], y.max())
        np.testing.assert_allclose(out["exceedance_5"], (y > 5.0).mean())

    def test_quantile_and_pair_maps_reach_results(self):
        """Catalog statistics flow through assembly into StudyResults."""
        runtime, fn, config = self.run_study(
            ["moments", "quantiles:qs=0.5:lo=-15:hi=15:bins=512", "sobol2"]
        )
        results = runtime.results
        y = self.reference_ab_outputs(fn, config)
        assert "quantile_0.5" in results.statistic_names
        np.testing.assert_allclose(
            results.statistic_map("quantile_0.5", 0),
            np.quantile(y, 0.5),
            atol=2 * 30.0 / 512,  # one sketch bin
        )
        # the Ishigami x1/x3 interaction is strong, x1/x2 is null
        i13 = results.statistic_map("sobol2_interaction_x1_x3", 0)
        i12 = results.statistic_map("sobol2_interaction_x1_x2", 0)
        assert i13 > 0.1
        assert abs(i12) < abs(i13)

    def test_general_stats_survive_checkpoint(self, tmp_path):
        from repro.core.checkpoint import CheckpointManager

        runtime, fn, config = self.run_study(["moments:order=3", "extrema"])
        manager = CheckpointManager(tmp_path)
        manager.save(runtime.server)
        restored = manager.restore(config)
        orig = runtime.server.ranks[0].stats.results()
        back = restored.ranks[0].stats.results()
        assert orig.keys() == back.keys()
        for key in orig:
            np.testing.assert_array_equal(orig[key], back[key])

    def test_legacy_knobs_map_to_statistics(self):
        """The deprecation shim maps StatisticsConfig onto spec strings."""
        import repro.core.config as config_module

        fn = IshigamiFunction()
        kwargs = dict(
            space=fn.space(), ngroups=4, ntimesteps=1, ncells=1,
            server_ranks=1, client_ranks=1,
        )
        config_module._LEGACY_STATS_WARNED = False
        with pytest.warns(DeprecationWarning, match="statistics"):
            config = StudyConfig(
                stats_config=StatisticsConfig(
                    moment_order=4, track_extrema=True, thresholds=(5.0,)
                ),
                **kwargs,
            )
        assert config.statistics == (
            "moments:order=4", "extrema", "exceedance:thresholds=5.0",
        )
        assert config.compute_general_stats is True
        # warn-once: the second legacy construction is silent
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            off = StudyConfig(compute_general_stats=False, **kwargs)
        assert off.statistics == ()
        assert off.compute_general_stats is False
        # mixing old and new knobs is an error
        with pytest.raises(ValueError, match="deprecated"):
            StudyConfig(statistics=["moments"],
                        compute_general_stats=True, **kwargs)
