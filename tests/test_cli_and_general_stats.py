"""CLI smoke tests + end-to-end higher-order server statistics.

The paper (Sec. 4.1) notes Melissa can be configured to compute other
iterative statistics on the A/B members — higher-order moments
(skewness, kurtosis), min/max, threshold exceedance.  The end-to-end test
here validates that path against batch NumPy/SciPy computations over the
actual member outputs.
"""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import StudyConfig
from repro.core.group import FunctionSimulation
from repro.runtime import SequentialRuntime
from repro.sobol import IshigamiFunction
from repro.stats import StatisticsConfig


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--groups", "150", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "groups integrated: 150" in out
        assert "x1" in out

    def test_campaign_runs(self, capsys):
        assert main(["campaign", "--server-nodes", "15"]) == 0
        out = capsys.readouterr().out
        assert "peak_running_groups" in out
        assert "56" in out

    def test_tube_runs(self, capsys):
        code = main([
            "tube", "--nx", "16", "--ny", "8", "--timesteps", "3",
            "--groups", "3", "--server-ranks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S map: upper_concentration" in out


class TestGeneralStatisticsEndToEnd:
    def run_study(self, stats_config):
        fn = IshigamiFunction()
        config = StudyConfig(
            space=fn.space(), ngroups=120, ntimesteps=1, ncells=1,
            server_ranks=1, client_ranks=1, seed=6,
            stats_config=stats_config,
        )

        def factory(params, sim_id):
            return FunctionSimulation(fn, params, ntimesteps=1,
                                      simulation_id=sim_id)

        runtime = SequentialRuntime(config, factory)
        runtime.run()
        return runtime, fn, config

    def reference_ab_outputs(self, fn, config):
        """The A and B member outputs the server's general stats saw."""
        from repro.sampling import draw_design

        design = draw_design(config.space, config.ngroups, seed=config.seed)
        return np.concatenate([fn(design.a), fn(design.b)])

    def test_moments_match_batch(self):
        cfg = StatisticsConfig(moment_order=4, track_extrema=True,
                               thresholds=(5.0,))
        runtime, fn, config = self.run_study(cfg)
        rank = runtime.server.ranks[0]
        stats = rank.general[0]
        y = self.reference_ab_outputs(fn, config)
        assert stats.count == 2 * config.ngroups
        np.testing.assert_allclose(stats.mean, y.mean(), rtol=1e-10)
        np.testing.assert_allclose(stats.variance, y.var(ddof=1), rtol=1e-10)
        from scipy.stats import kurtosis, skew

        out = stats.results()
        np.testing.assert_allclose(out["skewness"], skew(y), rtol=1e-8)
        np.testing.assert_allclose(out["kurtosis"], kurtosis(y), rtol=1e-8)
        np.testing.assert_allclose(out["minimum"], y.min())
        np.testing.assert_allclose(out["maximum"], y.max())
        np.testing.assert_allclose(out["exceedance_5"], (y > 5.0).mean())

    def test_general_stats_survive_checkpoint(self, tmp_path):
        from repro.core.checkpoint import CheckpointManager

        cfg = StatisticsConfig(moment_order=3, track_extrema=True)
        runtime, fn, config = self.run_study(cfg)
        manager = CheckpointManager(tmp_path)
        manager.save(runtime.server)
        restored = manager.restore(config)
        orig = runtime.server.ranks[0].general[0].results()
        back = restored.ranks[0].general[0].results()
        for key in orig:
            np.testing.assert_array_equal(orig[key], back[key])
