"""Unit + property tests for the one-pass moment formulas.

The central invariant: every iterative estimator equals its two-pass
counterpart to floating-point tolerance, for scalars and fields, including
after arbitrary merge trees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import IterativeMoments, batch_central_moments

RNG = np.random.default_rng(1234)


def feed(samples, order=4, shape=()):
    m = IterativeMoments(shape=shape, order=order)
    for s in samples:
        m.update(s)
    return m


class TestScalarMoments:
    def test_empty(self):
        m = IterativeMoments()
        assert m.count == 0
        assert np.isnan(m.variance)

    def test_single_sample(self):
        m = feed([3.5])
        assert m.count == 1
        assert m.mean == pytest.approx(3.5)
        assert np.isnan(m.variance)

    def test_two_samples(self):
        m = feed([1.0, 3.0])
        assert m.mean == pytest.approx(2.0)
        assert m.variance == pytest.approx(2.0)  # unbiased: ((1)^2+(1)^2)/1

    def test_matches_numpy(self):
        x = RNG.normal(5.0, 2.0, size=500)
        m = feed(x)
        assert m.mean == pytest.approx(x.mean())
        assert m.variance == pytest.approx(x.var(ddof=1))

    def test_skewness_kurtosis_match_scipy(self):
        from scipy.stats import kurtosis, skew

        x = RNG.gamma(2.0, 1.5, size=2000)
        m = feed(x)
        assert float(m.skewness) == pytest.approx(skew(x), rel=1e-10)
        assert float(m.kurtosis) == pytest.approx(kurtosis(x), rel=1e-10)

    def test_constant_stream_zero_variance(self):
        m = feed([7.0] * 50)
        assert m.mean == pytest.approx(7.0)
        assert m.variance == pytest.approx(0.0, abs=1e-12)

    def test_numerical_stability_large_offset(self):
        # Welford's raison d'etre: mean >> std must not catastrophically cancel.
        x = 1e9 + RNG.normal(0.0, 1.0, size=1000)
        m = feed(x, order=2)
        assert m.variance == pytest.approx(x.var(ddof=1), rel=1e-6)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            IterativeMoments(order=5)
        m = IterativeMoments(order=2)
        with pytest.raises(ValueError):
            _ = m.skewness

    def test_shape_mismatch_rejected(self):
        m = IterativeMoments(shape=(4,))
        with pytest.raises(ValueError):
            m.update(np.zeros(5))


class TestFieldMoments:
    def test_vectorized_equals_per_cell(self):
        field = RNG.normal(size=(40, 7))
        m = feed(field, shape=(7,))
        for j in range(7):
            mj = feed(field[:, j])
            np.testing.assert_allclose(m.mean[j], mj.mean)
            np.testing.assert_allclose(m.variance[j], mj.variance)

    def test_2d_field_shape(self):
        field = RNG.normal(size=(25, 3, 4))
        m = feed(field, shape=(3, 4))
        np.testing.assert_allclose(m.mean, field.mean(axis=0))
        np.testing.assert_allclose(m.variance, field.var(axis=0, ddof=1))


class TestMerge:
    def test_merge_equals_combined_stream(self):
        x = RNG.normal(size=300)
        a = feed(x[:120])
        b = feed(x[120:])
        a.merge(b)
        ref = feed(x)
        assert a.count == 300
        np.testing.assert_allclose(a.mean, ref.mean)
        np.testing.assert_allclose(a.m2, ref.m2, rtol=1e-9)
        np.testing.assert_allclose(a.m3, ref.m3, rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(a.m4, ref.m4, rtol=1e-8, atol=1e-8)

    def test_merge_into_empty(self):
        x = RNG.normal(size=50)
        a = IterativeMoments(order=4)
        a.merge(feed(x))
        np.testing.assert_allclose(a.mean, x.mean())

    def test_merge_empty_is_noop(self):
        x = RNG.normal(size=50)
        a = feed(x)
        before = a.state_dict()
        a.merge(IterativeMoments(order=4))
        np.testing.assert_allclose(a.mean, before["mean"])
        assert a.count == 50

    def test_merge_tree_three_way(self):
        x = RNG.normal(size=90)
        parts = [feed(x[i::3]) for i in range(3)]
        parts[0].merge(parts[1])
        parts[0].merge(parts[2])
        ref = feed(x)
        np.testing.assert_allclose(parts[0].mean, ref.mean)
        np.testing.assert_allclose(parts[0].m2, ref.m2, rtol=1e-9)

    def test_merge_incompatible(self):
        with pytest.raises(ValueError):
            IterativeMoments(shape=(2,)).merge(IterativeMoments(shape=(3,)))
        with pytest.raises(ValueError):
            IterativeMoments(order=2).merge(IterativeMoments(order=3))


class TestStateDict:
    def test_roundtrip(self):
        x = RNG.normal(size=64)
        m = feed(x)
        m2 = IterativeMoments.from_state_dict(m.state_dict())
        assert m2.count == m.count
        np.testing.assert_array_equal(m2.mean, m.mean)
        # continue updating both: must stay identical
        for v in RNG.normal(size=10):
            m.update(v)
            m2.update(v)
        np.testing.assert_array_equal(m2.m4, m.m4)

    def test_copy_is_independent(self):
        m = feed(RNG.normal(size=10))
        c = m.copy()
        c.update(100.0)
        assert c.count == m.count + 1
        assert not np.allclose(c.mean, m.mean)


class TestBatchReference:
    def test_batch_matches_iterative(self):
        x = RNG.normal(size=(200, 5))
        n, mean, m2, m3, m4 = batch_central_moments(x)
        it = feed(x, shape=(5,))
        assert n == it.count
        np.testing.assert_allclose(mean, it.mean)
        np.testing.assert_allclose(m2, it.m2, rtol=1e-9)
        np.testing.assert_allclose(m3, it.m3, rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(m4, it.m4, rtol=1e-7, atol=1e-7)


@settings(max_examples=60, deadline=None)
@given(
    arrays(
        np.float64,
        st.integers(min_value=2, max_value=60),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    )
)
def test_property_iterative_equals_batch(xs):
    """For any finite sample, one-pass == two-pass (mean/M2 exactly-ish)."""
    it = feed(xs)
    _, mean, m2, _, _ = batch_central_moments(xs)
    scale = max(1.0, np.abs(xs).max())
    assert abs(it.mean - mean) <= 1e-9 * scale
    assert abs(it.m2 - m2) <= 1e-6 * max(1.0, m2)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.integers(min_value=4, max_value=50),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    ),
    st.integers(min_value=1, max_value=49),
)
def test_property_merge_any_split(xs, split):
    """Merging any prefix/suffix split reproduces the full stream."""
    split = min(split, len(xs) - 1)
    a = feed(xs[:split])
    b = feed(xs[split:])
    a.merge(b)
    ref = feed(xs)
    assert a.count == ref.count
    np.testing.assert_allclose(a.mean, ref.mean, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(a.m2, ref.m2, rtol=1e-7, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=40))
def test_property_variance_nonnegative(values):
    m = feed(np.asarray(values), order=2)
    assert m.variance >= -1e-12
