"""ISSUE 10 acceptance: the multicore fold engine.

Threaded folds shard one rank's fold across disjoint, block-aligned cell
windows onto per-thread kernel instances.  Because every backend's
arithmetic is per-cell (reductions run over the batch dimension only),
the shard set enumerates the *identical* (lo, hi) windows the sequential
blocked loop does and writes disjoint state slices — so the suite pins
``fold_threads=N`` to ``fold_threads=1`` with ``assert_array_equal``,
not rtol: bit-exact, on every available backend, through ragged
partitions, checkpoint hops, and mid-fold merges.  The joint
(backend, nthreads, block_cells) autotune plan cache, its env export,
the O(log) staging-overflow eviction, and the distributed 2-rank x
2-worker parity (including through a worker SIGKILL) are covered here
too.
"""

import os
import time
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from net_util import retry_on_eaddrinuse
from repro.core import StudyConfig
from repro.core.group import VectorFieldSimulation
from repro.kernels import available_backends, parallel
from repro.kernels.einsum import EinsumKernel
from repro.runtime import DistributedRuntime, SequentialRuntime
from repro.sobol import IshigamiFunction
from repro.sobol.martinez import UbiquitousSobolField
from repro.stats.pipeline import StatisticsPipeline
from repro.stats.protocol import StatContext

NPARAMS = 3
NCELLS = 257  # deliberately not a multiple of any block size


@pytest.fixture(autouse=True)
def _isolated_plan_state(monkeypatch):
    """Each test sees an empty plan cache and a clean fold environment."""
    monkeypatch.delenv(parallel.ENV_VAR_THREADS, raising=False)
    monkeypatch.delenv(parallel.ENV_VAR_AUTOTUNE, raising=False)
    with parallel._plan_lock:
        saved_cache = dict(parallel._plan_cache)
        saved_pending = dict(parallel._pending_export)
        parallel._plan_cache.clear()
        parallel._pending_export.clear()
    yield
    with parallel._plan_lock:
        parallel._plan_cache.clear()
        parallel._plan_cache.update(saved_cache)
        parallel._pending_export.clear()
        parallel._pending_export.update(saved_pending)


@pytest.fixture(autouse=True)
def _deterministic_global_rng(request):
    np.random.seed(zlib.crc32(request.node.nodeid.encode()) % 2**32)


def feed(field, schedule, seed=7, ncells=NCELLS):
    """Adopt group buffers per (timestep, count) schedule, same stream
    for every field fed with the same seed."""
    rng = np.random.default_rng(seed)
    for t, count in schedule:
        for _ in range(count):
            field.update_group_buffer(
                t, rng.normal(size=(NPARAMS + 2, ncells))
            )
    return field


def assert_fields_identical(a, b):
    a.flush()
    b.flush()
    for name in ("_counts", "_mean", "_m2", "_cxy"):
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )


# --------------------------------------------------------------------- #
# thread-count selection
# --------------------------------------------------------------------- #
class TestThreadSelection:
    def test_validate_accepts_canonical_forms(self):
        assert parallel.validate_threads_spec(None) is None
        assert parallel.validate_threads_spec("auto") == "auto"
        assert parallel.validate_threads_spec(" AUTO ") == "auto"
        assert parallel.validate_threads_spec(4) == 4
        assert parallel.validate_threads_spec("4") == 4

    @pytest.mark.parametrize("bad", [0, -1, "0", "fast", 2.5, True])
    def test_validate_rejects(self, bad):
        with pytest.raises(ValueError):
            parallel.validate_threads_spec(bad)

    def test_precedence_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_VAR_THREADS, "8")
        assert parallel.resolve_threads(3) == 3
        assert parallel.resolve_threads(None) == 8
        monkeypatch.delenv(parallel.ENV_VAR_THREADS)
        assert parallel.resolve_threads(None) == "auto"

    def test_auto_candidates_clamped_by_local_ranks(self):
        assert parallel.auto_thread_candidates(cpus=8, local_ranks=1) == [1, 2, 4, 8]
        assert parallel.auto_thread_candidates(cpus=8, local_ranks=2) == [1, 2, 4]
        assert parallel.auto_thread_candidates(cpus=8, local_ranks=8) == [1]
        assert parallel.auto_thread_candidates(cpus=1, local_ranks=1) == [1]

    def test_eager_threads(self):
        # explicit counts pass through un-clamped; auto takes the clamp
        assert parallel.eager_threads(6, local_ranks=99) == 6
        cpus = os.cpu_count() or 1
        assert parallel.eager_threads("auto", local_ranks=1) == max(1, cpus)
        assert parallel.eager_threads("auto", local_ranks=2 * cpus) == 1

    def test_config_canonicalizes_and_rejects(self):
        fn = IshigamiFunction()
        cfg = StudyConfig(space=fn.space(), ngroups=2, ntimesteps=1,
                          ncells=8, fold_threads="2")
        assert cfg.fold_threads == 2
        with pytest.raises(ValueError, match="fold_threads"):
            StudyConfig(space=fn.space(), ngroups=2, ntimesteps=1,
                        ncells=8, fold_threads="zero")


# --------------------------------------------------------------------- #
# deterministic sharding
# --------------------------------------------------------------------- #
class TestShardRanges:
    @given(
        ncells=st.integers(1, 5000),
        nthreads=st.integers(1, 16),
        block=st.integers(1, 1024),
    )
    @settings(max_examples=200, deadline=None)
    def test_cover_disjoint_block_aligned(self, ncells, nthreads, block):
        shards = parallel.shard_ranges(ncells, nthreads, block)
        assert shards[0][0] == 0 and shards[-1][1] == ncells
        for (lo, hi), (lo2, _) in zip(shards, shards[1:]):
            assert hi == lo2
        for lo, hi in shards:
            assert lo < hi
            assert lo % block == 0  # every boundary is block-aligned
        assert len(shards) <= nthreads
        # deterministic: same inputs, same partition
        assert shards == parallel.shard_ranges(ncells, nthreads, block)

    def test_fewer_blocks_than_threads(self):
        assert parallel.shard_ranges(10, 8, 16) == [(0, 10)]

    def test_window_enumeration_matches_sequential(self):
        """The union of the shards' blocked inner loops is the exact
        window set of the sequential blocked loop — the structural
        bit-exactness argument, checked directly."""
        ncells, blk = 1000, 96
        sequential = [
            (b0, min(ncells, b0 + blk)) for b0 in range(0, ncells, blk)
        ]
        for nt in (1, 2, 3, 7):
            sharded = []
            for lo, hi in parallel.shard_ranges(ncells, nt, blk):
                sharded.extend(
                    (b0, min(hi, b0 + blk)) for b0 in range(lo, hi, blk)
                )
            assert sharded == sequential


# --------------------------------------------------------------------- #
# bit-exact parity
# --------------------------------------------------------------------- #
RAGGED = [(0, 3), (1, 9), (0, 6), (1, 1), (0, 8), (1, 5)]


class TestBitExactParity:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("nthreads", [2, 3, 5])
    def test_parity_all_backends_ragged(self, backend, nthreads):
        def build(threads):
            return UbiquitousSobolField(
                nparams=NPARAMS, ntimesteps=2, ncells=NCELLS,
                batch_size=8, max_staged=10, block_cells=64,
                kernel=backend, fold_threads=threads,
            )

        one = feed(build(1), RAGGED)
        many = feed(build(nthreads), RAGGED)
        assert many.active_fold_threads == min(nthreads, -(-NCELLS // 64))
        assert_fields_identical(one, many)

    def test_parity_through_checkpoint_hop(self):
        def build(threads):
            # default batch_size only: from_state_dict restores with the
            # default, and fold *batching* (unlike fold threading or
            # block size) legitimately perturbs results at reassociation
            # level — parity here must isolate the threads dimension
            field = UbiquitousSobolField(
                nparams=NPARAMS, ntimesteps=2, ncells=NCELLS,
                kernel="einsum", fold_threads=threads,
            )
            field.block_cells = 64  # force real multi-shard partitions
            return field

        one = feed(build(1), RAGGED, seed=1)
        one.flush()  # same fold boundary as the checkpointed run
        feed(one, RAGGED, seed=2)
        # threaded run hops through a checkpoint between the two halves
        # (and switches thread count across the hop — execution policy)
        half = feed(build(2), RAGGED, seed=1)
        assert half.active_fold_threads == 2
        restored = UbiquitousSobolField.from_state_dict(
            half.state_dict(), kernel="einsum", fold_threads=4
        )
        restored.block_cells = 64
        many = feed(restored, RAGGED, seed=2)
        assert many.active_fold_threads == 4
        assert_fields_identical(one, many)

    def test_parity_through_mid_fold_merge(self):
        def run(threads):
            a = feed(UbiquitousSobolField(
                nparams=NPARAMS, ntimesteps=2, ncells=NCELLS,
                batch_size=8, block_cells=64, kernel="einsum",
                fold_threads=threads,
            ), RAGGED, seed=3)
            b = feed(UbiquitousSobolField(
                nparams=NPARAMS, ntimesteps=2, ncells=NCELLS,
                batch_size=8, block_cells=64, kernel="einsum",
                fold_threads=threads,
            ), RAGGED, seed=4)
            # merge while b still holds staged-but-unfolded buffers
            assert b.staged_groups > 0
            a.merge(b)
            return a

        assert_fields_identical(run(1), run(3))

    @given(
        ncells=st.integers(8, 400),
        block=st.integers(4, 128),
        nthreads=st.integers(2, 6),
        nb=st.integers(1, 6),
        na=st.integers(0, 20),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_sharded_fold_window_equals_whole_window(
        self, ncells, block, nthreads, nb, na, seed
    ):
        """Property: fold_window over any block-aligned shard partition
        writes bit-identical state to one whole-window call."""
        rng = np.random.default_rng(seed)
        slabs = [rng.normal(size=(NPARAMS + 2, ncells)) for _ in range(nb)]

        def state():
            r = np.random.default_rng(seed + 1)
            mean = r.normal(size=(NPARAMS + 2, ncells))
            m2 = np.abs(r.normal(size=(NPARAMS + 2, ncells)))
            cxy = r.normal(size=(2, NPARAMS, ncells))
            return mean, m2, cxy

        blk = min(block, ncells)
        whole = state()
        kernel = EinsumKernel(NPARAMS, nb, blk)
        r1 = np.empty((2, NPARAMS, blk))
        parallel.fold_window(kernel, slabs, 0, ncells, *whole, na, r1)

        sharded = state()
        for lo, hi in parallel.shard_ranges(ncells, nthreads, blk):
            k = EinsumKernel(NPARAMS, nb, blk)  # per-shard instance
            s = np.empty((2, NPARAMS, blk))
            parallel.fold_window(k, slabs, lo, hi, *sharded, na, s)
        for got, want in zip(sharded, whole):
            np.testing.assert_array_equal(got, want)

    def test_pipeline_rows_parity(self):
        """StatisticsPipeline row dispatch over the shared pool is
        bit-exact vs sequential (rows are disjoint objects)."""
        specs = ("moments:order=2", "extrema", "exceedance:thresholds=0.0")
        ctx = StatContext(shape=(NCELLS,), nparams=NPARAMS,
                          parameter_names=("a", "b", "c"))

        def run(threads):
            pipe = StatisticsPipeline(specs, ctx, 2, fold_threads=threads)
            rng = np.random.default_rng(11)
            for t, count in RAGGED:
                for _ in range(count):
                    pipe.update(t, rng.normal(size=(NPARAMS + 2, NCELLS)))
            return pipe.results()

        one, four = run(1), run(4)
        assert one.keys() == four.keys()
        for name in one:
            np.testing.assert_array_equal(one[name], four[name], err_msg=name)


# --------------------------------------------------------------------- #
# staging-overflow eviction
# --------------------------------------------------------------------- #
class TestOverflowEviction:
    def test_overflow_folds_the_fullest_timestep(self):
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=4, ncells=16,
            batch_size=100, max_staged=6, fold_threads=1,
        )
        # t=2 is fullest (3 buffers) when the 7th adoption overflows
        feed(field, [(0, 1), (1, 2), (2, 3)], ncells=16)
        assert field.staged_groups == 6
        feed(field, [(3, 1)], ncells=16)
        assert int(field._counts[2]) == 3, "eviction must fold t=2"
        assert [len(s) for s in field._staged] == [1, 2, 0, 1]
        assert field.staged_groups == 4

    def test_eviction_tracks_shifting_maximum(self):
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=3, ncells=16,
            batch_size=100, max_staged=4, fold_threads=1,
        )
        feed(field, [(0, 2), (1, 2)], ncells=16)
        feed(field, [(1, 1)], ncells=16)  # overflow: t=1 fullest with 3
        assert int(field._counts[1]) == 3
        feed(field, [(2, 1), (2, 1)], ncells=16)
        feed(field, [(2, 1)], ncells=16)  # overflow again: now t=2 with 3
        assert int(field._counts[2]) == 3
        # heap went stale for t=1 twice over; state stays consistent
        assert field.staged_groups == len(field._staged[0]) + len(
            field._staged[1]
        ) + len(field._staged[2])

    def test_heap_is_compacted(self):
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=2, ncells=16,
            batch_size=4, fold_threads=1,
        )
        # thousands of adoptions fold away; the lazy heap must not grow
        # without bound on the non-overflow path
        feed(field, [(0, 4)] * 300, ncells=16)
        assert len(field._staged_heap) <= 4 * max(field.max_staged,
                                                  field.ntimesteps)


# --------------------------------------------------------------------- #
# the joint autotune plan cache
# --------------------------------------------------------------------- #
class TestPlanCache:
    KEY = parallel.plan_key(NPARAMS, 8, NCELLS, "einsum")

    def test_record_export_consume_roundtrip(self):
        parallel.record_plan(self.KEY, ("einsum", 2, 128))
        assert parallel.cached_plan(self.KEY) == ("einsum", 2, 128)
        env = os.environ[parallel.ENV_VAR_AUTOTUNE]
        assert "einsum" in env and self.KEY in env
        assert parallel.consume_new_plans() == {self.KEY: ["einsum", 2, 128]}
        assert parallel.consume_new_plans() == {}  # one-shot

    def test_absorb_merges_and_reexports(self):
        parallel.absorb_plans({self.KEY: ["blas", 4, 64],
                               "bogus": "not-a-plan"})
        assert parallel.cached_plan(self.KEY) == ("blas", 4, 64)
        assert parallel.cached_plan("bogus") is None
        # absorbed plans reach the env (for spawned subprocesses) but are
        # not re-shipped as new (they came FROM the coordinator)
        assert self.KEY in os.environ[parallel.ENV_VAR_AUTOTUNE]
        assert parallel.consume_new_plans() == {}

    def test_seed_from_env(self, monkeypatch):
        monkeypatch.setenv(
            parallel.ENV_VAR_AUTOTUNE, '{"%s":["einsum",3,96]}' % self.KEY
        )
        with parallel._plan_lock:
            parallel._plan_cache.clear()
        parallel._seed_from_env()
        assert parallel.cached_plan(self.KEY) == ("einsum", 3, 96)
        assert parallel.consume_new_plans() == {}  # inherited, not new

    def test_auto_tunes_once_then_caches(self):
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=1, ncells=NCELLS, batch_size=8,
            kernel="einsum", fold_threads="auto",
        )
        feed(field, [(0, 8)])  # one full batch >= _TUNE_MIN_BATCH
        plan = field.fold_plan
        assert plan is not None and plan[0] == "einsum"
        key = parallel.plan_key(NPARAMS, 8, NCELLS, "einsum")
        assert parallel.cached_plan(key) == plan
        assert parallel.consume_new_plans() == {key: list(plan)}

    def test_cached_plan_skips_probe(self, monkeypatch):
        parallel.record_plan(self.KEY, ("einsum", 2, 128), export=False)

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("probe ran despite a cached plan")

        monkeypatch.setattr(parallel, "tune_plan", boom)
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=1, ncells=NCELLS, batch_size=8,
            kernel="einsum", fold_threads="auto",
        )
        feed(field, [(0, 8)])
        assert field.fold_plan == ("einsum", 2, 128)

    def test_explicit_threads_build_without_probe(self, monkeypatch):
        monkeypatch.setattr(
            parallel, "tune_plan",
            lambda *a, **k: pytest.fail("explicit counts must not probe"),
        )
        field = UbiquitousSobolField(
            nparams=NPARAMS, ntimesteps=1, ncells=NCELLS, batch_size=8,
            kernel="einsum", fold_threads=3,
        )
        feed(field, [(0, 8)])
        assert field.active_fold_threads == 3
        assert parallel.consume_new_plans() == {}  # nothing tuned


# --------------------------------------------------------------------- #
# distributed parity
# --------------------------------------------------------------------- #
DIST_NCELLS = 32


class DistVectorSim(VectorFieldSimulation):
    delay = 0.0

    def __init__(self, fn, params, ntimesteps=2, simulation_id=0):
        super().__init__(fn, params, DIST_NCELLS, ntimesteps=ntimesteps,
                         simulation_id=simulation_id)

    def advance(self):
        if self.delay:
            time.sleep(self.delay)
        return super().advance()


class SlowDistVectorSim(DistVectorSim):
    delay = 0.01


def dist_config(fold_threads, ngroups=12):
    fn = IshigamiFunction()
    config = StudyConfig(
        space=fn.space(), ngroups=ngroups, ntimesteps=2, ncells=DIST_NCELLS,
        server_ranks=2, client_ranks=1, seed=23,
        fold_threads=fold_threads,
    )
    return fn, config


def dist_factory(fn, cls=DistVectorSim):
    def factory(params, sim_id):
        return cls(fn, params, simulation_id=sim_id)
    return factory


class TestDistributedParity:
    def test_two_ranks_two_workers_fold_threads_2(self):
        fn, config = dist_config(fold_threads=2)
        distributed = retry_on_eaddrinuse(lambda: DistributedRuntime(
            config, dist_factory(fn), nworkers=2
        )).run(timeout=120.0)
        _, config2 = dist_config(fold_threads=1)
        sequential = SequentialRuntime(config2, dist_factory(fn)).run()
        assert distributed.groups_integrated == 12
        np.testing.assert_allclose(
            distributed.first_order, sequential.first_order,
            rtol=1e-10, atol=1e-12, equal_nan=True,
        )
        np.testing.assert_allclose(
            distributed.total_order, sequential.total_order,
            rtol=1e-10, atol=1e-12, equal_nan=True,
        )

    def test_parity_survives_killed_worker(self):
        """ISSUE 10 acceptance: threaded folds stay exact through a
        worker SIGKILL + group resubmission."""
        fn, config = dist_config(fold_threads=2)
        runtime = retry_on_eaddrinuse(lambda: DistributedRuntime(
            config, dist_factory(fn, cls=SlowDistVectorSim), nworkers=2,
            fault_kill_after=2,
        ))
        distributed = runtime.run(timeout=120.0)
        assert runtime.coordinator.resubmitted, "no group was resubmitted"
        assert distributed.groups_integrated == 12
        _, config2 = dist_config(fold_threads=1)
        sequential = SequentialRuntime(config2, dist_factory(fn)).run()
        np.testing.assert_allclose(
            distributed.first_order, sequential.first_order,
            rtol=1e-10, atol=1e-12, equal_nan=True,
        )
