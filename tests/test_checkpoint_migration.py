"""Property-based checkpoint round-trips (ISSUE 4 satellite).

The respawn protocol leans entirely on ``save_rank``/``restore_rank``
being lossless: a replacement ``repro serve`` process must resume with
co-moment state BIT-EXACT to what the dead process last wrote, across
any study shape and integration history — and a format-1 file (no
``compute_general_stats`` in the fingerprint) must migrate to the same
state a format-2 round-trip produces.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StudyConfig
from repro.core.checkpoint import (
    CheckpointManager,
    downgrade_payload,
    migrate_payload,
)
from repro.core.server import ServerRank
from repro.mesh.partition import BlockPartition
from repro.sampling import ParameterSpace, Uniform
from repro.transport.message import GroupFieldMessage


def make_config(ncells, ntimesteps, nparams, server_ranks, general):
    space = ParameterSpace(
        names=tuple(f"x{i}" for i in range(nparams)),
        distributions=tuple(Uniform(0, 1) for _ in range(nparams)),
    )
    return StudyConfig(
        space=space, ngroups=6, ntimesteps=ntimesteps, ncells=ncells,
        server_ranks=server_ranks, client_ranks=1,
        statistics=("moments:order=2",) if general else (),
    )


def integrate_random_history(rank, config, rng, ngroups, partial_tail):
    """Feed a random but valid message history into one rank.

    Some groups run to completion, the last may stop mid-way (the state a
    crash interrupts), and one finished group is replayed (the state
    discard-on-replay leaves behind counters for).
    """
    lo, hi = rank.cell_lo, rank.cell_hi
    for g in range(ngroups):
        last_t = config.ntimesteps - (partial_tail if g == ngroups - 1 else 1)
        for t in range(max(1, last_t + 1)):
            data = rng.normal(size=(config.group_size, hi - lo))
            rank.handle(GroupFieldMessage(g, t, lo, hi, data), now=float(t))
    if ngroups:
        replay = rng.normal(size=(config.group_size, hi - lo))
        rank.handle(GroupFieldMessage(0, 0, lo, hi, replay), now=99.0)


def assert_tree_bit_exact(a, b, path="state"):
    """Recursive bit-exact comparison of nested state payloads."""
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), path
        for key in a:
            assert_tree_bit_exact(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert isinstance(b, (list, tuple)) and len(a) == len(b), path
        for i, (xa, xb) in enumerate(zip(a, b)):
            assert_tree_bit_exact(xa, xb, f"{path}[{i}]")
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b),
                                      err_msg=path)
    else:
        assert a == b, path


def assert_states_bit_exact(a: dict, b: dict) -> None:
    assert_tree_bit_exact(a, b)


@settings(max_examples=25, deadline=None)
@given(
    ncells=st.integers(min_value=2, max_value=20),
    ntimesteps=st.integers(min_value=1, max_value=4),
    nparams=st.integers(min_value=2, max_value=4),
    server_ranks=st.integers(min_value=1, max_value=3),
    rank_idx=st.integers(min_value=0, max_value=2),
    ngroups=st.integers(min_value=0, max_value=5),
    partial_tail=st.integers(min_value=1, max_value=3),
    general=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_save_restore_across_respawn_is_bit_exact(
    tmp_path_factory, ncells, ntimesteps, nparams, server_ranks, rank_idx,
    ngroups, partial_tail, general, seed,
):
    """save_rank -> (process death) -> restore_rank preserves every
    statistic bit-exactly, for arbitrary shapes and histories."""
    server_ranks = min(server_ranks, ncells)
    rank_idx = min(rank_idx, server_ranks - 1)
    config = make_config(ncells, ntimesteps, nparams, server_ranks, general)
    partition = BlockPartition(ncells, server_ranks)
    rng = np.random.default_rng(seed)

    rank = ServerRank(rank_idx, config, partition)
    integrate_random_history(rank, config, rng, ngroups, partial_tail)
    directory = tmp_path_factory.mktemp("ckpt")
    manager = CheckpointManager(directory)
    manager.save_rank(rank, config)

    respawned = ServerRank(rank_idx, config, partition)  # a fresh process
    assert manager.restore_rank(respawned, config)
    assert_states_bit_exact(rank.checkpoint_state(), respawned.checkpoint_state())
    # and the derived statistics agree exactly too
    for t in range(ntimesteps):
        np.testing.assert_array_equal(
            rank.sobol.mean_map(t), respawned.sobol.mean_map(t)
        )
        first_a, total_a = rank.sobol.index_maps_at(t)
        first_b, total_b = respawned.sobol.index_maps_at(t)
        np.testing.assert_array_equal(first_a, first_b)
        np.testing.assert_array_equal(total_a, total_b)


@settings(max_examples=15, deadline=None)
@given(
    ncells=st.integers(min_value=2, max_value=16),
    ntimesteps=st.integers(min_value=1, max_value=3),
    nparams=st.integers(min_value=2, max_value=3),
    general=st.booleans(),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_v1_payload_migrates_to_identical_state(
    tmp_path_factory, ncells, ntimesteps, nparams, general, seed,
):
    """A checkpoint rewritten in the v1 format (fingerprint without
    ``compute_general_stats``) restores the same state as the v2 file it
    was downgraded from."""
    config = make_config(ncells, ntimesteps, nparams, 1, general)
    partition = BlockPartition(ncells, 1)
    rng = np.random.default_rng(seed)
    rank = ServerRank(0, config, partition)
    integrate_random_history(rank, config, rng, ngroups=3, partial_tail=1)

    directory = tmp_path_factory.mktemp("v1")
    manager = CheckpointManager(directory)
    path = manager.save_rank(rank, config)
    with open(path, "rb") as fh:
        payload = pickle.load(fh)

    v1 = downgrade_payload(payload)
    assert v1["fingerprint"]["version"] == 1
    assert "compute_general_stats" not in v1["fingerprint"]
    with open(path, "wb") as fh:
        pickle.dump(v1, fh)

    respawned = ServerRank(0, config, partition)
    assert manager.restore_rank(respawned, config)
    assert_states_bit_exact(rank.checkpoint_state(), respawned.checkpoint_state())
    # the migration itself is idempotent and reproduces the v2 fingerprint
    migrated = migrate_payload(v1)
    assert migrated["fingerprint"] == payload["fingerprint"]
    assert migrate_payload(migrated)["fingerprint"] == payload["fingerprint"]


class TestDowngradeEdges:
    def test_downgrade_then_migrate_is_identity_on_fingerprint(self, tmp_path):
        config = make_config(4, 1, 2, 1, True)
        rank = ServerRank(0, config, BlockPartition(4, 1))
        manager = CheckpointManager(tmp_path)
        path = manager.save_rank(rank, config)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        assert (
            migrate_payload(downgrade_payload(payload))["fingerprint"]
            == payload["fingerprint"]
        )

    def test_downgrading_a_v1_payload_is_a_no_op(self):
        payload = {"fingerprint": {"version": 1, "ncells": 4}, "state": {}}
        assert downgrade_payload(payload) == payload

    def test_v1_general_mismatch_still_rejected(self, tmp_path):
        """A v1 file whose state has no general stats must not restore
        into a stats-enabled study (the bug the v2 fingerprint fixed —
        migration must preserve the rejection)."""
        config_off = make_config(4, 1, 2, 1, False)
        rank = ServerRank(0, config_off, BlockPartition(4, 1))
        manager = CheckpointManager(tmp_path)
        path = manager.save_rank(rank, config_off)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        with open(path, "wb") as fh:
            pickle.dump(downgrade_payload(payload), fh)
        config_on = make_config(4, 1, 2, 1, True)
        fresh = ServerRank(0, config_on, BlockPartition(4, 1))
        with pytest.raises(ValueError, match="incompatible study"):
            manager.restore_rank(fresh, config_on)
