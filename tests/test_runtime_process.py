"""Integration tests: the multiprocessing driver and cross-runtime parity.

Covers the quickstart acceptance path (process == sequential statistics)
and a back-pressure stress test with >= 4 server ranks, a multi-cell
field, several client ranks, and a tiny channel byte budget, comparing
sequential, threaded, and process drivers on the same study.
"""

import numpy as np
import pytest

from repro import SensitivityStudy
from repro.core import StudyConfig
from repro.core.group import FunctionSimulation, VectorFieldSimulation
from repro.runtime import ProcessRuntime, SequentialRuntime, ThreadedRuntime
from repro.sobol import IshigamiFunction

NCELLS = 32


def make_config(ngroups=30, ncells=1, server_ranks=1, ntimesteps=2, **kw):
    fn = IshigamiFunction()
    kw.setdefault("client_ranks", 1)
    config = StudyConfig(
        space=fn.space(), ngroups=ngroups, ntimesteps=ntimesteps, ncells=ncells,
        server_ranks=server_ranks, seed=9, **kw,
    )
    return fn, config


def make_factory(fn, ntimesteps=2):
    def factory(params, sim_id):
        return FunctionSimulation(fn, params, ntimesteps=ntimesteps,
                                  simulation_id=sim_id)
    return factory


class VectorSim(VectorFieldSimulation):
    """Library ramp member pinned to NCELLS (shared with the CLI's
    ``--study vector`` spec, so tests and smoke runs exercise one shape)."""

    def __init__(self, fn, params, ntimesteps=1, simulation_id=0):
        super().__init__(fn, params, NCELLS, ntimesteps=ntimesteps,
                         simulation_id=simulation_id)


def vector_factory(fn, ntimesteps=2):
    def factory(params, sim_id):
        return VectorSim(fn, params, ntimesteps=ntimesteps, simulation_id=sim_id)
    return factory


class TestProcessRuntime:
    def test_quickstart_parity_with_sequential(self):
        """Acceptance: ProcessRuntime reproduces SequentialRuntime stats."""
        fn, config = make_config(40)
        process = ProcessRuntime(config, make_factory(fn),
                                 max_concurrent_groups=4).run(timeout=120.0)
        _, config2 = make_config(40)
        sequential = SequentialRuntime(config2, make_factory(fn)).run()
        assert process.groups_integrated == 40
        np.testing.assert_allclose(
            process.first_order, sequential.first_order, rtol=1e-9
        )
        np.testing.assert_allclose(
            process.total_order, sequential.total_order, rtol=1e-9
        )
        np.testing.assert_allclose(process.variance, sequential.variance, rtol=1e-9)
        np.testing.assert_allclose(process.mean, sequential.mean, rtol=1e-9)

    def test_multi_rank_backpressure_parity_stress(self):
        """>= 4 server ranks, tiny channel budget: threaded and process
        drivers must reproduce the sequential statistics."""
        fn, config = make_config(
            18, ncells=NCELLS, server_ranks=4, client_ranks=2,
            channel_capacity_bytes=2048,
        )
        process = ProcessRuntime(config, vector_factory(fn),
                                 max_concurrent_groups=4).run(timeout=180.0)
        _, config2 = make_config(
            18, ncells=NCELLS, server_ranks=4, client_ranks=2,
            channel_capacity_bytes=2048,
        )
        threaded = ThreadedRuntime(config2, vector_factory(fn),
                                   max_concurrent_groups=4).run(timeout=180.0)
        _, config3 = make_config(18, ncells=NCELLS, server_ranks=4, client_ranks=2)
        sequential = SequentialRuntime(config3, vector_factory(fn)).run()
        assert process.groups_integrated == 18
        assert threaded.groups_integrated == 18
        for results in (process, threaded):
            np.testing.assert_allclose(
                results.first_order, sequential.first_order, rtol=1e-8, atol=1e-10
            )
            np.testing.assert_allclose(
                results.total_order, sequential.total_order, rtol=1e-8, atol=1e-10
            )
            np.testing.assert_allclose(
                results.variance, sequential.variance, rtol=1e-8
            )

    def test_single_worker(self):
        fn, config = make_config(5)
        results = ProcessRuntime(config, make_factory(fn),
                                 max_concurrent_groups=1).run(timeout=60.0)
        assert results.groups_integrated == 5

    def test_worker_failure_surfaces(self):
        fn, config = make_config(4)

        def exploding_factory(params, sim_id):
            raise RuntimeError("boom in worker")

        with pytest.raises((RuntimeError, TimeoutError)):
            ProcessRuntime(config, exploding_factory,
                           max_concurrent_groups=2).run(timeout=30.0)

    def test_invalid_workers(self):
        fn, config = make_config(4)
        with pytest.raises(ValueError):
            ProcessRuntime(config, make_factory(fn), max_concurrent_groups=0)

    def test_uses_fork_context(self):
        fn, config = make_config(4)
        runtime = ProcessRuntime(config, make_factory(fn))
        assert runtime._ctx.get_start_method() == "fork"


class TestLivenessAndTimeout:
    """ISSUE 3 satellites: Heartbeat-based fail-fast on a dead server-rank
    worker and a whole-study deadline naming the unfinished work."""

    def test_dead_server_rank_fails_fast(self, monkeypatch):
        """A server-rank worker that dies must surface within a couple of
        heartbeat intervals, not after the full study timeout."""
        import os

        import repro.runtime.process as proc_mod

        def dying_server_worker(rank_idx, config, inbox, results, errors,
                                beats, beat_interval):
            os._exit(3)  # simulate a hard crash (no error report possible)

        monkeypatch.setattr(proc_mod, "_server_worker", dying_server_worker)
        fn, config = make_config(40)

        def slow_factory(params, sim_id):
            import time as _t

            _t.sleep(0.05)
            return FunctionSimulation(fn, params, ntimesteps=2,
                                      simulation_id=sim_id)

        runtime = ProcessRuntime(config, slow_factory, max_concurrent_groups=2,
                                 heartbeat_interval=0.1)
        import time as _t

        start = _t.monotonic()
        with pytest.raises(RuntimeError, match="server rank 0 worker died"):
            runtime.run(timeout=60.0)
        assert _t.monotonic() - start < 30.0, "did not fail fast"

    def test_server_ranks_emit_heartbeats(self):
        """The Heartbeat message is actually on the wire: drive the rank
        worker directly over an idle inbox and require beacons."""
        import queue as q
        import threading
        import time as _t

        from repro.runtime.process import _server_worker
        from repro.transport.message import Heartbeat

        fn, config = make_config(4)
        inbox, results, errors, beats = q.Queue(), q.Queue(), q.Queue(), q.Queue()
        thread = threading.Thread(
            target=_server_worker,
            args=(0, config, inbox, results, errors, beats, 0.02),
        )
        thread.start()
        _t.sleep(0.15)  # several beat intervals with an empty inbox
        inbox.put(None)
        thread.join(timeout=30.0)
        assert errors.empty(), errors.get_nowait()
        beat = beats.get_nowait()
        assert isinstance(beat, Heartbeat)
        assert beat.sender == "server-rank-0"

    def test_timeout_names_unfinished_groups_and_ranks(self):
        fn, config = make_config(6)

        def stuck_factory(params, sim_id):
            import time as _t

            _t.sleep(30.0)
            return FunctionSimulation(fn, params, ntimesteps=2,
                                      simulation_id=sim_id)

        runtime = ProcessRuntime(config, stuck_factory, max_concurrent_groups=2)
        with pytest.raises(TimeoutError) as excinfo:
            runtime.run(timeout=1.5)
        message = str(excinfo.value)
        assert "group(s) unfinished" in message
        assert "server rank(s) not reported" in message

    def test_timeout_during_final_reduction(self, monkeypatch):
        """Edge case: every group finishes, but a rank worker hangs
        before shipping its state — the deadline must still fire, and the
        diagnostic must show zero unfinished groups with the silent rank
        named (the failure is in the reduction, not the study)."""
        import repro.runtime.process as proc_mod

        def hanging_server_worker(rank_idx, config, inbox, results, errors,
                                  beats, beat_interval):
            import queue as _q
            import time as _t

            from repro.transport.message import Heartbeat

            while True:
                try:
                    msg = inbox.get(timeout=beat_interval)
                except _q.Empty:
                    msg = "idle"
                beats.put(Heartbeat(sender=f"server-rank-{rank_idx}",
                                    time=_t.monotonic()))
                if msg is None:
                    break
            _t.sleep(120.0)  # alive and beat-less, state never reported

        monkeypatch.setattr(proc_mod, "_server_worker", hanging_server_worker)
        fn, config = make_config(4)
        runtime = ProcessRuntime(config, make_factory(fn),
                                 max_concurrent_groups=2,
                                 heartbeat_interval=0.1)
        # timeout generous enough that all 4 groups certainly finish on a
        # loaded runner — the deadline must fire in the reduction phase
        with pytest.raises(TimeoutError) as excinfo:
            runtime.run(timeout=6.0)
        message = str(excinfo.value)
        assert "0 group(s) unfinished" in message
        assert "server rank(s) not reported: [0]" in message

    def test_rank_clean_exit_without_state_fails_fast(self, monkeypatch):
        """Edge case: a rank worker exits 0 without ever reporting — not
        a crash, so only heartbeat staleness can expose it, well before
        the study deadline."""
        import time as _t

        import repro.runtime.process as proc_mod

        def ghost_server_worker(rank_idx, config, inbox, results, errors,
                                beats, beat_interval):
            import os

            os._exit(0)  # clean exit, no state, no heartbeat

        monkeypatch.setattr(proc_mod, "_server_worker", ghost_server_worker)
        fn, config = make_config(4)
        runtime = ProcessRuntime(config, make_factory(fn),
                                 max_concurrent_groups=2,
                                 heartbeat_interval=0.1)
        start = _t.monotonic()
        with pytest.raises(RuntimeError, match="exited without reporting"):
            runtime.run(timeout=60.0)
        assert _t.monotonic() - start < 30.0, "did not fail fast"

    def test_dead_worker_during_last_group(self, monkeypatch):
        """Edge case: the pool's final group kills its worker — the
        failure must surface as a worker death, not hang the drain or get
        mistaken for normal completion."""
        import repro.runtime.process as proc_mod

        real_group_worker = proc_mod._group_worker

        def dying_group_worker(config, factory, design, rank_queues, work,
                               errors, progress, poll_interval):
            import os

            class DeathOnLastGroup:
                def get(self):
                    gid = work.get()
                    if gid == config.ngroups - 1:
                        os._exit(5)  # hard death holding the last group
                    return gid

            real_group_worker(config, factory, design, rank_queues,
                              DeathOnLastGroup(), errors, progress,
                              poll_interval)

        monkeypatch.setattr(proc_mod, "_group_worker", dying_group_worker)
        fn, config = make_config(6)
        runtime = ProcessRuntime(config, make_factory(fn),
                                 max_concurrent_groups=2,
                                 heartbeat_interval=0.1)
        with pytest.raises(RuntimeError, match="group worker died with exit code 5"):
            runtime.run(timeout=60.0)


class TestStudyFacade:
    def test_process_runtime_via_facade(self):
        fn = IshigamiFunction()
        study = SensitivityStudy.for_function(fn, ngroups=12, seed=3)
        results = study.run(runtime="process", max_concurrent_groups=3)
        assert results.groups_integrated == 12

    def test_process_rejects_faults(self):
        from repro.faults import FaultPlan, GroupZombie

        fn = IshigamiFunction()
        study = SensitivityStudy.for_function(fn, ngroups=5)
        with pytest.raises(ValueError):
            study.run(runtime="process",
                      fault_plan=FaultPlan(group_zombies=[GroupZombie(0)]))


class TestParallelReductions:
    """The rank workers compute their own index maps and convergence
    scalar; the parent must see values identical to recomputing from the
    restored server state (it only concatenates / max-reduces)."""

    def test_shipped_maps_match_restored_server(self):
        fn, config = make_config(36, ncells=NCELLS, server_ranks=3,
                                 channel_capacity_bytes=16384)
        runtime = ProcessRuntime(config, vector_factory(fn),
                                 max_concurrent_groups=3)
        results = runtime.run(timeout=60.0)
        # recompute everything serially from the restored rank states
        recomputed = runtime.server.assemble_maps()
        np.testing.assert_array_equal(results.first_order, recomputed["first"])
        np.testing.assert_array_equal(results.total_order, recomputed["total"])
        np.testing.assert_array_equal(results.variance, recomputed["variance"])
        np.testing.assert_array_equal(results.mean, recomputed["mean"])

    def test_shipped_width_matches_parent_reduction(self):
        fn, config = make_config(30, ncells=NCELLS, server_ranks=2)
        runtime = ProcessRuntime(config, vector_factory(fn),
                                 max_concurrent_groups=2)
        results = runtime.run(timeout=60.0)
        assert results.max_interval_width == pytest.approx(
            runtime.server.max_interval_width(), rel=1e-12
        )
